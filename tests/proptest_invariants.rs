//! Cross-crate property-based tests: random graphs + random tagging stores,
//! checking the algebraic contracts between processors.

use friends::prelude::*;
use proptest::prelude::*;

/// Strategy: a small random corpus (graph + taggings) plus a query.
fn arb_corpus_and_query() -> impl Strategy<Value = (Corpus, Query)> {
    (
        3usize..40, // users
        1u32..30,   // items
        1u32..8,    // tags
        proptest::collection::vec((0u32..40, 0u32..30, 0u32..8, 0.01f32..2.0), 0..120),
        proptest::collection::vec((0u32..40, 0u32..40, 0.05f32..1.0), 0..80),
        0u32..40,                                 // seeker (mod users)
        proptest::collection::vec(0u32..8, 1..4), // query tags
        1usize..8,                                // k
    )
        .prop_map(
            |(n, items, tags, raw_taggings, raw_edges, seeker, qtags, k)| {
                let n = n.max(2);
                let mut b = GraphBuilder::new(n);
                for (u, v, w) in raw_edges {
                    let (u, v) = (u % n as u32, v % n as u32);
                    if u != v {
                        b.add_edge(u, v, w);
                    }
                }
                let graph = b.build();
                let taggings: Vec<Tagging> = raw_taggings
                    .into_iter()
                    .map(|(u, i, t, w)| Tagging {
                        user: u % n as u32,
                        item: i % items,
                        tag: t % tags,
                        weight: w,
                    })
                    .collect();
                let store = TagStore::build(n as u32, items, tags, taggings);
                let corpus = Corpus::new(graph, store);
                let mut qtags: Vec<TagId> = qtags.into_iter().map(|t| t % tags).collect();
                qtags.sort_unstable();
                qtags.dedup();
                let query = Query {
                    seeker: seeker % n as u32,
                    tags: qtags,
                    k,
                };
                (corpus, query)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FriendExpansion run to exhaustion computes exactly the WeightedDecay
    /// scores of the reference ExactOnline processor.
    #[test]
    fn expansion_exhaustive_equals_exact((corpus, query) in arb_corpus_and_query()) {
        let alpha = 0.5;
        let mut exact = ExactOnline::new(&corpus, ProximityModel::WeightedDecay { alpha });
        let mut exp = FriendExpansion::new(
            &corpus,
            ExpansionConfig { alpha, exhaustive: true, ..ExpansionConfig::default() },
        );
        let a = exact.query(&query);
        let b = exp.query(&query);
        // f32 accumulation order differs between the implementations, so
        // near-ties may swap ranks: compare sets and per-item scores.
        let sa: std::collections::BTreeSet<ItemId> = a.item_ids().into_iter().collect();
        let sb: std::collections::BTreeSet<ItemId> = b.item_ids().into_iter().collect();
        prop_assert_eq!(sa, sb);
        let mb: std::collections::HashMap<ItemId, f32> = b.items.iter().copied().collect();
        for (item, s) in &a.items {
            prop_assert!((mb[item] - s).abs() < 1e-4, "item {}: {} vs {}", item, s, mb[item]);
        }
    }

    /// Early termination never changes the returned top-k *set*.
    #[test]
    fn expansion_early_stop_preserves_set((corpus, query) in arb_corpus_and_query()) {
        let alpha = 0.5;
        let mut full = FriendExpansion::new(
            &corpus,
            ExpansionConfig { alpha, exhaustive: true, ..ExpansionConfig::default() },
        );
        let mut eager = FriendExpansion::new(
            &corpus,
            ExpansionConfig { alpha, exhaustive: false, check_interval: 2 },
        );
        let want: std::collections::BTreeSet<ItemId> =
            full.query(&query).item_ids().into_iter().collect();
        let got: std::collections::BTreeSet<ItemId> =
            eager.query(&query).item_ids().into_iter().collect();
        prop_assert_eq!(want, got);
    }

    /// The global inverted-index processor agrees with ExactOnline under the
    /// Global proximity model (two independent implementations of the same
    /// semantics: WAND over postings vs dense accumulation).
    #[test]
    fn global_paths_agree((corpus, query) in arb_corpus_and_query()) {
        let mut wand = GlobalProcessor::new(&corpus, IndexConfig::default());
        let mut dense = ExactOnline::new(&corpus, ProximityModel::Global);
        let a = wand.query(&query);
        let b = dense.query(&query);
        prop_assert_eq!(a.item_ids(), b.item_ids());
        for (x, y) in a.items.iter().zip(&b.items) {
            prop_assert!((x.1 - y.1).abs() < 1e-4, "{:?} vs {:?}", x, y);
        }
    }

    /// Scores are monotone in alpha: raising the decay base never lowers any
    /// item's exact score (proximities only grow).
    #[test]
    fn scores_monotone_in_alpha((corpus, query) in arb_corpus_and_query()) {
        let mut lo = ExactOnline::new(&corpus, ProximityModel::WeightedDecay { alpha: 0.3 });
        let mut hi = ExactOnline::new(&corpus, ProximityModel::WeightedDecay { alpha: 0.7 });
        let a = lo.query(&query);
        let b = hi.query(&query);
        // Compare per-item: every item in the low-alpha result has a
        // greater-or-equal score in the high-alpha world.
        let hi_scores: std::collections::HashMap<ItemId, f32> =
            b.items.iter().copied().collect();
        for (item, s_lo) in &a.items {
            if let Some(s_hi) = hi_scores.get(item) {
                prop_assert!(
                    *s_hi >= *s_lo - 1e-5,
                    "item {} lo {} hi {}", item, s_lo, s_hi
                );
            }
        }
    }

    /// GlobalBoundTA — a third independent implementation of the exact
    /// semantics (candidate generation from the global index) — agrees with
    /// ExactOnline for every proximity model with σ ≤ 1.
    #[test]
    fn global_bound_ta_agrees((corpus, query) in arb_corpus_and_query()) {
        for model in [
            ProximityModel::FriendsOnly,
            ProximityModel::DistanceDecay { alpha: 0.6 },
            ProximityModel::AdamicAdar,
        ] {
            let mut gb = GlobalBoundTA::new(&corpus, model);
            let mut exact = ExactOnline::new(&corpus, model);
            let a = gb.query(&query);
            let b = exact.query(&query);
            let sa: std::collections::BTreeSet<ItemId> =
                a.item_ids().into_iter().collect();
            let sb: std::collections::BTreeSet<ItemId> =
                b.item_ids().into_iter().collect();
            prop_assert_eq!(sa, sb, "{}", model.name());
            let mb: std::collections::HashMap<ItemId, f32> =
                b.items.iter().copied().collect();
            for (item, s) in &a.items {
                prop_assert!((mb[item] - s).abs() < 1e-4,
                    "{}: item {} {} vs {}", model.name(), item, s, mb[item]);
            }
        }
    }

    /// k monotonicity: top-k is always a prefix of top-(k+5).
    #[test]
    fn topk_prefix_consistency((corpus, query) in arb_corpus_and_query()) {
        let mut exact = ExactOnline::new(&corpus, ProximityModel::WeightedDecay { alpha: 0.5 });
        let small = exact.query(&query).item_ids();
        let mut q2 = query.clone();
        q2.k += 5;
        let big = exact.query(&q2).item_ids();
        prop_assert!(big.len() >= small.len());
        prop_assert_eq!(&big[..small.len()], &small[..]);
    }

    /// Results are sorted by (score desc, item asc) and bounded by k.
    #[test]
    fn result_ordering_contract((corpus, query) in arb_corpus_and_query()) {
        let mut hybrid = Hybrid::build(&corpus, HybridConfig::default());
        let r = hybrid.query(&query);
        prop_assert!(r.items.len() <= query.k);
        for w in r.items.windows(2) {
            let ord_ok = w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0);
            prop_assert!(ord_ok, "bad ordering: {:?}", r.items);
        }
    }
}
