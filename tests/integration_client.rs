//! End-to-end integration of the unified client API through the facade
//! prelude: one `QueryRequest` surface over `DirectClient` and
//! `ServedClient`, non-blocking tickets, the multiplexer, result
//! memoization, and parity with the deprecated batch entry points.

use friends::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn fixture() -> (Arc<Corpus>, QueryWorkload) {
    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(33);
    let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
    let w = QueryWorkload::generate(
        &corpus.graph,
        &corpus.store,
        &QueryParams {
            count: 25,
            ..QueryParams::default()
        },
        6,
    );
    (corpus, w)
}

const MODEL: ProximityModel = ProximityModel::WeightedDecay { alpha: 0.5 };

#[test]
fn one_request_surface_two_backends_same_answers() {
    let (corpus, w) = fixture();
    let mut reference = ExactOnline::new(&corpus, MODEL);
    let want: Vec<_> = w.queries.iter().map(|q| reference.query(q).items).collect();

    let direct = DirectClient::start(Arc::clone(&corpus), DirectConfig::default());
    let served = ServedClient::start(
        Arc::clone(&corpus),
        ServiceConfig {
            shards: 2,
            result_cache_capacity: 128,
            ..ServiceConfig::default()
        },
    );
    for client in [&direct as &dyn SearchClient, &served as &dyn SearchClient] {
        let got = client.search(&w.queries, MODEL);
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a, &b.items);
        }
        // Second pass must be identical too (caches, memoization).
        let again = client.search(&w.queries, MODEL);
        for (a, b) in want.iter().zip(&again) {
            assert_eq!(a, &b.items);
        }
    }
    let stats = served.shutdown().totals();
    assert!(
        stats.result_served > 0,
        "second served pass should hit the result cache: {stats:?}"
    );
    assert!(
        stats.plans.total() > 0,
        "planner decisions must be recorded"
    );
    direct.shutdown();
}

#[test]
#[allow(deprecated)]
fn deprecated_prelude_entry_points_agree_with_clients() {
    let (corpus, w) = fixture();
    let client = DirectClient::start(Arc::clone(&corpus), DirectConfig::default());
    let via_client = client.search(&w.queries, MODEL);
    let legacy = par_batch(&w.queries, 3, || ExactOnline::new(&corpus, MODEL));
    let cache = Arc::new(ProximityCache::new(128));
    let legacy_cached = par_batch_with_cache(&w.queries, 3, &cache, |c| {
        ExactOnline::with_cache(&corpus, MODEL, c)
    });
    let legacy_served = par_batch_served(&corpus, &w.queries, 2, exact_factory(MODEL));
    for (((a, b), c), d) in via_client
        .iter()
        .zip(&legacy)
        .zip(&legacy_cached)
        .zip(&legacy_served)
    {
        assert_eq!(a.items, b.items);
        assert_eq!(a.items, c.items);
        assert_eq!(a.items, d.items);
    }
    client.shutdown();
}

#[test]
fn multiplexed_session_with_mixed_models_and_deadlines() {
    let (corpus, w) = fixture();
    let client = ServedClient::start(
        Arc::clone(&corpus),
        ServiceConfig {
            shards: 2,
            ..ServiceConfig::default()
        },
    );
    let models = [MODEL, ProximityModel::Global, ProximityModel::FriendsOnly];
    let mut mux = Multiplexer::new();
    for (i, q) in w.queries.iter().enumerate() {
        let req = QueryRequest::from_query(q.clone())
            .with_model(models[i % models.len()])
            .with_tag(i as u64);
        // Every fourth request gets a generous explicit budget; the rest
        // are unbounded. Nothing should miss on a healthy service.
        let req = if i % 4 == 0 {
            req.with_deadline(Duration::from_secs(30))
        } else {
            req.without_deadline()
        };
        mux.push(client.submit(req));
    }
    let done = mux.drain();
    assert_eq!(done.len(), w.len());
    for (tag, reply) in done {
        let model = models[tag as usize % models.len()];
        let mut reference = ExactOnline::new(&corpus, model);
        let want = reference.query(&w.queries[tag as usize]).items;
        assert_eq!(
            want,
            reply.outcome.expect_done("healthy service").items,
            "request {tag} diverged"
        );
    }
    client.shutdown();
}
