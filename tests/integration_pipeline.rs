//! End-to-end integration: dataset generation → corpus → every processor,
//! checking the cross-processor contracts the evaluation relies on.
//! Personalized reference rankings run through the unified [`SearchClient`]
//! API where a test doesn't specifically probe a processor's internals.

use friends::prelude::*;
use std::sync::Arc;

/// Exact personalized rankings through the client API (the planner picks
/// the processor/strategy; exactness is part of its contract).
fn client_truth(
    corpus: &Arc<Corpus>,
    queries: &[Query],
    model: ProximityModel,
) -> Vec<SearchResult> {
    let client = DirectClient::start(Arc::clone(corpus), DirectConfig::default());
    let out = client.search(queries, model);
    client.shutdown();
    out
}

fn corpus(seed: u64) -> Corpus {
    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(seed);
    Corpus::new(ds.graph, ds.store)
}

fn workload(c: &Corpus, count: usize, k: usize, seed: u64) -> QueryWorkload {
    QueryWorkload::generate(
        &c.graph,
        &c.store,
        &QueryParams {
            count,
            k,
            ..QueryParams::default()
        },
        seed,
    )
}

#[test]
fn global_processor_equals_exact_with_global_model() {
    let c = corpus(11);
    let mut global = GlobalProcessor::new(&c, IndexConfig::default());
    let mut exact = ExactOnline::new(&c, ProximityModel::Global);
    for q in &workload(&c, 30, 10, 5).queries {
        let a = global.query(q);
        let b = exact.query(q);
        assert_eq!(a.item_ids(), b.item_ids(), "query {q:?}");
        for (x, y) in a.items.iter().zip(&b.items) {
            assert!((x.1 - y.1).abs() < 1e-3, "{x:?} vs {y:?}");
        }
    }
}

#[test]
fn expansion_exhaustive_equals_exact_weighted_decay() {
    let c = corpus(13);
    let alpha = 0.45;
    let mut exact = ExactOnline::new(&c, ProximityModel::WeightedDecay { alpha });
    let mut exp = FriendExpansion::new(
        &c,
        ExpansionConfig {
            alpha,
            exhaustive: true,
            ..ExpansionConfig::default()
        },
    );
    for q in &workload(&c, 30, 10, 6).queries {
        // The two exact implementations accumulate f32 scores in different
        // orders, so near-ties may swap ranks; compare sets and score values.
        let a = exact.query(q);
        let b = exp.query(q);
        let sa: std::collections::BTreeSet<ItemId> = a.item_ids().into_iter().collect();
        let sb: std::collections::BTreeSet<ItemId> = b.item_ids().into_iter().collect();
        assert_eq!(sa, sb, "query {q:?}");
        let mb: std::collections::HashMap<ItemId, f32> = b.items.iter().copied().collect();
        for (item, s) in &a.items {
            assert!(
                (mb[item] - s).abs() < 1e-3,
                "item {item}: {s} vs {}",
                mb[item]
            );
        }
    }
}

#[test]
fn early_terminating_expansion_preserves_topk_set() {
    let c = corpus(17);
    let alpha = 0.35;
    let mut exact = ExactOnline::new(&c, ProximityModel::WeightedDecay { alpha });
    let mut exp = FriendExpansion::new(
        &c,
        ExpansionConfig {
            alpha,
            exhaustive: false,
            check_interval: 8,
        },
    );
    for q in &workload(&c, 50, 5, 7).queries {
        // The exact top-k *set* is only unique up to ties at the k-th score:
        // when the boundary is tied, either tied item is a correct answer
        // (bit-equal ties do occur on generated corpora).
        let want = exact.query(q);
        let got = exp.query(q).item_ids();
        let mut wide_q = q.clone();
        wide_q.k = q.k + 32;
        let wide = exact.query(&wide_q);
        assert!(
            topk_sets_equal_up_to_ties(&want.items, &got, &wide.items),
            "top-k sets differ beyond boundary ties for {q:?}: {:?} vs {got:?}",
            want.item_ids()
        );
    }
}

#[test]
fn prefix_consistency_across_k() {
    // The top-5 of the exact path must be a prefix of its top-10 — checked
    // through the client API, so planning can never break it either.
    let c = Arc::new(corpus(19));
    let w = workload(&c, 20, 10, 9);
    let model = ProximityModel::WeightedDecay { alpha: 0.5 };
    let big = client_truth(&c, &w.queries, model);
    let small_queries: Vec<Query> = w
        .queries
        .iter()
        .map(|q| {
            let mut q5 = q.clone();
            q5.k = 5;
            q5
        })
        .collect();
    let small = client_truth(&c, &small_queries, model);
    for (b, s) in big.iter().zip(&small) {
        let (b, s) = (b.item_ids(), s.item_ids());
        assert_eq!(&b[..s.len().min(5)], &s[..]);
    }
}

#[test]
fn cluster_index_quality_is_reasonable() {
    let c = corpus(23);
    let alpha = 0.5;
    let mut exact = ExactOnline::new(&c, ProximityModel::DistanceDecay { alpha });
    let mut cluster = ClusterIndex::build(
        &c,
        ClusterConfig {
            alpha,
            num_landmarks: 24,
            ..ClusterConfig::default()
        },
    );
    let w = workload(&c, 30, 10, 11);
    let mut ps = Vec::new();
    for q in &w.queries {
        let truth = exact.query(q);
        let approx = cluster.query(q);
        ps.push(precision_at_k(&approx.item_ids(), &truth.item_ids(), q.k));
    }
    let avg = ps.iter().sum::<f64>() / ps.len() as f64;
    assert!(avg > 0.55, "cluster precision collapsed: {avg}");
}

#[test]
fn hybrid_always_answers_and_routes_sensibly() {
    let c = corpus(29);
    let mut hybrid = Hybrid::build(&c, HybridConfig::default());
    for q in &workload(&c, 40, 10, 13).queries {
        let r = hybrid.query(q);
        assert!(r.items.len() <= q.k);
        assert!(r.items.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_ne!(hybrid.last_route(), "unrouted");
    }
}

#[test]
fn personalization_diverges_from_global_under_homophily() {
    // On a homophilous dataset, personalized and global rankings must not be
    // identical for most seekers (otherwise the whole premise is vacuous).
    // Both sides run through one client — the per-request model is the only
    // difference.
    let c = Arc::new(corpus(31));
    let w = workload(&c, 40, 10, 15);
    let global = client_truth(&c, &w.queries, ProximityModel::Global);
    let exact = client_truth(&c, &w.queries, ProximityModel::WeightedDecay { alpha: 0.4 });
    let diverged = global
        .iter()
        .zip(&exact)
        .filter(|(g, e)| g.item_ids() != e.item_ids())
        .count();
    assert!(
        diverged * 2 > w.len(),
        "only {diverged}/{} queries diverged",
        w.len()
    );
}

#[test]
fn stats_are_internally_consistent() {
    let c = corpus(37);
    let mut exp = FriendExpansion::new(&c, ExpansionConfig::default());
    for q in &workload(&c, 20, 10, 17).queries {
        let r = exp.query(q);
        assert!(r.stats.users_visited <= c.num_users() as usize);
        assert!(r.stats.postings_scanned <= c.store.num_taggings());
    }
}
