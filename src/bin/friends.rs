//! `friends` — command-line interface to the network-aware search engine.
//!
//! ```sh
//! friends generate --family delicious --scale tiny --seed 42 --out world.bin
//! friends stats    --data world.bin
//! friends query    --data world.bin --seeker 7 --tags 3,5 --k 10 --processor expansion
//! friends experts  --data world.bin --seeker 7 --tag 3 --k 5
//! ```

use friends::data::io;
use friends::prelude::*;
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n\
         friends generate --family delicious|flickr|citeulike --scale tiny|small|medium|<N> \\\n\
         \t--seed <u64> --out <file>\n\
         friends stats   --data <file>\n\
         friends query   --data <file> --seeker <id> --tags <t1,t2,..> [--k 10]\n\
         \t[--processor global|exact|expansion|cluster|hybrid|gbta] [--alpha 0.5]\n\
         friends experts --data <file> --seeker <id> --tag <t> [--k 5] [--alpha 0.5]"
    );
    exit(2);
}

/// Minimal flag parser: `--key value` pairs after the subcommand.
struct Args(std::collections::HashMap<String, String>);

impl Args {
    fn parse(rest: &[String]) -> Self {
        let mut m = std::collections::HashMap::new();
        let mut i = 0;
        while i < rest.len() {
            let k = rest[i].strip_prefix("--").unwrap_or_else(|| usage());
            let v = rest.get(i + 1).unwrap_or_else(|| usage());
            m.insert(k.to_owned(), v.clone());
            i += 2;
        }
        Args(m)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn required(&self, key: &str) -> &str {
        self.get(key).unwrap_or_else(|| {
            eprintln!("missing required flag --{key}");
            usage()
        })
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for --{key}: {v}");
                usage()
            }),
        }
    }
}

fn load_corpus(args: &Args) -> Corpus {
    let path = PathBuf::from(args.required("data"));
    match io::load(&path) {
        Ok((graph, store)) => Corpus::new(graph, store),
        Err(e) => {
            eprintln!("failed to load {}: {e}", path.display());
            exit(1);
        }
    }
}

fn cmd_generate(args: &Args) {
    let scale = match args.required("scale") {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "medium" => Scale::Medium,
        "large" => Scale::Large,
        n => Scale::Custom(n.parse().unwrap_or_else(|_| usage())),
    };
    let spec = match args.required("family") {
        "delicious" => DatasetSpec::delicious_like(scale),
        "flickr" => DatasetSpec::flickr_like(scale),
        "citeulike" => DatasetSpec::citeulike_like(scale),
        _ => usage(),
    };
    let seed = args.num("seed", 42u64);
    let out = PathBuf::from(args.required("out"));
    eprintln!("generating {} (seed {seed})...", spec.name());
    let ds = spec.build(seed);
    if let Err(e) = io::save(&out, &ds.graph, &ds.store) {
        eprintln!("failed to write {}: {e}", out.display());
        exit(1);
    }
    println!(
        "wrote {}: {} users, {} edges, {} taggings",
        out.display(),
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        ds.store.num_taggings()
    );
}

fn cmd_stats(args: &Args) {
    let corpus = load_corpus(args);
    let g = friends::graph::metrics::summarize(&corpus.graph, 1);
    let s = corpus.store.stats();
    println!("users              {}", g.nodes);
    println!("edges              {}", g.edges);
    println!(
        "degree p50/p90/p99 {}/{}/{}",
        g.degrees.p50, g.degrees.p90, g.degrees.p99
    );
    println!("clustering         {:.3}", g.clustering);
    println!("effective diameter {:.1}", g.effective_diameter);
    println!("items              {}", s.items);
    println!("tags               {}", s.tags);
    println!("taggings           {}", s.taggings);
    println!("taggings/user mean {:.1}", s.taggings_per_user_mean);
}

fn cmd_query(args: &Args) {
    let corpus = load_corpus(args);
    let seeker: UserId = args.num("seeker", 0);
    if seeker >= corpus.num_users() {
        eprintln!(
            "seeker {seeker} out of range (have {} users)",
            corpus.num_users()
        );
        exit(1);
    }
    let tags: Vec<TagId> = args
        .required("tags")
        .split(',')
        .map(|t| t.parse().unwrap_or_else(|_| usage()))
        .collect();
    let k = args.num("k", 10usize);
    let alpha = args.num("alpha", 0.5f64);
    let q = Query { seeker, tags, k };
    let start = std::time::Instant::now();
    let result = match args.get("processor").unwrap_or("expansion") {
        "global" => GlobalProcessor::new(&corpus, IndexConfig::default()).query(&q),
        "exact" => ExactOnline::new(&corpus, ProximityModel::WeightedDecay { alpha }).query(&q),
        "expansion" => FriendExpansion::new(
            &corpus,
            ExpansionConfig {
                alpha,
                ..ExpansionConfig::default()
            },
        )
        .query(&q),
        "cluster" => ClusterIndex::build(
            &corpus,
            ClusterConfig {
                alpha,
                ..ClusterConfig::default()
            },
        )
        .query(&q),
        "hybrid" => Hybrid::build(
            &corpus,
            HybridConfig {
                alpha,
                ..HybridConfig::default()
            },
        )
        .query(&q),
        "gbta" => GlobalBoundTA::new(&corpus, ProximityModel::WeightedDecay { alpha }).query(&q),
        _ => usage(),
    };
    let elapsed = start.elapsed();
    println!(
        "{} results in {:.2} ms (visited {}, postings {}, early-term {})",
        result.items.len(),
        elapsed.as_secs_f64() * 1e3,
        result.stats.users_visited,
        result.stats.postings_scanned,
        result.stats.early_terminated
    );
    for (rank, (item, score)) in result.items.iter().enumerate() {
        println!("#{:<3} item {:<8} score {score:.4}", rank + 1, item);
    }
}

fn cmd_experts(args: &Args) {
    let corpus = load_corpus(args);
    let seeker: UserId = args.num("seeker", 0);
    let tag: TagId = args.num("tag", 0);
    let k = args.num("k", 5usize);
    let alpha = args.num("alpha", 0.5f64);
    let sigma = ProximityModel::WeightedDecay { alpha }.materialize(&corpus.graph, seeker);
    let mut experts: Vec<(UserId, f64)> = (0..corpus.num_users())
        .filter(|&v| v != seeker)
        .map(|v| {
            let mass: f64 = corpus
                .store
                .user_tag_taggings(v, tag)
                .iter()
                .map(|t| t.weight as f64)
                .sum();
            (v, sigma[v as usize] * mass)
        })
        .filter(|&(_, s)| s > 0.0)
        .collect();
    experts.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    experts.truncate(k);
    if experts.is_empty() {
        println!("no reachable experts for tag {tag}");
    }
    for (rank, (v, score)) in experts.iter().enumerate() {
        println!("#{:<3} user {:<8} score {score:.4}", rank + 1, v);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    let args = Args::parse(&argv[1..]);
    match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "stats" => cmd_stats(&args),
        "query" => cmd_query(&args),
        "experts" => cmd_experts(&args),
        _ => usage(),
    }
}
