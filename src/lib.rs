//! # friends
//!
//! *With a little help from my friends* — network-aware social search.
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`graph`] — social-graph substrate (CSR storage, generators,
//!   traversals, PPR, landmarks, communities);
//! * [`index`] — IR substrate (compressed postings, inverted index,
//!   TA/NRA/WAND);
//! * [`data`] — tagging store, synthetic datasets, query workloads and
//!   timed request streams;
//! * [`core`] — the network-aware query processors and proximity models;
//! * [`service`] — the serving tier: the sharded seeker-affinity query
//!   broker with batching, coalescing and deadline-aware execution.
//!
//! ## Quickstart
//!
//! ```
//! use friends::prelude::*;
//!
//! // 1. Materialize a synthetic Delicious-like dataset.
//! let ds = DatasetSpec::delicious_like(Scale::Tiny).build(42);
//! let corpus = Corpus::new(ds.graph, ds.store);
//!
//! // 2. Build a processor and ask a personalized question.
//! let mut engine = FriendExpansion::new(&corpus, ExpansionConfig::default());
//! let result = engine.query(&Query { seeker: 7, tags: vec![3, 5], k: 10 });
//!
//! assert!(result.items.len() <= 10);
//! println!("visited {} of {} users", result.stats.users_visited, corpus.num_users());
//! ```

pub use friends_core as core;
pub use friends_data as data;
pub use friends_graph as graph;
pub use friends_index as index;
pub use friends_service as service;

/// One-stop imports for applications.
pub mod prelude {
    pub use friends_core::batch::{par_batch, par_batch_with_cache};
    pub use friends_core::cache::{CachePolicy, CacheStats, ProximityCache};
    pub use friends_core::corpus::{Corpus, QueryStats, SearchResult};
    pub use friends_core::eval::{
        kendall_tau, ndcg_at_k, precision_at_k, topk_sets_equal_up_to_ties,
    };
    pub use friends_core::processors::{
        ClusterConfig, ClusterIndex, ExactOnline, ExpansionConfig, FriendExpansion, GlobalBoundTA,
        GlobalProcessor, Hybrid, HybridConfig, Processor, ScoringStrategy,
    };
    pub use friends_core::proximity::ProximityModel;
    pub use friends_core::proximity::{ProximityVec, Sigma, SigmaWorkspace};
    pub use friends_data::datasets::{Dataset, DatasetSpec, Family, Scale};
    pub use friends_data::queries::{Query, QueryParams, QueryWorkload};
    pub use friends_data::requests::{RequestParams, RequestStream, TimedRequest};
    pub use friends_data::store::TagStore;
    pub use friends_data::{ItemId, TagId, Tagging, UserId};
    pub use friends_graph::{CsrGraph, GraphBuilder, NodeId};
    pub use friends_index::inverted::{IndexConfig, InvertedIndex};
    pub use friends_service::{
        exact_factory, global_bound_factory, par_batch_served, Deadline, FriendsService, Outcome,
        Reply, Request, ServiceConfig, ServiceStats, ShardStats, Ticket,
    };
}
