//! # friends
//!
//! *With a little help from my friends* — network-aware social search.
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`graph`] — social-graph substrate (CSR storage, generators,
//!   traversals, PPR, landmarks, communities);
//! * [`index`] — IR substrate (compressed postings, inverted index,
//!   TA/NRA/WAND);
//! * [`data`] — tagging store, synthetic datasets, query workloads and
//!   timed request streams;
//! * [`core`] — the network-aware query processors, proximity models, and
//!   the planner/registry behind the client API;
//! * [`service`] — the serving tier and the unified client API:
//!   [`SearchClient`](prelude::SearchClient) over
//!   [`DirectClient`](prelude::DirectClient) (in-process pool) and
//!   [`ServedClient`](prelude::ServedClient) (sharded broker), non-blocking
//!   tickets, and the deadline-aware [`Multiplexer`](prelude::Multiplexer).
//!
//! ## Quickstart
//!
//! One request type, one client trait; the planner picks the processor and
//! scoring strategy per request, so application code never names either:
//!
//! ```
//! use friends::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. Materialize a synthetic Delicious-like dataset.
//! let ds = DatasetSpec::delicious_like(Scale::Tiny).build(42);
//! let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
//!
//! // 2. Start an in-process client (worker pool + shared proximity cache).
//! let client = DirectClient::start(Arc::clone(&corpus), DirectConfig::default());
//!
//! // 3. Ask a personalized question.
//! let reply = client.run(
//!     QueryRequest::new(7, vec![3, 5], 10)
//!         .with_model(ProximityModel::WeightedDecay { alpha: 0.5 }),
//! );
//! let result = reply.outcome.result().expect("served in time");
//! assert!(result.items.len() <= 10);
//!
//! // 4. Or drive many in-flight requests through one completion loop.
//! let mut mux = Multiplexer::new();
//! for (i, seeker) in [7u32, 11, 13].into_iter().enumerate() {
//!     mux.push(client.submit(
//!         QueryRequest::new(seeker, vec![3], 5)
//!             .with_model(ProximityModel::FriendsOnly)
//!             .with_tag(i as u64),
//!     ));
//! }
//! while let Some((tag, reply)) = mux.next() {
//!     assert!(tag < 3 && reply.outcome.result().is_some());
//! }
//! ```
//!
//! The same requests serve unchanged — byte-identical rankings — through a
//! [`ServedClient`](prelude::ServedClient) over the sharded
//! seeker-affinity broker; see `crates/README.md` for the request
//! lifecycle and the migration table from the deprecated `par_batch*`
//! entry points.

pub use friends_core as core;
pub use friends_data as data;
pub use friends_graph as graph;
pub use friends_index as index;
pub use friends_service as service;

/// One-stop imports for applications.
pub mod prelude {
    #[allow(deprecated)]
    pub use friends_core::batch::{par_batch, par_batch_with_cache};
    pub use friends_core::cache::{CachePolicy, CacheStats, ProximityCache};
    pub use friends_core::corpus::{Corpus, QueryStats, SearchResult};
    pub use friends_core::eval::{
        kendall_tau, ndcg_at_k, precision_at_k, topk_sets_equal_up_to_ties,
    };
    pub use friends_core::latency::{LatencySnapshot, Stage, StageSnapshot};
    pub use friends_core::plan::{
        Deadline, Plan, PlanHistogram, Planner, PlannerConfig, ProcessorRegistry, QueryRequest,
    };
    pub use friends_core::processors::{
        ClusterConfig, ClusterIndex, ExactOnline, ExpansionConfig, FriendExpansion, GlobalBoundTA,
        GlobalProcessor, Hybrid, HybridConfig, Processor, ScoringStrategy,
    };
    pub use friends_core::proximity::ProximityModel;
    pub use friends_core::proximity::{ProximityVec, Sigma, SigmaBounds, SigmaWorkspace};
    pub use friends_data::datasets::{Dataset, DatasetSpec, Family, Scale};
    pub use friends_data::queries::{Query, QueryParams, QueryWorkload};
    pub use friends_data::requests::{
        OpenLoopParams, OpenLoopRequest, OpenLoopStream, RequestParams, RequestStream, TimedRequest,
    };
    pub use friends_data::store::TagStore;
    pub use friends_data::{ItemId, TagId, Tagging, UserId};
    pub use friends_graph::{CsrGraph, GraphBuilder, NodeId};
    pub use friends_index::inverted::{IndexConfig, InvertedIndex};
    #[allow(deprecated)]
    pub use friends_service::par_batch_served;
    pub use friends_service::{
        exact_factory, global_bound_factory, ClientStats, DirectClient, DirectConfig,
        DurabilityConfig, FaultKind, FaultPlan, FriendsService, LiveCorpus, LiveDurability, Metric,
        MetricKind, MetricsRegistry, Multiplexer, Mutation, MutationBatch, MutationParams,
        MutationReport, MutationStream, Outcome, OverloadPolicy, QueryTrace, RecoverError,
        RecoveryReport, Reply, Request, SearchClient, ServedClient, ServiceConfig, ServiceStats,
        ShardStats, SyncPolicy, Ticket, TraceConfig, TraceEvent, TraceOutcome, TraceSpan,
        WalAppend, WalStats,
    };
}
