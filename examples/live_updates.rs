//! Live graph: interleave edge inserts with queries on a running service.
//!
//! Streams generated mutations through [`ServedClient::apply_mutations`]
//! in epoch batches while the same client keeps answering queries. After
//! every batch it prints the new corpus epoch and what the switch cost —
//! how many σ cache entries the incremental sweep dropped (only seekers
//! whose proximity can cross a touched edge), how many the writer
//! re-materialized before publishing, and how many memoized results were
//! invalidated per-seeker/per-tag — then finishes with the read path's
//! per-stage latency percentiles accumulated across all epochs.
//!
//! ```sh
//! cargo run --release --example live_updates
//! ```

use friends::prelude::*;
use std::sync::Arc;

fn main() {
    let ds = DatasetSpec::delicious_like(Scale::Small).build(42);
    let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
    let queries = RequestStream::generate(
        &corpus.graph,
        &corpus.store,
        &RequestParams {
            count: 2_000,
            ..RequestParams::default()
        },
        11,
    )
    .queries();
    let muts = MutationStream::generate(
        &corpus.graph,
        &corpus.store,
        &MutationParams {
            count: 256,
            ..MutationParams::default()
        },
        11,
    );

    let client = ServedClient::start(
        Arc::clone(&corpus),
        ServiceConfig {
            shards: 2,
            result_cache_capacity: 1_024,
            ..ServiceConfig::default()
        },
    );
    let model = ProximityModel::WeightedDecay { alpha: 0.5 };

    // Warm both caches so the epoch switches below have something real to
    // invalidate — a cold cache makes every sweep trivially drop zero.
    client.search(&queries, model);

    let batches = muts.batches(32);
    let per_epoch = queries.len() / (batches.len() + 1);
    println!("epoch | mutations | σ dropped | σ refreshed | results dropped | queries between");
    for (i, batch) in batches.iter().enumerate() {
        // Queries and writes interleave: each slice runs against the
        // epoch the previous batch published.
        let slice = &queries[i * per_epoch..(i + 1) * per_epoch];
        client.search(slice, model);
        // `None` horizon: exact reach-based invalidation (a horizon
        // over-approximates the sweep to bound its cost on huge graphs).
        let report: MutationReport = client.apply_mutations(batch, None);
        println!(
            "{:>5} | {:>9} | {:>9} | {:>11} | {:>15} | {:>15}",
            report.epoch,
            report.mutations,
            report.prox_invalidated,
            report.sigma_refreshed,
            report.results_invalidated,
            slice.len(),
        );
    }

    let totals = client.stats().totals();
    assert_eq!(totals.mutation_epoch, batches.len() as u64);
    println!(
        "\nread-path stage latencies across {} epochs:",
        totals.mutation_epoch
    );
    for &stage in &[
        Stage::QueueWait,
        Stage::Sigma,
        Stage::Scoring,
        Stage::EndToEnd,
    ] {
        let snap = totals.latency.get(stage);
        println!(
            "  {:<10} p50 {:>9.3?}  p99 {:>9.3?}  max {:>9.3?}  ({} samples)",
            stage.name(),
            snap.p50(),
            snap.p99(),
            snap.max(),
            snap.count(),
        );
    }
    client.shutdown();
}
