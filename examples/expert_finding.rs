//! Expert finding: a second application built on the same public API.
//!
//! Instead of ranking *items*, rank *users*: who in (or near) my network is
//! the authority on a topic? The expert score of user `v` for seeker `u` and
//! tag `t` is `σ(u, v) · mass_v(t)` — annotation volume discounted by social
//! distance. This demonstrates composing the proximity models and the tag
//! store directly; the closing section then asks the unified
//! [`SearchClient`] what those nearby authorities would actually recommend,
//! tying the custom ranking back to the planner-backed item search.
//!
//! ```sh
//! cargo run --release --example expert_finding
//! ```

use friends::prelude::*;
use std::sync::Arc;

/// Rank the top-`k` experts on `tag` from `seeker`'s point of view.
fn find_experts(
    corpus: &Corpus,
    model: ProximityModel,
    seeker: UserId,
    tag: TagId,
    k: usize,
) -> Vec<(UserId, f64)> {
    let sigma = model.materialize(&corpus.graph, seeker);
    let mut experts: Vec<(UserId, f64)> = Vec::new();
    for v in 0..corpus.num_users() {
        if v == seeker {
            continue; // you are not your own expert
        }
        let mass: f64 = corpus
            .store
            .user_tag_taggings(v, tag)
            .iter()
            .map(|t| t.weight as f64)
            .sum();
        let score = sigma[v as usize] * mass;
        if score > 0.0 {
            experts.push((v, score));
        }
    }
    experts.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    experts.truncate(k);
    experts
}

fn main() {
    let ds = DatasetSpec::citeulike_like(Scale::Tiny).build(17);
    let corpus = Arc::new(Corpus::new(ds.graph, ds.store));

    // Busiest tag = the hottest research topic in this synthetic world.
    let topic = (0..corpus.store.num_tags())
        .max_by_key(|&t| corpus.store.tag_taggings(t).len())
        .expect("non-empty tag universe");
    let seeker: UserId = 5;

    println!(
        "topic tag {topic} ({} annotations); seeker {seeker} (degree {})\n",
        corpus.store.tag_taggings(topic).len(),
        corpus.graph.degree(seeker)
    );

    for model in [
        ProximityModel::Global,
        ProximityModel::FriendsOnly,
        ProximityModel::WeightedDecay { alpha: 0.5 },
        ProximityModel::Ppr {
            alpha: 0.2,
            epsilon: 1e-5,
        },
    ] {
        let experts = find_experts(&corpus, model, seeker, topic, 5);
        println!("top experts under `{}`:", model.name());
        if experts.is_empty() {
            println!("  (none reachable)");
        }
        for (rank, (v, score)) in experts.iter().enumerate() {
            let hops = friends_graph::traversal::bidirectional_hops(&corpus.graph, seeker, *v)
                .map(|h| h.to_string())
                .unwrap_or_else(|| "∞".into());
            println!(
                "  #{:<2} user {:<6} score {:.4}  ({} hops away, {} annotations on topic)",
                rank + 1,
                v,
                score,
                hops,
                corpus.store.user_tag_taggings(*v, topic).len()
            );
        }
        println!();
    }

    // What would those nearby authorities point the seeker at? The same
    // topic as an item query through the unified client — the planner
    // picks the processor and strategy.
    let client = DirectClient::start(Arc::clone(&corpus), DirectConfig::default());
    let reply = client.run(
        QueryRequest::new(seeker, vec![topic], 5)
            .with_model(ProximityModel::WeightedDecay { alpha: 0.5 }),
    );
    let items = reply.outcome.result().expect("served in time");
    println!("what the seeker's circle would recommend on the topic:");
    for (rank, (item, score)) in items.items.iter().enumerate() {
        println!("  #{:<2} item {:<6} score {score:.4}", rank + 1, item);
    }
    client.shutdown();

    println!(
        "\nnote how `global` surfaces the most prolific users anywhere in the\n\
         network, while the personalized models surface *nearby* authorities\n\
         — the ones a real person could actually ask for help."
    );
}
