//! Crash-safe live graph: kill a durable service mid-append, recover, and
//! verify nothing acknowledged was lost.
//!
//! A [`ServedClient`] started with `ServiceConfig::durability` writes
//! every acknowledged mutation batch to a checksummed write-ahead log
//! before the epoch publishes (`SyncPolicy::Always`: one fsync per batch),
//! and periodically checkpoints the whole `(graph, store, epoch)` state
//! into a checksummed snapshot. This example runs that lifecycle end to
//! end:
//!
//! 1. serve queries while mutation batches stream through the WAL,
//! 2. "crash" — shut down, then smear a torn half-record onto the WAL
//!    tail, exactly what a process death mid-`write` leaves behind,
//! 3. restart over the same directory with a deliberately *stale* seed
//!    corpus and print the [`RecoveryReport`]: which snapshot loaded, how
//!    many batches replayed, and that the torn tail was detected and cut,
//! 4. prove the recovered answers are byte-identical to from-scratch
//!    execution on the recovered snapshot.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use friends::prelude::*;
use std::io::Write as _;
use std::sync::Arc;

fn main() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("friends-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let ds = DatasetSpec::delicious_like(Scale::Small).build(42);
    let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
    let queries = RequestStream::generate(
        &corpus.graph,
        &corpus.store,
        &RequestParams {
            count: 500,
            ..RequestParams::default()
        },
        11,
    )
    .queries();
    let muts = MutationStream::generate(
        &corpus.graph,
        &corpus.store,
        &MutationParams {
            count: 320,
            ..MutationParams::default()
        },
        11,
    );
    let model = ProximityModel::WeightedDecay { alpha: 0.5 };

    // Snapshot every 4 batches so the restart below exercises both halves
    // of recovery: snapshot load plus WAL replay of the suffix.
    let durability = {
        let mut d = DurabilityConfig::new(&dir);
        d.sync = SyncPolicy::Always;
        d.snapshot_every = 4;
        d
    };
    let config = ServiceConfig {
        shards: 2,
        durability: Some(durability),
        ..ServiceConfig::default()
    };

    let client = ServedClient::start(Arc::clone(&corpus), config.clone());
    client.search(&queries, model);
    println!("epoch | mutations | wal bytes | fsynced");
    for batch in muts.batches(32) {
        let report: MutationReport = client.apply_mutations(&batch, None);
        let wal = report.wal.expect("durable service returns a WAL receipt");
        println!(
            "{:>5} | {:>9} | {:>9} | {}",
            report.epoch, report.mutations, wal.bytes, wal.synced
        );
    }
    let final_epoch = client.epoch();
    let expect = client.service().snapshot();
    client.shutdown();

    // The crash: a process death mid-append leaves a torn record on the
    // WAL tail — a length prefix promising more bytes than ever hit the
    // disk. Recovery must cut it, not trip over it.
    let tail = newest_wal_segment(&dir);
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&tail)
        .expect("open WAL tail");
    f.write_all(&[0xEE; 7]).expect("smear torn record");
    drop(f);
    println!("\ncrash: tore the tail of {}", tail.display());

    // Restart over the same directory, seeding with the *stale* pre-crash
    // corpus: the disk state wins, not the argument.
    let client = ServedClient::start(Arc::clone(&corpus), config);
    let report: &RecoveryReport = client.recovery_report().expect("durable service");
    println!(
        "recovered: snapshot epoch {} + {} replayed batches -> epoch {} \
         ({} WAL bytes in {:.1} ms; torn tail cut: {}; degraded: {})",
        report.snapshot_epoch,
        report.replayed,
        report.recovered_epoch,
        report.wal_bytes,
        report.elapsed_ms,
        report.truncated_tail,
        report.degraded(),
    );
    assert_eq!(report.recovered_epoch, final_epoch, "acked batches lost");
    assert!(report.truncated_tail, "the torn record went undetected");

    // Byte-identical serving: every post-recovery answer equals
    // from-scratch execution on the pre-crash snapshot.
    let served = client.search(&queries, model);
    for (q, r) in queries.iter().zip(&served) {
        let direct = ExactOnline::new(&expect, model).query(q);
        assert_eq!(r.items, direct.items, "recovered answer diverged: {q:?}");
    }
    println!(
        "verified: {} post-recovery answers byte-identical to the pre-crash corpus",
        served.len()
    );
    client.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The lexically-last `wal-*.log` under `<dir>/wal/` — segment names
/// embed the first epoch, so lexical order is epoch order.
fn newest_wal_segment(dir: &std::path::Path) -> std::path::PathBuf {
    let mut segments: Vec<_> = std::fs::read_dir(dir.join("wal"))
        .expect("read durability dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|x| x == "log")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-"))
        })
        .collect();
    segments.sort();
    segments.pop().expect("durable service left no WAL segment")
}
