//! Dump the unified metrics registry as Prometheus text exposition.
//!
//! Drives a small repeat-query stream through a [`ServedClient`] (so the
//! caches, planner and coalescer all have something to count), then prints
//! `SearchClient::metrics()` rendered as Prometheus exposition — the same
//! `friends_<subsystem>_<name>` keys `report --json` embeds as `metrics_*`
//! objects. CI lints every line of this output against
//! `^# (HELP|TYPE)|^friends_[a-z0-9_]+(\{[^}]*\})? [0-9]`.
//!
//! ```sh
//! cargo run --release --example metrics_dump
//! ```

use friends::prelude::*;
use std::sync::Arc;

fn main() {
    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(42);
    let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
    let stream = RequestStream::generate(
        &corpus.graph,
        &corpus.store,
        &RequestParams {
            count: 300,
            ..RequestParams::default()
        },
        11,
    );
    let client = ServedClient::start(
        Arc::clone(&corpus),
        ServiceConfig {
            shards: 2,
            // Tiny caches so admission and eviction both show up.
            cache_capacity: 16,
            result_cache_capacity: 16,
            ..ServiceConfig::default()
        },
    );
    // Two passes of the same stream: the second hits the proximity and
    // result caches, so hit counters and memo-served counts are non-zero.
    let queries = stream.queries();
    let model = ProximityModel::WeightedDecay { alpha: 0.5 };
    client.search(&queries, model);
    client.search(&queries, model);
    print!("{}", client.metrics().render_prometheus());
    client.shutdown();
}
