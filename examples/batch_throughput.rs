//! Serving-style throughput: answer a whole query log four ways — the
//! deprecated flat `par_batch` chunk split, an in-process [`DirectClient`]
//! pool, and a [`ServedClient`] over the seeker-affinity broker (with and
//! without result memoization) — and verify the answers never change.
//!
//! ```sh
//! cargo run --release --example batch_throughput
//! ```

use friends::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(11);
    let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
    let workload = QueryWorkload::generate(
        &corpus.graph,
        &corpus.store,
        &QueryParams {
            count: 400,
            k: 10,
            ..QueryParams::default()
        },
        3,
    );
    println!(
        "{} queries over {} users / {} taggings ({} hardware threads)\n",
        workload.len(),
        corpus.num_users(),
        corpus.store.num_taggings(),
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let model = ProximityModel::WeightedDecay { alpha: 0.5 };

    // The historical baseline: the deprecated chunk-split batch path.
    // Kept here as the comparison anchor — byte-identical by contract.
    #[allow(deprecated)]
    let want = par_batch(&workload.queries, 1, || ExactOnline::new(&corpus, model));

    println!("{:<22} {:>12} {:>12}", "path", "elapsed ms", "queries/s");
    {
        #[allow(deprecated)]
        let (results, elapsed) = {
            let start = Instant::now();
            let r = par_batch(&workload.queries, 4, || ExactOnline::new(&corpus, model));
            (r, start.elapsed())
        };
        for (a, b) in want.iter().zip(&results) {
            assert_eq!(a.items, b.items, "legacy path must not change answers");
        }
        println!(
            "{:<22} {:>12.1} {:>12.0}   (deprecated)",
            "par_batch x4",
            elapsed.as_secs_f64() * 1e3,
            workload.len() as f64 / elapsed.as_secs_f64()
        );
    }

    // The in-process client: same executors behind the unified API, plus a
    // shared proximity cache and non-blocking submission.
    for threads in [1usize, 2, 4] {
        let client = DirectClient::start(
            Arc::clone(&corpus),
            DirectConfig {
                threads,
                ..DirectConfig::default()
            },
        );
        let start = Instant::now();
        let results = client.search(&workload.queries, model);
        let elapsed = start.elapsed();
        for (a, b) in want.iter().zip(&results) {
            assert_eq!(a.items, b.items, "client must not change any answer");
        }
        let stats = client.shutdown();
        println!(
            "{:<22} {:>12.1} {:>12.0}   ({:.0}% cache hits)",
            format!("DirectClient x{threads}"),
            elapsed.as_secs_f64() * 1e3,
            workload.len() as f64 / elapsed.as_secs_f64(),
            100.0 * stats.cache.hit_rate(),
        );
    }

    // The serving tier: the same workload through the seeker-affinity
    // broker. Repeated seekers stay on one shard (hot private caches),
    // duplicate in-flight queries execute once, and — with memoization on —
    // repeats across dispatch cycles skip execution entirely.
    for (label, result_cache) in [("ServedClient", 0usize), ("  + result memo", 4096)] {
        for shards in [2usize, 4] {
            let client = ServedClient::start(
                Arc::clone(&corpus),
                ServiceConfig {
                    shards,
                    result_cache_capacity: result_cache,
                    ..ServiceConfig::default()
                },
            );
            let start = Instant::now();
            let served = client.search(&workload.queries, model);
            let elapsed = start.elapsed();
            for (a, b) in want.iter().zip(&served) {
                assert_eq!(a.items, b.items, "service must not change any answer");
            }
            let stats = client.shutdown().totals();
            println!(
                "{:<22} {:>12.1} {:>12.0}   ({} executed, {} coalesced, {} memo-served, {:.0}% cache hits)",
                format!("{label} x{shards}"),
                elapsed.as_secs_f64() * 1e3,
                workload.len() as f64 / elapsed.as_secs_f64(),
                stats.executed,
                stats.coalesced,
                stats.result_served,
                100.0 * stats.cache.hit_rate(),
            );
        }
    }

    println!(
        "\n(answers verified identical across every path; speedup is bounded\n\
         by the hardware thread count printed above)"
    );
}
