//! Serving-style throughput: answer a whole query log three ways — one
//! processor on one thread, the flat `par_batch` chunk split, and the
//! `friends_service` seeker-affinity broker — and verify the answers never
//! change.
//!
//! ```sh
//! cargo run --release --example batch_throughput
//! ```

use friends::core::batch::par_batch;
use friends::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(11);
    let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
    let workload = QueryWorkload::generate(
        &corpus.graph,
        &corpus.store,
        &QueryParams {
            count: 400,
            k: 10,
            ..QueryParams::default()
        },
        3,
    );
    println!(
        "{} queries over {} users / {} taggings ({} hardware threads)\n",
        workload.len(),
        corpus.num_users(),
        corpus.store.num_taggings(),
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    println!("{:<10} {:>12} {:>12}", "threads", "elapsed ms", "queries/s");
    let mut baseline = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let results = par_batch(&workload.queries, threads, || {
            FriendExpansion::new(
                &corpus,
                ExpansionConfig {
                    alpha: 0.5,
                    ..ExpansionConfig::default()
                },
            )
        });
        let elapsed = start.elapsed();
        assert_eq!(results.len(), workload.len());
        if threads == 1 {
            baseline = results.iter().map(|r| r.item_ids()).collect();
        } else {
            // Parallel execution must not change any answer.
            for (r, b) in results.iter().zip(&baseline) {
                assert_eq!(&r.item_ids(), b);
            }
        }
        println!(
            "{:<10} {:>12.1} {:>12.0}",
            threads,
            elapsed.as_secs_f64() * 1e3,
            workload.len() as f64 / elapsed.as_secs_f64()
        );
    }

    // The serving tier: the same workload through the seeker-affinity
    // broker. Repeated seekers stay on one shard (hot private caches) and
    // duplicate in-flight queries are executed once.
    let model = ProximityModel::WeightedDecay { alpha: 0.5 };
    let want = par_batch(&workload.queries, 1, || ExactOnline::new(&corpus, model));
    println!(
        "\n{:<10} {:>12} {:>12}",
        "service", "elapsed ms", "queries/s"
    );
    for shards in [1usize, 2, 4] {
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards,
                ..ServiceConfig::default()
            },
            exact_factory(model),
        );
        let start = Instant::now();
        let served = svc.run_batch(&workload.queries);
        let elapsed = start.elapsed();
        for (a, b) in want.iter().zip(&served) {
            assert_eq!(a.items, b.items, "service must not change any answer");
        }
        let stats = svc.shutdown().totals();
        println!(
            "{:<10} {:>12.1} {:>12.0}   ({} executed, {} coalesced, {:.0}% cache hits, {} deadline misses)",
            format!("{shards} shard"),
            elapsed.as_secs_f64() * 1e3,
            workload.len() as f64 / elapsed.as_secs_f64(),
            stats.executed,
            stats.coalesced,
            100.0 * stats.cache.hit_rate(),
            stats.deadline_misses,
        );
    }
    println!(
        "\n(answers verified identical across thread counts and the service\n\
         path; speedup is bounded by the hardware thread count printed above)"
    );
}
