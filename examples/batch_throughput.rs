//! Serving-style throughput: answer a whole query log with one processor
//! per worker thread, comparing single-threaded and parallel throughput.
//!
//! ```sh
//! cargo run --release --example batch_throughput
//! ```

use friends::core::batch::par_batch;
use friends::prelude::*;
use std::time::Instant;

fn main() {
    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(11);
    let corpus = Corpus::new(ds.graph, ds.store);
    let workload = QueryWorkload::generate(
        &corpus.graph,
        &corpus.store,
        &QueryParams {
            count: 400,
            k: 10,
            ..QueryParams::default()
        },
        3,
    );
    println!(
        "{} queries over {} users / {} taggings ({} hardware threads)\n",
        workload.len(),
        corpus.num_users(),
        corpus.store.num_taggings(),
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    println!("{:<10} {:>12} {:>12}", "threads", "elapsed ms", "queries/s");
    let mut baseline = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let results = par_batch(&workload.queries, threads, || {
            FriendExpansion::new(
                &corpus,
                ExpansionConfig {
                    alpha: 0.5,
                    ..ExpansionConfig::default()
                },
            )
        });
        let elapsed = start.elapsed();
        assert_eq!(results.len(), workload.len());
        if threads == 1 {
            baseline = results.iter().map(|r| r.item_ids()).collect();
        } else {
            // Parallel execution must not change any answer.
            for (r, b) in results.iter().zip(&baseline) {
                assert_eq!(&r.item_ids(), b);
            }
        }
        println!(
            "{:<10} {:>12.1} {:>12.0}",
            threads,
            elapsed.as_secs_f64() * 1e3,
            workload.len() as f64 / elapsed.as_secs_f64()
        );
    }
    println!(
        "\n(answers verified identical across thread counts; speedup is\n\
         bounded by the hardware thread count printed above)"
    );
}
