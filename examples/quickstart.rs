//! Quickstart: build a synthetic social-tagging dataset, ask a
//! personalized question through the unified [`SearchClient`] API, then
//! compare every underlying processor on the same query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use friends::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // A ~500-user Delicious-like world: scale-free friendships, Zipf tags,
    // homophilous annotation behaviour.
    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(42);
    let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
    println!(
        "dataset `{}`: {} users / {} edges / {} taggings",
        ds.name,
        corpus.num_users(),
        corpus.graph.num_edges(),
        corpus.store.num_taggings()
    );

    // A reproducible query workload; take the first query as our example.
    let workload = QueryWorkload::generate(
        &corpus.graph,
        &corpus.store,
        &QueryParams {
            count: 1,
            min_tags: 2,
            max_tags: 2,
            k: 10,
        },
        7,
    );
    let q = &workload.queries[0];
    println!("\nquery: seeker={} tags={:?} k={}\n", q.seeker, q.tags, q.k);

    let alpha = 0.5;
    let model = ProximityModel::WeightedDecay { alpha };

    // The application-facing path: one client, one request type. The
    // planner chooses the processor and scoring strategy behind the trait.
    let client = DirectClient::start(Arc::clone(&corpus), DirectConfig::default());
    let t = Instant::now();
    let reply = client.run(QueryRequest::from_query(q.clone()).with_model(model));
    let truth = reply.outcome.result().expect("served in time").clone();
    println!(
        "SearchClient answered in {} us (worker {}, plan: {:?})\n",
        t.elapsed().as_micros(),
        reply.shard,
        client.stats().plans.strategies,
    );

    // Under the hood: the processors the planner chooses between, driven
    // directly for comparison.
    let mut exact = ExactOnline::new(&corpus, model);
    let mut global = GlobalProcessor::new(&corpus, IndexConfig::default());
    let mut expansion = FriendExpansion::new(
        &corpus,
        ExpansionConfig {
            alpha,
            ..ExpansionConfig::default()
        },
    );
    let mut cluster = ClusterIndex::build(
        &corpus,
        ClusterConfig {
            alpha,
            ..ClusterConfig::default()
        },
    );
    let mut hybrid = Hybrid::build(
        &corpus,
        HybridConfig {
            alpha,
            ..HybridConfig::default()
        },
    );

    println!(
        "{:<18} {:>9} {:>8} {:>9} {:>10}",
        "processor", "time_us", "p@10", "visited", "postings"
    );
    let run = |name: &str, result: SearchResult, elapsed_us: u128| {
        let p = precision_at_k(&result.item_ids(), &truth.item_ids(), q.k);
        println!(
            "{:<18} {:>9} {:>8.2} {:>9} {:>10}",
            name, elapsed_us, p, result.stats.users_visited, result.stats.postings_scanned
        );
    };

    let t = Instant::now();
    let r = exact.query(q);
    run("exact-online", r, t.elapsed().as_micros());

    let t = Instant::now();
    let r = global.query(q);
    run("global (no net)", r, t.elapsed().as_micros());

    let t = Instant::now();
    let r = expansion.query(q);
    run("friend-expansion", r, t.elapsed().as_micros());

    let t = Instant::now();
    let r = cluster.query(q);
    run("cluster-index", r, t.elapsed().as_micros());

    let t = Instant::now();
    let r = hybrid.query(q);
    run("hybrid", r, t.elapsed().as_micros());
    println!("(hybrid routed to: {})", hybrid.last_route());

    println!("\ntop-5 personalized results:");
    for (rank, (item, score)) in truth.items.iter().take(5).enumerate() {
        println!("  #{:<2} item {:<6} score {score:.4}", rank + 1, item);
    }
    client.shutdown();
}
