//! Social bookmark search: the motivating scenario of the paper family.
//!
//! Two users issue the *same* tag query. The global ranking is the same
//! list for both; the network-aware engine returns different lists, each
//! biased toward what the seeker's circle has bookmarked. The example
//! drives all four requests (2 seekers × 2 models) concurrently through
//! one [`SearchClient`] and a deadline-aware [`Multiplexer`], then
//! quantifies the divergence (Jaccard of result sets, Kendall's τ).
//!
//! ```sh
//! cargo run --release --example delicious_search
//! ```

use friends::prelude::*;
use std::sync::Arc;

fn jaccard(a: &[ItemId], b: &[ItemId]) -> f64 {
    let sa: std::collections::HashSet<_> = a.iter().collect();
    let sb: std::collections::HashSet<_> = b.iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    inter as f64 / (sa.len() + sb.len() - inter) as f64
}

fn main() {
    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(1);
    let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
    let alpha = 0.4;
    let personalized = ProximityModel::WeightedDecay { alpha };

    // Pick the two highest-degree users as seekers and a popular tag pair
    // they can both "see" (used in both neighborhoods).
    let mut by_degree: Vec<UserId> = (0..corpus.num_users()).collect();
    by_degree.sort_unstable_by_key(|&u| std::cmp::Reverse(corpus.graph.degree(u)));
    let (alice, bob) = (by_degree[0], by_degree[1]);

    // Most-used tags overall.
    let mut tag_volume: Vec<(TagId, usize)> = (0..corpus.store.num_tags())
        .map(|t| (t, corpus.store.tag_taggings(t).len()))
        .collect();
    tag_volume.sort_unstable_by_key(|&(_, n)| std::cmp::Reverse(n));
    let tags: Vec<TagId> = tag_volume.iter().take(2).map(|&(t, _)| t).collect();
    let k = 10;

    println!(
        "seekers: alice={alice} (degree {}), bob={bob} (degree {})",
        corpus.graph.degree(alice),
        corpus.graph.degree(bob)
    );
    println!("query tags: {tags:?} (the two most-used tags), k={k}\n");

    // One client, four in-flight requests, one completion loop. Tags
    // 0/1 = alice/bob global, 2/3 = alice/bob personalized.
    let client = DirectClient::start(Arc::clone(&corpus), DirectConfig::default());
    let mut mux = Multiplexer::new();
    for (tag_id, (seeker, model)) in [
        (alice, ProximityModel::Global),
        (bob, ProximityModel::Global),
        (alice, personalized),
        (bob, personalized),
    ]
    .into_iter()
    .enumerate()
    {
        mux.push(
            client.submit(
                QueryRequest::new(seeker, tags.clone(), k)
                    .with_model(model)
                    .with_tag(tag_id as u64),
            ),
        );
    }
    let mut results: [Option<SearchResult>; 4] = [None, None, None, None];
    for (tag, reply) in mux {
        results[tag as usize] = Some(reply.outcome.expect_done("search"));
    }
    let [ga, gb, pa, pb] = results.map(|r| r.expect("all four completed"));

    println!("global(alice) vs global(bob):");
    println!(
        "  identical (as expected): jaccard = {:.2}",
        jaccard(&ga.item_ids(), &gb.item_ids())
    );

    println!("personalized(alice) vs personalized(bob):");
    println!(
        "  jaccard = {:.2}, kendall tau on common = {:.2}",
        jaccard(&pa.item_ids(), &pb.item_ids()),
        kendall_tau(&pa.item_ids(), &pb.item_ids())
    );

    println!("\npersonalized vs global, per seeker:");
    for (name, p, g) in [("alice", &pa, &ga), ("bob", &pb, &gb)] {
        println!(
            "  {name}: precision@{k} of global against personalized truth = {:.2}",
            precision_at_k(&g.item_ids(), &p.item_ids(), k)
        );
    }

    println!("\nalice's personalized top-5 (score = friend-weighted mass):");
    for (rank, (item, score)) in pa.items.iter().take(5).enumerate() {
        // How many direct friends bookmarked it with the query tags?
        let friends_with_item = corpus
            .graph
            .neighbors(alice)
            .iter()
            .filter(|&&f| {
                tags.iter().any(|&t| {
                    corpus
                        .store
                        .user_tag_taggings(f, t)
                        .iter()
                        .any(|tg| tg.item == *item)
                })
            })
            .count();
        println!(
            "  #{:<2} item {:<6} score {:.3}  ({} direct friends bookmarked it)",
            rank + 1,
            item,
            score,
            friends_with_item
        );
    }
    client.shutdown();
}
