//! What-if analysis: how much does *homophily* — friends annotating the same
//! things — power network-aware search?
//!
//! The generator exposes homophily as a knob. This example sweeps it and
//! reports, at each level: the measured annotation sharing, how well the
//! global ranking approximates the personalized one, and the cost profile
//! of FriendExpansion — making the knob's (sometimes counter-intuitive)
//! effects visible end to end. The personalized truth at every level runs
//! through the unified [`SearchClient`] (a fresh [`DirectClient`] per
//! corpus, since each level is a different world).
//!
//! ```sh
//! cargo run --release --example homophily_whatif
//! ```

use friends::data::generator::{generate, measured_homophily, WorkloadParams};
use friends::graph::generators::{self, WeightModel};
use friends::prelude::*;
use std::sync::Arc;

fn main() {
    let users = 800;
    let base = generators::watts_strogatz(users, 8, 0.1, 5);
    let graph = generators::assign_weights(&base, WeightModel::Jaccard { floor: 0.1 }, 6);

    println!(
        "{:>9} {:>10} {:>12} {:>12} {:>12}",
        "homophily", "measured", "p@10 global", "visited/user", "early-term %"
    );

    for h in [0.0, 0.25, 0.5, 0.75, 0.95] {
        let store = generate(
            &graph,
            &WorkloadParams {
                num_items: 8_000,
                num_tags: 300,
                mean_taggings_per_user: 25.0,
                homophily: h,
                ..WorkloadParams::default()
            },
            99,
        );
        let mh = measured_homophily(&graph, &store);
        let corpus = Arc::new(Corpus::new(graph.clone(), store));

        let workload = QueryWorkload::generate(
            &corpus.graph,
            &corpus.store,
            &QueryParams {
                count: 40,
                k: 10,
                ..QueryParams::default()
            },
            3,
        );

        // Personalized truth through the client API; global and expansion
        // driven directly for their cost/quality counters.
        let client = DirectClient::start(Arc::clone(&corpus), DirectConfig::default());
        let truths = client.search(
            &workload.queries,
            ProximityModel::WeightedDecay { alpha: 0.4 },
        );
        client.shutdown();

        let mut global = GlobalProcessor::new(&corpus, IndexConfig::default());
        let mut expansion = FriendExpansion::new(
            &corpus,
            ExpansionConfig {
                alpha: 0.4,
                check_interval: 16,
                ..ExpansionConfig::default()
            },
        );

        let mut precisions = Vec::new();
        let mut visited = 0usize;
        let mut early = 0usize;
        for (q, truth) in workload.queries.iter().zip(&truths) {
            let g = global.query(q);
            precisions.push(precision_at_k(&g.item_ids(), &truth.item_ids(), q.k));
            let e = expansion.query(q);
            visited += e.stats.users_visited;
            if e.stats.early_terminated {
                early += 1;
            }
        }
        let n = workload.len() as f64;
        println!(
            "{:>9.2} {:>10.2} {:>12.2} {:>12.1} {:>11.0}%",
            h,
            mh,
            precisions.iter().sum::<f64>() / n,
            visited as f64 / n,
            100.0 * early as f64 / n
        );
    }

    println!(
        "\nreading: the measured-sharing column confirms the knob works (it\n\
         tracks the configured homophily). Two effects compound as it rises:\n\
         friends' annotations dominate the personalized score, AND copying\n\
         concentrates *global* popularity on the same items — so the global\n\
         ranking can track the personalized one better, not worse. The\n\
         regime where personalization matters most is moderate homophily\n\
         with niche queries; early-termination cost is driven by k and\n\
         proximity locality (see Fig 8 in EXPERIMENTS.md)."
    );
}
