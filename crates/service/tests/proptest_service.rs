//! Routing-exactness property suite: for random corpora and request
//! streams, the service returns **byte-identical** results (same item ids,
//! bit-equal scores) to direct single-processor execution and to
//! `par_batch`, for every proximity model × processor — including under
//! forced shard counts of 1 (fully serialized) and far more shards than
//! distinct seekers (maximally spread). Affinity routing, batching and
//! coalescing may change *where and how often* a query executes, never its
//! answer.

// This suite deliberately pins the deprecated batch entry points — they
// must stay byte-identical to the service for as long as they exist.
#![allow(deprecated)]

use friends_core::batch::par_batch;
use friends_core::corpus::Corpus;
use friends_core::plan::QueryRequest;
use friends_core::processors::{
    ExactOnline, ExpansionConfig, FriendExpansion, GlobalBoundTA, Processor,
};
use friends_core::proximity::{ProximityModel, SigmaBounds};
use friends_data::queries::Query;
use friends_data::store::TagStore;
use friends_data::Tagging;
use friends_graph::GraphBuilder;
use friends_service::{
    exact_factory, global_bound_factory, par_batch_served, FaultKind, FaultPlan, FriendsService,
    Outcome, Request, SearchClient, ServedClient, ServiceConfig, ShardContext,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Strategy: a small random corpus plus a stream of queries with repeated
/// seekers (repetition is what exercises affinity and coalescing).
fn arb_corpus_and_stream() -> impl Strategy<Value = (Arc<Corpus>, Vec<Query>)> {
    (
        3usize..24, // users
        1u32..16,   // items
        1u32..5,    // tags
        proptest::collection::vec((0u32..24, 0u32..16, 0u32..5, 0.01f32..2.0), 0..80),
        proptest::collection::vec((0u32..24, 0u32..24, 0.05f32..1.0), 0..48),
        proptest::collection::vec((0u32..6, 0u32..5, 1usize..6), 1..24), // (seeker-pool idx, tag, k)
    )
        .prop_map(|(n, items, tags, raw_taggings, raw_edges, raw_queries)| {
            let n = n.max(2);
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in raw_edges {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            let graph = b.build();
            let taggings: Vec<Tagging> = raw_taggings
                .into_iter()
                .map(|(u, i, t, w)| Tagging {
                    user: u % n as u32,
                    item: i % items,
                    tag: t % tags,
                    weight: w,
                })
                .collect();
            let store = TagStore::build(n as u32, items, tags, taggings);
            let corpus = Arc::new(Corpus::new(graph, store));
            // A small seeker pool ⇒ repeated seekers (and often repeated
            // whole queries) across the stream.
            let queries: Vec<Query> = raw_queries
                .into_iter()
                .map(|(s, t, k)| Query {
                    seeker: s % n as u32,
                    tags: vec![t % tags],
                    k,
                })
                .collect();
            (corpus, queries)
        })
}

fn all_models() -> Vec<ProximityModel> {
    vec![
        ProximityModel::Global,
        ProximityModel::FriendsOnly,
        ProximityModel::DistanceDecay { alpha: 0.5 },
        ProximityModel::WeightedDecay { alpha: 0.5 },
        ProximityModel::Ppr {
            alpha: 0.2,
            epsilon: 1e-4,
        },
        ProximityModel::AdamicAdar,
    ]
}

/// Shard counts the satellite task pins: serialized, a few, and far more
/// shards than any stream has distinct seekers.
const SHARD_COUNTS: [usize; 3] = [1, 3, 64];

/// Strategy: arbitrary σ bounds, from brutally truncated (radius 0) to
/// effectively exact (a radius beyond any 24-user test graph's diameter
/// with no mass floor).
fn arb_bounds() -> impl Strategy<Value = SigmaBounds> {
    (
        0u32..6,
        prop_oneof![Just(0.0f64), Just(1e-4), Just(1e-3), Just(1e-2)],
    )
        .prop_map(|(max_radius, min_mass)| SigmaBounds {
            max_radius,
            min_mass,
        })
}

fn assert_streams_identical(
    want: &[Vec<(u32, f32)>],
    got: &[friends_core::corpus::SearchResult],
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(want.len(), got.len(), "{}: stream length", label);
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        prop_assert_eq!(w.len(), g.items.len(), "{}: query {} length", label, i);
        for (a, b) in w.iter().zip(&g.items) {
            prop_assert_eq!(a.0, b.0, "{}: query {} item ids diverge", label, i);
            prop_assert_eq!(
                a.1.to_bits(),
                b.1.to_bits(),
                "{}: query {} score bits diverge ({} vs {})",
                label,
                i,
                a.1,
                b.1
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `ExactOnline` through the service is byte-identical to direct
    /// sequential execution at every shard count, for every model.
    #[test]
    fn service_exact_online_is_byte_identical((corpus, queries) in arb_corpus_and_stream()) {
        for model in all_models() {
            let mut direct = ExactOnline::new(&corpus, model);
            let want: Vec<Vec<(u32, f32)>> =
                queries.iter().map(|q| direct.query(q).items).collect();
            for shards in SHARD_COUNTS {
                let served = par_batch_served(&corpus, &queries, shards, exact_factory(model));
                assert_streams_identical(
                    &want,
                    &served,
                    &format!("exact-online {} shards={shards}", model.name()),
                )?;
            }
            // And the pre-existing batch path agrees too (the service is a
            // drop-in for it).
            let batch = par_batch(&queries, 2, || ExactOnline::new(&corpus, model));
            assert_streams_identical(&want, &batch, &format!("par_batch {}", model.name()))?;
        }
    }

    /// `GlobalBoundTA` through the service is byte-identical to direct
    /// execution at every shard count (σ ≤ 1 models only).
    #[test]
    fn service_global_bound_ta_is_byte_identical((corpus, queries) in arb_corpus_and_stream()) {
        for model in all_models() {
            if matches!(model, ProximityModel::Ppr { .. }) {
                continue; // GBTA requires σ ≤ 1; PPR is a distribution
            }
            let mut direct = GlobalBoundTA::new(&corpus, model);
            let want: Vec<Vec<(u32, f32)>> =
                queries.iter().map(|q| direct.query(q).items).collect();
            for shards in SHARD_COUNTS {
                let served =
                    par_batch_served(&corpus, &queries, shards, global_bound_factory(model));
                assert_streams_identical(
                    &want,
                    &served,
                    &format!("global-bound-ta {} shards={shards}", model.name()),
                )?;
            }
        }
    }

    /// A custom factory (FriendExpansion — a processor with no strategy
    /// hints and no cache use) serves byte-identically too: the broker does
    /// not depend on processor internals.
    #[test]
    fn service_friend_expansion_is_byte_identical((corpus, queries) in arb_corpus_and_stream()) {
        let mut direct = FriendExpansion::new(&corpus, ExpansionConfig::default());
        let want: Vec<Vec<(u32, f32)>> = queries.iter().map(|q| direct.query(q).items).collect();
        for shards in SHARD_COUNTS {
            let served = par_batch_served(&corpus, &queries, shards, |c: &Corpus, _ctx: ShardContext| {
                Box::new(FriendExpansion::new(c, ExpansionConfig::default()))
                    as Box<dyn Processor + '_>
            });
            assert_streams_identical(&want, &served, &format!("friend-expansion shards={shards}"))?;
        }
    }

    /// Degraded-serving soundness: for any corpus and any σ bounds, every
    /// score the service returns is a lower bound on the exact score, the
    /// gap never exceeds the reply's residual certificate, and a zero
    /// residual proves the ranking byte-identical to exact execution.
    #[test]
    fn degraded_scores_stay_within_the_residual_certificate(
        (corpus, queries) in arb_corpus_and_stream(),
        bounds in arb_bounds(),
    ) {
        for model in [
            ProximityModel::DistanceDecay { alpha: 0.5 },
            ProximityModel::WeightedDecay { alpha: 0.5 },
        ] {
            let mut exact = ExactOnline::new(&corpus, model);
            let client = ServedClient::start(
                Arc::clone(&corpus),
                ServiceConfig {
                    shards: 2,
                    ..ServiceConfig::default()
                },
            );
            for q in &queries {
                // Full ranking (the strategy caps items below 16), so the
                // certificate is checked for every scored item, not just a
                // shared top-k prefix.
                let mut q = q.clone();
                q.k = 16;
                let want = exact.query(&q);
                let reply = client.run(
                    QueryRequest::from_query(q).with_model(model).with_bounds(bounds),
                );
                let got = match reply.outcome.result() {
                    Some(r) => r,
                    None => return Err(TestCaseError::fail("bounded request did not complete")),
                };
                prop_assert!(
                    got.residual.is_finite() && got.residual >= 0.0,
                    "residual must be a finite nonnegative certificate: {}",
                    got.residual
                );
                let by_item: HashMap<u32, f32> = got.items.iter().copied().collect();
                for &(item, ws) in &want.items {
                    // Items the bounded run omitted scored 0 under it.
                    let ds = by_item.get(&item).copied().unwrap_or(0.0);
                    prop_assert!(
                        f64::from(ds) <= f64::from(ws) + 1e-5,
                        "bounded σ must never over-report: item {} exact {} bounded {}",
                        item, ws, ds
                    );
                    prop_assert!(
                        f64::from(ws) - f64::from(ds) <= got.residual + 1e-5,
                        "certificate violated: item {} exact {} bounded {} residual {}",
                        item, ws, ds, got.residual
                    );
                }
                if got.residual == 0.0 {
                    assert_streams_identical(
                        std::slice::from_ref(&want.items),
                        std::slice::from_ref(got),
                        &format!("zero-residual {} bounds={bounds:?}", model.name()),
                    )?;
                }
            }
            client.shutdown();
        }
    }
}

/// A panic injected mid-stream — with the whole stream already in flight —
/// fails exactly the one executing request: everything before and after it
/// completes, the engine is rebuilt once, and the shard keeps serving.
#[test]
fn midstream_panic_loses_only_the_in_flight_request() {
    let n = 16u32;
    let mut b = GraphBuilder::new(n as usize);
    for u in 0..n {
        b.add_edge(u, (u + 1) % n, 1.0);
        b.add_edge(u, (u + 5) % n, 0.5);
    }
    let graph = b.build();
    let taggings: Vec<Tagging> = (0..n)
        .flat_map(|u| {
            (0..3u32).map(move |j| Tagging {
                user: u,
                item: (u + j) % 8,
                tag: j % 2,
                weight: 1.0 + j as f32,
            })
        })
        .collect();
    let store = TagStore::build(n, 8, 2, taggings);
    let corpus = Arc::new(Corpus::new(graph, store));
    let model = ProximityModel::WeightedDecay { alpha: 0.5 };

    let svc = FriendsService::start(
        Arc::clone(&corpus),
        ServiceConfig {
            shards: 1,       // one FIFO queue: the fault ordinal is the stream position
            coalesce: false, // every request is its own execution attempt
            fault: Some(FaultPlan {
                nth: 5,
                kind: FaultKind::Panic,
            }),
            ..ServiceConfig::default()
        },
        exact_factory(model),
    );

    // Flood the entire stream before collecting anything, so the fault
    // fires with dozens of requests in flight.
    let queries: Vec<Query> = (0..32u32)
        .map(|i| Query {
            seeker: i % n,
            tags: vec![i % 2],
            k: 5,
        })
        .collect();
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| svc.submit(Request::new(q.clone()).without_deadline()))
        .collect();
    let replies: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();

    let failed: Vec<usize> = replies
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r.outcome, Outcome::Failed))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(failed, vec![4], "exactly the 5th execution fails");
    for (i, r) in replies.iter().enumerate() {
        if i != 4 {
            assert!(r.outcome.result().is_some(), "request {i} must complete");
        }
    }

    // The shard rebuilt its engine once and keeps serving fresh requests.
    let after = svc
        .submit(Request::new(queries[0].clone()).without_deadline())
        .wait();
    assert!(
        after.outcome.result().is_some(),
        "service must keep serving"
    );
    let stats = svc.shutdown().totals();
    assert_eq!(stats.worker_restarts, 1, "one contained rebuild");
    assert_eq!(stats.failed, 1, "only the in-flight request is lost");
    assert_eq!(stats.executed, 32, "31 stream survivors + 1 follow-up");
}
