//! Client-exactness property suite: for random corpora and request
//! streams, [`DirectClient`], [`ServedClient`] **and the deprecated
//! `par_batch*` wrappers** return byte-identical results (same item ids,
//! bit-equal scores) to direct processor execution, for every proximity
//! model × scoring strategy. The reference re-derives the planner's exact
//! decision per query, so planning is pinned deterministic too. A separate
//! test drives ≥ 64 in-flight requests with mixed deadlines through the
//! [`Multiplexer`].

use friends_core::corpus::Corpus;
use friends_core::plan::{Planner, ProcessorRegistry, QueryRequest};
use friends_core::processors::{ExactOnline, Processor, ScoringStrategy};
use friends_core::proximity::ProximityModel;
use friends_data::queries::Query;
use friends_data::store::TagStore;
use friends_data::Tagging;
use friends_graph::GraphBuilder;
use friends_service::{
    DirectClient, DirectConfig, Multiplexer, Outcome, SearchClient, ServedClient, ServiceConfig,
    Ticket,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Strategy: a small random corpus plus a stream of queries with repeated
/// seekers (repetition exercises affinity, coalescing and memoization).
fn arb_corpus_and_stream() -> impl Strategy<Value = (Arc<Corpus>, Vec<Query>)> {
    (
        3usize..24, // users
        1u32..16,   // items
        1u32..5,    // tags
        proptest::collection::vec((0u32..24, 0u32..16, 0u32..5, 0.01f32..2.0), 0..80),
        proptest::collection::vec((0u32..24, 0u32..24, 0.05f32..1.0), 0..48),
        proptest::collection::vec((0u32..6, 0u32..5, 1usize..6), 1..20), // (seeker-pool idx, tag, k)
    )
        .prop_map(|(n, items, tags, raw_taggings, raw_edges, raw_queries)| {
            let n = n.max(2);
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in raw_edges {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            let graph = b.build();
            let taggings: Vec<Tagging> = raw_taggings
                .into_iter()
                .map(|(u, i, t, w)| Tagging {
                    user: u % n as u32,
                    item: i % items,
                    tag: t % tags,
                    weight: w,
                })
                .collect();
            let store = TagStore::build(n as u32, items, tags, taggings);
            let corpus = Arc::new(Corpus::new(graph, store));
            let queries: Vec<Query> = raw_queries
                .into_iter()
                .map(|(s, t, k)| Query {
                    seeker: s % n as u32,
                    tags: vec![t % tags],
                    k,
                })
                .collect();
            (corpus, queries)
        })
}

fn all_models() -> Vec<ProximityModel> {
    vec![
        ProximityModel::Global,
        ProximityModel::FriendsOnly,
        ProximityModel::DistanceDecay { alpha: 0.5 },
        ProximityModel::WeightedDecay { alpha: 0.5 },
        ProximityModel::Ppr {
            alpha: 0.2,
            epsilon: 1e-4,
        },
        ProximityModel::AdamicAdar,
    ]
}

/// Every strategy the clients accept as a hint (`GlobalTa` is
/// `GlobalBoundTA`-native; on the planner's default `ExactOnline` entry it
/// behaves like `Auto`, which the processor contract documents).
const STRATEGIES: [ScoringStrategy; 4] = [
    ScoringStrategy::Auto,
    ScoringStrategy::PostingScan,
    ScoringStrategy::SupportProbe,
    ScoringStrategy::BlockMax,
];

/// The reference ranking stream: for each query, resolve the *exact* plan
/// the clients will run (planner decision included), then execute it on a
/// directly-constructed processor.
fn reference_stream(
    corpus: &Corpus,
    queries: &[Query],
    model: ProximityModel,
    hint: ScoringStrategy,
) -> Vec<Vec<(u32, f32)>> {
    let planner = Planner::default();
    let registry = ProcessorRegistry::standard();
    // One direct processor per concrete strategy, so per-query plans can
    // differ (Auto resolves per query) while scratch reuse mirrors a real
    // worker.
    let mut by_strategy: std::collections::HashMap<ScoringStrategy, ExactOnline<'_>> =
        std::collections::HashMap::new();
    queries
        .iter()
        .map(|q| {
            let plan = planner.plan(
                corpus,
                &registry,
                q,
                model,
                hint,
                None,
                friends_core::proximity::SigmaBounds::EXACT,
            );
            assert_eq!(plan.processor_name, friends_core::plan::EXACT_ONLINE);
            let p = by_strategy
                .entry(plan.strategy)
                .or_insert_with(|| ExactOnline::with_strategy(corpus, model, plan.strategy));
            p.query(q).items
        })
        .collect()
}

fn assert_streams_identical(
    want: &[Vec<(u32, f32)>],
    got: &[friends_core::corpus::SearchResult],
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(want.len(), got.len(), "{}: stream length", label);
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        prop_assert_eq!(w.len(), g.items.len(), "{}: query {} length", label, i);
        for (a, b) in w.iter().zip(&g.items) {
            prop_assert_eq!(a.0, b.0, "{}: query {} item ids diverge", label, i);
            prop_assert_eq!(
                a.1.to_bits(),
                b.1.to_bits(),
                "{}: query {} score bits diverge ({} vs {})",
                label,
                i,
                a.1,
                b.1
            );
        }
    }
    Ok(())
}

fn client_stream(
    client: &dyn SearchClient,
    queries: &[Query],
    model: ProximityModel,
    hint: ScoringStrategy,
) -> Vec<friends_core::corpus::SearchResult> {
    let tickets: Vec<Ticket> = queries
        .iter()
        .map(|q| {
            client.submit(
                QueryRequest::from_query(q.clone())
                    .with_model(model)
                    .with_strategy(hint)
                    .without_deadline(),
            )
        })
        .collect();
    tickets
        .into_iter()
        .map(|t| t.wait().outcome.expect_done("client stream"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `DirectClient` is byte-identical to plan-resolved direct execution
    /// for every model × strategy hint.
    #[test]
    fn direct_client_is_byte_identical((corpus, queries) in arb_corpus_and_stream()) {
        let client = DirectClient::start(
            Arc::clone(&corpus),
            DirectConfig { threads: 2, ..DirectConfig::default() },
        );
        for model in all_models() {
            for hint in STRATEGIES {
                let want = reference_stream(&corpus, &queries, model, hint);
                let got = client_stream(&client, &queries, model, hint);
                assert_streams_identical(
                    &want,
                    &got,
                    &format!("direct {} {:?}", model.name(), hint),
                )?;
            }
        }
    }

    /// `ServedClient` (coalescing + memoization on) is byte-identical to
    /// plan-resolved direct execution at 1 and 3 shards.
    #[test]
    fn served_client_is_byte_identical((corpus, queries) in arb_corpus_and_stream()) {
        for shards in [1usize, 3] {
            let client = ServedClient::start(
                Arc::clone(&corpus),
                ServiceConfig {
                    shards,
                    result_cache_capacity: 64,
                    ..ServiceConfig::default()
                },
            );
            for model in all_models() {
                for hint in STRATEGIES {
                    let want = reference_stream(&corpus, &queries, model, hint);
                    let got = client_stream(&client, &queries, model, hint);
                    assert_streams_identical(
                        &want,
                        &got,
                        &format!("served {} {:?} shards={shards}", model.name(), hint),
                    )?;
                }
            }
            client.shutdown();
        }
    }

    /// The deprecated wrappers are pinned byte-identical to the client
    /// path: old callers lose nothing by migrating, and the wrappers can
    /// stay thin forever.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_the_client_path((corpus, queries) in arb_corpus_and_stream()) {
        use friends_core::batch::{par_batch, par_batch_with_cache};
        use friends_core::cache::ProximityCache;
        use friends_service::{exact_factory, par_batch_served};

        let client = DirectClient::start(
            Arc::clone(&corpus),
            DirectConfig { threads: 2, ..DirectConfig::default() },
        );
        for model in all_models() {
            let via_client = client.search(&queries, model);
            let old_batch = par_batch(&queries, 2, || ExactOnline::new(&corpus, model));
            assert_streams_identical(
                &old_batch.iter().map(|r| r.items.clone()).collect::<Vec<_>>(),
                &via_client,
                &format!("par_batch {}", model.name()),
            )?;
            let cache = Arc::new(ProximityCache::new(64));
            let old_cached = par_batch_with_cache(&queries, 2, &cache, |c| {
                ExactOnline::with_cache(&corpus, model, c)
            });
            assert_streams_identical(
                &old_cached.iter().map(|r| r.items.clone()).collect::<Vec<_>>(),
                &via_client,
                &format!("par_batch_with_cache {}", model.name()),
            )?;
            let old_served = par_batch_served(&corpus, &queries, 3, exact_factory(model));
            assert_streams_identical(
                &old_served.iter().map(|r| r.items.clone()).collect::<Vec<_>>(),
                &via_client,
                &format!("par_batch_served {}", model.name()),
            )?;
        }
    }
}

/// The multiplexer satellite: ≥ 64 in-flight requests with mixed deadlines
/// driven through one completion loop. Unbounded requests must all
/// complete with exact answers; zero-budget requests must surface as
/// `DeadlineMissed` (shed by the broker or synthesized by the
/// multiplexer) — and every tag must come back exactly once.
#[test]
fn multiplexer_drives_64_in_flight_with_mixed_deadlines() {
    use friends_data::datasets::{DatasetSpec, Scale};

    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(21);
    let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
    let model = ProximityModel::WeightedDecay { alpha: 0.5 };
    let client = ServedClient::start(
        Arc::clone(&corpus),
        ServiceConfig {
            shards: 2,
            max_batch: 4, // small dispatch cycles: the queue drains slowly
            ..ServiceConfig::default()
        },
    );
    let mut reference = ExactOnline::new(&corpus, model);

    let total = 96u64;
    let mut mux = Multiplexer::new();
    let mut queries = Vec::new();
    for i in 0..total {
        let q = Query {
            seeker: (i % 11) as u32,
            tags: vec![(i % 5) as u32, 5 + (i % 3) as u32],
            k: 1 + (i % 8) as usize,
        };
        // A third of the stream carries an already-hopeless deadline; the
        // rest is unbounded.
        let req = QueryRequest::from_query(q.clone())
            .with_model(model)
            .with_tag(i);
        let req = if i % 3 == 0 {
            req.with_deadline(Duration::ZERO)
        } else {
            req.without_deadline()
        };
        queries.push(q);
        mux.push(client.submit(req));
    }
    assert_eq!(mux.len(), total as usize);

    let mut seen = vec![false; total as usize];
    let mut missed = 0u64;
    for (tag, reply) in mux.by_ref() {
        assert_eq!(tag, reply.tag);
        assert!(
            !std::mem::replace(&mut seen[tag as usize], true),
            "tag {tag} twice"
        );
        match reply.outcome {
            Outcome::Done(result) => {
                assert!(tag % 3 != 0, "zero-budget request {tag} should have missed");
                let want = reference.query(&queries[tag as usize]).items;
                assert_eq!(want, result.items, "request {tag} diverged");
            }
            Outcome::DeadlineMissed => {
                assert_eq!(
                    tag % 3,
                    0,
                    "unbounded request {tag} missed its (absent) deadline"
                );
                missed += 1;
            }
            Outcome::Failed => panic!("request {tag} failed"),
        }
    }
    assert!(mux.is_empty());
    assert!(seen.iter().all(|&s| s), "not every tag completed");
    assert_eq!(
        missed,
        total.div_ceil(3),
        "every zero-budget request must miss"
    );
    client.shutdown();
}

/// The multiplexer synthesizes `DeadlineMissed` at the deadline even when
/// the worker never answers in time — the client-side half of the deadline
/// contract, without blocking the completion loop.
#[test]
fn multiplexer_surfaces_deadlines_of_stuck_requests() {
    use friends_data::datasets::{DatasetSpec, Scale};
    use friends_data::queries::{QueryParams, QueryWorkload};
    use std::time::Instant;

    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(5);
    let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
    let client = ServedClient::start(
        Arc::clone(&corpus),
        ServiceConfig {
            shards: 1,
            max_batch: 1,
            ..ServiceConfig::default()
        },
    );
    // Park the single shard behind plenty of work.
    let w = QueryWorkload::generate(
        &corpus.graph,
        &corpus.store,
        &QueryParams {
            count: 64,
            ..QueryParams::default()
        },
        7,
    );
    let parked: Vec<Ticket> = w
        .queries
        .iter()
        .cycle()
        .take(256)
        .map(|q| {
            client.submit(
                QueryRequest::from_query(q.clone())
                    .with_model(ProximityModel::WeightedDecay { alpha: 0.5 })
                    .without_deadline(),
            )
        })
        .collect();
    let mut mux = Multiplexer::new();
    mux.push(
        client.submit(
            QueryRequest::new(3, vec![0], 5)
                .with_model(ProximityModel::WeightedDecay { alpha: 0.5 })
                .with_deadline(Duration::from_millis(5))
                .with_tag(42),
        ),
    );
    let start = Instant::now();
    let (tag, reply) = mux.next().expect("one pending");
    assert_eq!(tag, 42);
    assert!(
        matches!(reply.outcome, Outcome::DeadlineMissed),
        "expected a miss, got {:?}",
        reply.outcome
    );
    assert!(
        start.elapsed() < Duration::from_millis(500),
        "multiplexer blocked {:?} past a 5ms deadline",
        start.elapsed()
    );
    for t in parked {
        assert!(t.wait().outcome.result().is_some());
    }
    client.shutdown();
}
