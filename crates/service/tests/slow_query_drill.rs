//! The slow-query drill: inject a `Delay` fault into the nth execution of
//! a one-shard service and assert that **exactly** that request lands in
//! the slow-query log, with a complete span tree (queue → plan → σ →
//! scoring → reply) and a trace id matching its own [`Reply`]. Every other
//! request stays under the threshold and must not be retained.

use friends_core::corpus::Corpus;
use friends_data::datasets::{DatasetSpec, Scale};
use friends_data::queries::Query;
use friends_service::{
    exact_factory, FaultKind, FaultPlan, FriendsService, Request, ServiceConfig, TraceConfig,
    TraceOutcome,
};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn delayed_request_lands_in_the_slow_query_log_with_its_span_tree() {
    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(8);
    let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
    let delay = Duration::from_millis(50);
    let config = ServiceConfig {
        shards: 1,
        // No deadline: the stalled request must finish (slow), not shed.
        default_deadline: None,
        fault: Some(FaultPlan {
            nth: 3,
            kind: FaultKind::Delay(delay),
        }),
        trace: TraceConfig {
            // Head sampling off: only slowness can retain a trace here.
            sample_every: 0,
            slow_threshold: Some(Duration::from_millis(10)),
            ..TraceConfig::default()
        },
        ..ServiceConfig::default()
    };
    let svc = FriendsService::start(
        Arc::clone(&corpus),
        config,
        exact_factory(friends_core::proximity::ProximityModel::Global),
    );
    // Sequential distinct queries: each waits for its reply before the next
    // submits, so every request executes alone (no coalescing, no queue
    // buildup) and the fault ordinal maps 1:1 onto submission order.
    let mut slow_reply_trace_id = None;
    for i in 0..6u32 {
        let reply = svc
            .submit(Request::new(Query {
                seeker: i % 4,
                tags: vec![i % 3],
                k: 5,
            }))
            .wait();
        assert!(reply.outcome.result().is_some(), "request {i} must serve");
        if i == 2 {
            // The 3rd execution (nth: 3) carries the injected delay; its
            // reply must already hold the retained trace.
            let trace = reply.trace.as_ref().expect("slow reply carries trace");
            slow_reply_trace_id = Some(trace.id);
        } else {
            assert!(
                reply.trace.is_none(),
                "fast request {i} must not be traced (reply {:?})",
                reply.trace_id()
            );
        }
    }
    let slow = svc.slow_queries();
    assert_eq!(slow.len(), 1, "exactly the delayed request is retained");
    let trace = &slow[0];
    assert_eq!(Some(trace.id), slow_reply_trace_id, "log and reply agree");
    assert!(trace.slow, "retained for slowness");
    assert!(!trace.forced && !trace.sampled);
    assert!(trace.e2e >= delay, "e2e includes the injected stall");
    assert!(matches!(trace.outcome, TraceOutcome::Done { .. }));
    // The complete span tree: queuing, planning (the fault event lives
    // here), σ materialization, scoring, reply.
    let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
    assert_eq!(names, ["queue", "plan", "sigma", "scoring", "reply"]);
    let explain = trace.render();
    assert!(
        explain.contains("fault") && explain.contains("delay"),
        "EXPLAIN must show the injected fault:\n{explain}"
    );
    assert!(
        svc.traces().is_empty(),
        "head sampling is off — nothing in the sampled ring"
    );
    svc.shutdown();
}
