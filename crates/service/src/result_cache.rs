//! Cross-request result memoization.
//!
//! The broker's coalescer only merges duplicate requests that are in
//! flight *together*; over an immutable corpus, a repeat query arriving in
//! a later dispatch cycle pays full execution again. This cache closes
//! that gap: a small per-shard `(query, model, strategy) → ranking` map
//! with the same TinyLFU admission policy as the proximity cache (reusing
//! [`CachePolicy`] and [`FreqSketch`]), so one-shot queries cannot wash a
//! shard's hot repeat set out of a small cache.
//!
//! Invalidation comes in two granularities:
//!
//! * **Full stamp** — [`ResultCache::invalidate`] bumps the epoch; stale
//!   entries are dropped lazily on access (counted as expirations). The
//!   blunt fallback when the blast radius of a write is unknown.
//! * **Partial** — [`ResultCache::invalidate_partial`] eagerly sweeps only
//!   the entries a mutation batch can actually change: per-seeker (the
//!   seeker's σ vector may cross a new/removed edge — see
//!   `friends_core::live`) and per-tag (the batch appended postings under
//!   one of the query's tags). Everything else keeps serving hits.
//!
//! The optional [`CachePolicy::ttl`] bounds staleness in wall-clock time
//! as well.
//!
//! Rankings are memoized, not statistics: a cached reply carries the exact
//! `(item, score)` list of the original execution (byte-identical — the
//! corpus is immutable within an epoch) and empty [`QueryStats`], because
//! no scoring work was performed.
//!
//! [`QueryStats`]: friends_core::corpus::QueryStats

use friends_core::cache::{CachePolicy, CacheStats, FreqSketch};
use friends_core::processors::ScoringStrategy;
use friends_data::queries::Query;
use friends_data::ItemId;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The memoization key: the query, the model's exact parameter bits (`None`
/// for fixed-factory services, whose model is implicit), the strategy hint,
/// the processor override and the *effective* σ-bounds bits the execution
/// ran under. Identical to the broker's coalescing key — whatever would
/// have coalesced in flight hits here across cycles. Keying on bounds is a
/// soundness requirement, not an optimization: a degraded ranking must
/// never be served for an exact request (nor for a differently-bounded
/// one).
pub(crate) type ResultKey = (
    Query,
    Option<(u8, u64, u64)>,
    ScoringStrategy,
    Option<&'static str>,
    (u32, u64),
);

/// A cached ranking plus the residual certificate its execution reported.
pub(crate) type CachedRanking = (Arc<Vec<(ItemId, f32)>>, f64);

fn hash_key(key: &ResultKey) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

struct Slot {
    items: Arc<Vec<(ItemId, f32)>>,
    /// The original execution's score-space residual certificate — replayed
    /// verbatim on every hit (0.0 for exact entries).
    residual: f64,
    /// Recency stamp; also the key into the recency index.
    stamp: u64,
    epoch: u64,
    inserted_at: Instant,
}

struct Inner {
    map: HashMap<ResultKey, Slot>,
    /// stamp → key, oldest first: the eviction order.
    recency: BTreeMap<u64, ResultKey>,
    tick: u64,
    /// Approximate resident bytes of the memoized rankings.
    bytes: usize,
    /// Present iff the policy enables admission.
    sketch: Option<FreqSketch>,
}

/// Approximate byte charge of one memoized ranking (entries + bookkeeping),
/// mirroring the proximity cache's accounting so `CacheStats::bytes` means
/// the same thing in both.
fn charge_of(items: &[(ItemId, f32)]) -> usize {
    std::mem::size_of_val(items) + 96
}

/// A single-owner (per-shard) LRU of query rankings with TinyLFU admission,
/// TTL expiry and epoch invalidation. Mirrors the structure of
/// [`friends_core::cache::ProximityCache`] but stores *answers* instead of
/// σ vectors. Counters are shared atomics so the service handle can
/// snapshot them while the owning worker runs.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    policy: CachePolicy,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    rejections: AtomicU64,
    expirations: AtomicU64,
    invalidated: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` rankings (minimum 1).
    pub fn new(capacity: usize, policy: CachePolicy) -> Self {
        let capacity = capacity.max(1);
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                recency: BTreeMap::new(),
                tick: 0,
                bytes: 0,
                sketch: policy.admission.then(|| FreqSketch::new(capacity)),
            }),
            capacity,
            policy,
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
            expirations: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    /// The current corpus epoch. Entries from earlier epochs are dead.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Bumps the epoch, logically dropping every cached ranking at once
    /// (entries are reaped lazily on access). Call when the corpus mutates.
    pub fn invalidate(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Eagerly drops only the rankings a mutation batch can change:
    /// entries whose seeker is in `seekers` (sorted) under a σ-dependent
    /// model, plus entries whose query mentions a tag in `tags` (sorted).
    ///
    /// Seeker matching skips the `Global` model (`σ ≡ 1` is
    /// graph-independent) but conservatively includes `None` model bits —
    /// a fixed-factory service's implicit model is unknown here. Tag
    /// matching is model-blind: appended postings change every ranking
    /// that reads that tag. Returns the number of entries dropped.
    pub fn invalidate_partial(&self, seekers: &[u32], tags: &[u32]) -> u64 {
        if seekers.is_empty() && tags.is_empty() {
            return 0;
        }
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let doomed: Vec<(ResultKey, u64)> = inner
            .map
            .iter()
            .filter(|(key, _)| {
                let sigma_dependent = key.1.is_none_or(|(tag, _, _)| tag != 0);
                (sigma_dependent && seekers.binary_search(&key.0.seeker).is_ok())
                    || key.0.tags.iter().any(|t| tags.binary_search(t).is_ok())
            })
            .map(|(key, slot)| (key.clone(), slot.stamp))
            .collect();
        let dropped = doomed.len() as u64;
        for (key, stamp) in doomed {
            if let Some(slot) = inner.map.remove(&key) {
                inner.bytes -= charge_of(&slot.items);
            }
            inner.recency.remove(&stamp);
        }
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    fn slot_dead(&self, slot: &Slot, epoch: u64) -> bool {
        slot.epoch != epoch
            || self
                .policy
                .ttl
                .is_some_and(|ttl| slot.inserted_at.elapsed() > ttl)
    }

    /// Looks up a ranking and its residual certificate, refreshing its
    /// recency. Stale entries (older epoch, or past the TTL) are dropped
    /// and reported as a miss plus an expiration.
    pub(crate) fn get(&self, key: &ResultKey) -> Option<CachedRanking> {
        let epoch = self.epoch();
        let hash = hash_key(key);
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        if let Some(sketch) = inner.sketch.as_mut() {
            sketch.record(hash);
        }
        if let Some(slot) = inner.map.get_mut(key) {
            if self.slot_dead(slot, epoch) {
                let stamp = slot.stamp;
                if let Some(slot) = inner.map.remove(key) {
                    inner.bytes -= charge_of(&slot.items);
                }
                inner.recency.remove(&stamp);
                self.expirations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            inner.tick += 1;
            inner.recency.remove(&slot.stamp);
            slot.stamp = inner.tick;
            inner.recency.insert(inner.tick, key.clone());
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some((Arc::clone(&slot.items), slot.residual))
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Inserts (or refreshes) a ranking, evicting the LRU entry when full —
    /// unless the admission sketch finds the new key colder than the
    /// victim, in which case the insert is rejected. Dead victims (older
    /// epoch or expired TTL) are unconditionally evictable.
    ///
    /// `computed_epoch` is the epoch read *when the miss was observed*,
    /// before the ranking was computed. If [`ResultCache::invalidate`]
    /// landed in between, the ranking was derived from pre-invalidation
    /// state and the insert is silently dropped — stamping it with the new
    /// epoch would serve a stale answer as fresh forever.
    pub(crate) fn insert(
        &self,
        key: ResultKey,
        items: Arc<Vec<(ItemId, f32)>>,
        residual: f64,
        computed_epoch: u64,
    ) {
        let epoch = self.epoch();
        if epoch != computed_epoch {
            return;
        }
        let hash = hash_key(&key);
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        if let Some(slot) = inner.map.get_mut(&key) {
            inner.bytes = inner.bytes - charge_of(&slot.items) + charge_of(&items);
            slot.items = items;
            slot.residual = residual;
            slot.epoch = epoch;
            slot.inserted_at = Instant::now();
            inner.tick += 1;
            inner.recency.remove(&slot.stamp);
            slot.stamp = inner.tick;
            inner.recency.insert(inner.tick, key);
            return;
        }
        if inner.map.len() >= self.capacity {
            let victim = inner
                .recency
                .iter()
                .next()
                .map(|(&stamp, k)| (stamp, k.clone()));
            if let Some((oldest, victim_key)) = victim {
                let victim_dead = inner
                    .map
                    .get(&victim_key)
                    .is_some_and(|s| self.slot_dead(s, epoch));
                if !victim_dead {
                    if let Some(sketch) = inner.sketch.as_ref() {
                        if sketch.estimate(hash) <= sketch.estimate(hash_key(&victim_key)) {
                            self.rejections.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
                inner.recency.remove(&oldest);
                if let Some(slot) = inner.map.remove(&victim_key) {
                    inner.bytes -= charge_of(&slot.items);
                }
                if victim_dead {
                    self.expirations.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        inner.tick += 1;
        let stamp = inner.tick;
        inner.recency.insert(stamp, key.clone());
        inner.bytes += charge_of(&items);
        inner.map.insert(
            key,
            Slot {
                items,
                residual,
                stamp,
                epoch,
                inserted_at: Instant::now(),
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of cached rankings (dead entries included until reaped).
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate counters, in the same shape as the proximity cache's.
    pub fn stats(&self) -> CacheStats {
        let (entries, bytes) = {
            let inner = self.inner.lock();
            (inner.map.len(), inner.bytes)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use friends_core::proximity::{ProximityModel, SigmaBounds};

    fn key(seeker: u32, tag: u32) -> ResultKey {
        (
            Query {
                seeker,
                tags: vec![tag],
                k: 5,
            },
            Some(ProximityModel::FriendsOnly.key_bits()),
            ScoringStrategy::Auto,
            None,
            SigmaBounds::EXACT.key_bits(),
        )
    }

    fn ranking(item: u32) -> Arc<Vec<(ItemId, f32)>> {
        Arc::new(vec![(item, 1.0)])
    }

    const POLICY: CachePolicy = CachePolicy {
        admission: false,
        ttl: None,
    };

    #[test]
    fn get_after_insert_hits() {
        let c = ResultCache::new(8, POLICY);
        assert!(c.get(&key(1, 0)).is_none());
        c.insert(key(1, 0), ranking(7), 0.0, c.epoch());
        let (v, residual) = c.get(&key(1, 0)).expect("hit");
        assert_eq!(v[0].0, 7);
        assert_eq!(residual, 0.0);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn strategy_and_model_are_part_of_the_key() {
        let c = ResultCache::new(8, POLICY);
        c.insert(key(1, 0), ranking(7), 0.0, c.epoch());
        let mut other = key(1, 0);
        other.2 = ScoringStrategy::BlockMax;
        assert!(c.get(&other).is_none(), "strategy must not alias");
        let mut other = key(1, 0);
        other.1 = Some(ProximityModel::AdamicAdar.key_bits());
        assert!(c.get(&other).is_none(), "model must not alias");
    }

    #[test]
    fn bounds_are_part_of_the_key() {
        // A degraded ranking must never answer an exact request (or one
        // with different bounds), and its residual certificate replays.
        let c = ResultCache::new(8, POLICY);
        let mut degraded = key(1, 0);
        degraded.4 = SigmaBounds::with_radius(2).key_bits();
        c.insert(degraded.clone(), ranking(7), 0.25, c.epoch());
        assert!(c.get(&key(1, 0)).is_none(), "bounds must not alias");
        let (_, residual) = c.get(&degraded).expect("hit");
        assert_eq!(residual, 0.25);
    }

    #[test]
    fn lru_evicts_oldest() {
        let c = ResultCache::new(2, POLICY);
        c.insert(key(1, 0), ranking(1), 0.0, c.epoch());
        c.insert(key(2, 0), ranking(2), 0.0, c.epoch());
        assert!(c.get(&key(1, 0)).is_some()); // refresh 1 → 2 is oldest
        c.insert(key(3, 0), ranking(3), 0.0, c.epoch());
        assert!(c.get(&key(2, 0)).is_none(), "LRU entry must be evicted");
        assert!(c.get(&key(1, 0)).is_some());
        assert!(c.get(&key(3, 0)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn admission_rejects_cold_keys() {
        let c = ResultCache::new(
            2,
            CachePolicy {
                admission: true,
                ttl: None,
            },
        );
        for _ in 0..6 {
            let _ = c.get(&key(1, 0)); // make residents hot
            let _ = c.get(&key(2, 0));
        }
        c.insert(key(1, 0), ranking(1), 0.0, c.epoch());
        c.insert(key(2, 0), ranking(2), 0.0, c.epoch());
        for u in 10..30 {
            let _ = c.get(&key(u, 0));
            c.insert(key(u, 0), ranking(u), 0.0, c.epoch());
        }
        assert!(c.get(&key(1, 0)).is_some(), "hot entry evicted");
        assert!(c.get(&key(2, 0)).is_some(), "hot entry evicted");
        let s = c.stats();
        assert!(s.rejections > 0, "{s:?}");
        assert_eq!(s.evictions, 0, "{s:?}");
    }

    #[test]
    fn epoch_invalidation_drops_entries_lazily() {
        let c = ResultCache::new(8, POLICY);
        c.insert(key(1, 0), ranking(1), 0.0, c.epoch());
        assert!(c.get(&key(1, 0)).is_some());
        c.invalidate();
        assert_eq!(c.epoch(), 1);
        assert!(c.get(&key(1, 0)).is_none(), "stale epoch must miss");
        let s = c.stats();
        assert_eq!(s.expirations, 1);
        assert_eq!(s.entries, 0, "stale entry reaped on access");
        // Fresh insert under the new epoch serves again.
        c.insert(key(1, 0), ranking(2), 0.0, c.epoch());
        assert_eq!(c.get(&key(1, 0)).expect("hit").0[0].0, 2);
    }

    #[test]
    fn inserts_computed_before_an_invalidation_are_dropped() {
        // The mid-execution race: a miss is observed at epoch 0, the
        // ranking is computed, invalidate() lands, and only then does the
        // insert arrive. Stamping it with the new epoch would serve the
        // stale ranking as fresh forever — it must be dropped instead.
        let c = ResultCache::new(8, POLICY);
        let observed = c.epoch();
        assert!(c.get(&key(1, 0)).is_none()); // the miss
        c.invalidate(); // corpus mutates while the worker computes
        c.insert(key(1, 0), ranking(7), 0.0, observed);
        assert!(
            c.get(&key(1, 0)).is_none(),
            "pre-invalidation ranking must not be cached: {:?}",
            c.stats()
        );
        assert_eq!(c.stats().insertions, 0);
        // An insert computed under the current epoch still lands.
        c.insert(key(1, 0), ranking(8), 0.0, c.epoch());
        assert_eq!(c.get(&key(1, 0)).expect("hit").0[0].0, 8);
    }

    #[test]
    fn stale_victims_cannot_block_admission() {
        let c = ResultCache::new(
            1,
            CachePolicy {
                admission: true,
                ttl: None,
            },
        );
        for _ in 0..8 {
            let _ = c.get(&key(1, 0)); // very hot resident
        }
        c.insert(key(1, 0), ranking(1), 0.0, c.epoch());
        c.invalidate(); // resident is now dead, however hot its sketch
        let _ = c.get(&key(2, 0));
        c.insert(key(2, 0), ranking(2), 0.0, c.epoch());
        assert!(
            c.get(&key(2, 0)).is_some(),
            "fresh insert blocked by a dead resident: {:?}",
            c.stats()
        );
    }

    #[test]
    fn partial_invalidation_is_per_seeker() {
        let c = ResultCache::new(8, POLICY);
        c.insert(key(1, 0), ranking(1), 0.0, c.epoch());
        c.insert(key(2, 0), ranking(2), 0.0, c.epoch());
        c.insert(key(3, 0), ranking(3), 0.0, c.epoch());
        let dropped = c.invalidate_partial(&[2], &[]);
        assert_eq!(dropped, 1);
        assert!(c.get(&key(1, 0)).is_some(), "unaffected seeker swept");
        assert!(c.get(&key(2, 0)).is_none(), "affected seeker survived");
        assert!(c.get(&key(3, 0)).is_some(), "unaffected seeker swept");
        assert_eq!(c.stats().invalidated, 1);
    }

    #[test]
    fn partial_invalidation_is_per_tag_and_model_blind() {
        // Tag appends change the postings themselves, so even Global-model
        // entries reading that tag must go; other tags survive.
        let c = ResultCache::new(8, POLICY);
        let mut global = key(1, 0);
        global.1 = Some(ProximityModel::Global.key_bits());
        c.insert(global.clone(), ranking(1), 0.0, c.epoch());
        c.insert(key(2, 5), ranking(2), 0.0, c.epoch());
        let dropped = c.invalidate_partial(&[], &[0]);
        assert_eq!(dropped, 1);
        assert!(c.get(&global).is_none(), "touched tag must sweep Global");
        assert!(c.get(&key(2, 5)).is_some(), "untouched tag swept");
    }

    #[test]
    fn partial_invalidation_skips_global_for_edge_only_batches() {
        // An edge mutation cannot move σ ≡ 1: Global entries survive even
        // when their seeker is in the affected set. None model bits
        // (fixed-factory, model unknown) are conservatively swept.
        let c = ResultCache::new(8, POLICY);
        let mut global = key(1, 0);
        global.1 = Some(ProximityModel::Global.key_bits());
        let mut implicit = key(1, 1);
        implicit.1 = None;
        c.insert(global.clone(), ranking(1), 0.0, c.epoch());
        c.insert(implicit.clone(), ranking(2), 0.0, c.epoch());
        let dropped = c.invalidate_partial(&[1], &[]);
        assert_eq!(dropped, 1);
        assert!(c.get(&global).is_some(), "Global is graph-independent");
        assert!(c.get(&implicit).is_none(), "implicit model must be swept");
    }

    #[test]
    fn ttl_expires_entries() {
        let c = ResultCache::new(
            8,
            CachePolicy {
                admission: false,
                ttl: Some(std::time::Duration::from_millis(15)),
            },
        );
        c.insert(key(1, 0), ranking(1), 0.0, c.epoch());
        assert!(c.get(&key(1, 0)).is_some());
        std::thread::sleep(std::time::Duration::from_millis(25));
        assert!(c.get(&key(1, 0)).is_none(), "stale entry must expire");
        assert_eq!(c.stats().expirations, 1);
    }
}
