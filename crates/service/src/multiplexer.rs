//! The deadline-aware completion multiplexer: one caller driving many
//! in-flight requests.
//!
//! [`crate::Ticket`]s are non-blocking (`poll` / `try_take`), but a caller
//! with dozens of requests in flight wants a `select`-style loop: *give me
//! the next completion, whichever request it belongs to, and never let a
//! deadline pass silently*. [`Multiplexer`] is that loop, without vendoring
//! an async runtime: it sweeps its pending tickets fairly (rotating the
//! start position so one hot shard cannot starve the rest), and between
//! sweeps parks the thread briefly — never past the nearest pending
//! deadline, so an expired request surfaces as
//! [`Outcome::DeadlineMissed`](crate::Outcome::DeadlineMissed) on time even
//! if its worker is still grinding.
//!
//! Completions are identified by the request's correlation `tag`
//! (see [`friends_core::plan::QueryRequest::with_tag`]); the reply also
//! carries it.

use crate::request::{Outcome, Reply, Ticket};
use std::time::{Duration, Instant};

/// Upper bound on the park interval between sweeps. Parking is adaptive:
/// it starts fine-grained (so short queries complete with microsecond-ish
/// latency) and backs off toward this bound while nothing completes.
const MAX_PARK: Duration = Duration::from_millis(2);
const MIN_PARK: Duration = Duration::from_micros(20);

/// A `select`-style completion loop over in-flight [`Ticket`]s. Push
/// tickets as you submit; take completions with the blocking `next` (the
/// [`Iterator`] impl) or the non-blocking [`Multiplexer::poll`]; the
/// multiplexer synthesizes `DeadlineMissed` replies for tickets whose
/// deadline passes unanswered.
#[derive(Default)]
pub struct Multiplexer {
    pending: Vec<Ticket>,
    /// Sweep start rotation, for fairness across tickets.
    cursor: usize,
}

impl Multiplexer {
    /// An empty multiplexer.
    pub fn new() -> Self {
        Multiplexer::default()
    }

    /// Adds an in-flight ticket to the completion set.
    pub fn push(&mut self, ticket: Ticket) {
        self.pending.push(ticket);
    }

    /// Requests still in flight.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Non-blocking: returns the next completion `(tag, reply)` if any
    /// ticket has finished — or if one's deadline has passed, in which case
    /// the reply is a synthesized `DeadlineMissed`. `None` means nothing is
    /// ready right now (or nothing is pending).
    pub fn poll(&mut self) -> Option<(u64, Reply)> {
        let n = self.pending.len();
        if n == 0 {
            return None;
        }
        self.cursor %= n;
        for i in 0..n {
            let idx = (self.cursor + i) % n;
            if let Some(reply) = self.pending[idx].try_take() {
                let ticket = self.pending.swap_remove(idx);
                self.cursor = idx;
                return Some((ticket.tag(), reply));
            }
        }
        let now = Instant::now();
        for idx in 0..n {
            if self.pending[idx].deadline().is_some_and(|d| now >= d) {
                let ticket = self.pending.swap_remove(idx);
                // The worker may still answer later; dropping the ticket
                // (and its receiver) discards that late reply.
                return Some((
                    ticket.tag(),
                    Reply {
                        outcome: Outcome::DeadlineMissed,
                        shard: ticket.shard(),
                        queue_wait: Duration::ZERO,
                        coalesced: false,
                        result_cached: false,
                        degraded: false,
                        residual: 0.0,
                        tag: ticket.tag(),
                        trace: None,
                    },
                ));
            }
        }
        None
    }

    /// Like `next` ([`Iterator::next`], the blocking completion take) with
    /// an overall timeout: `None` when
    /// nothing completes (or expires) within `timeout`, or when nothing is
    /// pending.
    pub fn next_timeout(&mut self, timeout: Duration) -> Option<(u64, Reply)> {
        let until = Instant::now() + timeout;
        let mut park = MIN_PARK;
        loop {
            if self.pending.is_empty() {
                return None;
            }
            if let Some(done) = self.poll() {
                return Some(done);
            }
            if Instant::now() >= until {
                return None;
            }
            self.park(&mut park);
        }
    }

    /// Drains every pending request to completion (deadlines respected),
    /// returning `(tag, reply)` pairs in completion order.
    pub fn drain(&mut self) -> Vec<(u64, Reply)> {
        let mut out = Vec::with_capacity(self.pending.len());
        for done in self.by_ref() {
            out.push(done);
        }
        out
    }

    /// Parks briefly between sweeps: adaptively backing off while idle,
    /// but never past the nearest pending deadline.
    fn park(&self, park: &mut Duration) {
        let now = Instant::now();
        let nearest = self
            .pending
            .iter()
            .filter_map(|t| t.deadline())
            .min()
            .map(|d| d.saturating_duration_since(now));
        let mut wait = *park;
        if let Some(until_deadline) = nearest {
            wait = wait.min(until_deadline);
        }
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        *park = (*park * 2).min(MAX_PARK);
    }
}

/// The completion loop is literally iteration: `next` blocks until the
/// next completion (or deadline expiry) and yields `(tag, reply)`; the
/// iterator ends when nothing is pending. `for (tag, reply) in &mut mux`
/// drains everything currently in flight (more tickets can be pushed
/// between takes).
impl Iterator for Multiplexer {
    type Item = (u64, Reply);

    fn next(&mut self) -> Option<(u64, Reply)> {
        let mut park = MIN_PARK;
        loop {
            if self.pending.is_empty() {
                return None;
            }
            if let Some(done) = self.poll() {
                return Some(done);
            }
            self.park(&mut park);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::{exact_factory, FriendsService, ServiceConfig};
    use crate::request::Request;
    use friends_core::corpus::Corpus;
    use friends_core::proximity::ProximityModel;
    use friends_data::datasets::{DatasetSpec, Scale};
    use friends_data::queries::Query;
    use std::sync::Arc;

    #[test]
    fn empty_multiplexer_yields_nothing() {
        let mut m = Multiplexer::new();
        assert!(m.is_empty());
        assert!(m.poll().is_none());
        assert!(m.next().is_none());
        assert!(m.next_timeout(Duration::from_millis(1)).is_none());
        assert!(m.drain().is_empty());
    }

    #[test]
    fn completions_carry_tags_and_drain_fully() {
        let ds = DatasetSpec::delicious_like(Scale::Tiny).build(8);
        let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 2,
                ..ServiceConfig::default()
            },
            exact_factory(ProximityModel::WeightedDecay { alpha: 0.5 }),
        );
        let mut m = Multiplexer::new();
        for i in 0..20u64 {
            let q = Query {
                seeker: (i % 7) as u32,
                tags: vec![(i % 3) as u32],
                k: 5,
            };
            m.push(svc.submit(Request::new(q).without_deadline().with_tag(i)));
        }
        assert_eq!(m.len(), 20);
        let done = m.drain();
        assert!(m.is_empty());
        let mut tags: Vec<u64> = done.iter().map(|(t, _)| *t).collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..20).collect::<Vec<_>>());
        for (tag, reply) in &done {
            assert_eq!(*tag, reply.tag);
            assert!(reply.outcome.result().is_some());
        }
        svc.shutdown();
    }
}
