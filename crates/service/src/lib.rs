//! # friends-service
//!
//! The serving tier: a thread-based query broker between clients and the
//! `friends-core` processors, the layer WAND-era IR engines put between the
//! index and the network. Where [`friends_core::batch::par_batch`] slices a
//! closed batch into flat chunks, the broker runs a **standing service**:
//!
//! * **Seeker-affinity sharding** — `hash(seeker) % shards` routes every
//!   request of a seeker to the same worker, so their σ materializations
//!   and cache entries stay hot on one thread instead of being recomputed
//!   (or fetched through a contended shared cache) on whichever worker a
//!   chunk split happened to land them on.
//! * **Batched dispatch with request coalescing** — each worker drains its
//!   queue into a small batch and executes duplicate in-flight
//!   `(seeker, tags, k, strategy)` requests **once**, fanning the result
//!   out to every waiter. Real streams repeat queries (see
//!   [`friends_data::requests`]); coalescing converts that repetition into
//!   throughput.
//! * **Admission-controlled private caches** — every shard owns an
//!   unsharded [`friends_core::cache::ProximityCache`] with TinyLFU-style
//!   admission (and optional TTL): uncontended for its owner, and scan
//!   traffic cannot evict the shard's hot seekers.
//! * **Deadline-aware execution** — requests carry a deadline (defaulted
//!   from [`ServiceConfig`]); a request that expires while queued is shed
//!   without execution and reported as a miss, so an overloaded shard
//!   degrades by dropping stale work instead of serving it late.
//!
//! The broker is synchronous by design (`submit` returns a [`Ticket`] to
//! wait on; [`FriendsService::submit_batch`] floods and collects): the
//! vendored `crossbeam` channels provide MPMC queues without an async
//! runtime, and one OS thread per shard matches the one-processor-per-
//! worker scratch model of `friends-core`.
//!
//! ```
//! use friends_core::corpus::Corpus;
//! use friends_core::proximity::ProximityModel;
//! use friends_data::datasets::{DatasetSpec, Scale};
//! use friends_data::queries::Query;
//! use friends_service::{exact_factory, FriendsService, ServiceConfig};
//! use std::sync::Arc;
//!
//! let ds = DatasetSpec::delicious_like(Scale::Tiny).build(1);
//! let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
//! let svc = FriendsService::start(
//!     Arc::clone(&corpus),
//!     ServiceConfig::default(),
//!     exact_factory(ProximityModel::WeightedDecay { alpha: 0.5 }),
//! );
//! let results = svc.run_batch(&[Query { seeker: 3, tags: vec![1, 2], k: 5 }]);
//! assert!(results[0].items.len() <= 5);
//! svc.shutdown();
//! ```

mod broker;
mod request;
mod stats;

pub use broker::{
    exact_factory, global_bound_factory, par_batch_served, FriendsService, ProcessorFactory,
    ServiceConfig, ShardContext,
};
pub use request::{Deadline, Outcome, Reply, Request, Ticket};
pub use stats::{ServiceStats, ShardStats};
