//! # friends-service
//!
//! The serving tier and the **unified client API** over it: one
//! planner-backed query surface ([`SearchClient`]) with two execution
//! backends, non-blocking tickets, and a deadline-aware completion
//! multiplexer.
//!
//! ## The client API
//!
//! Callers build a [`QueryRequest`] — seeker, tags, k, proximity model,
//! strategy hint, deadline, correlation tag — and hand it to either client:
//!
//! * [`DirectClient`] — in-process worker pool over one shared proximity
//!   cache; the successor of `par_batch` / `par_batch_with_cache`.
//! * [`ServedClient`] — wraps a planner-backed [`FriendsService`]: seeker
//!   affinity, batched dispatch, coalescing, shard-private caches, result
//!   memoization.
//!
//! Behind both, a [`friends_core::plan::Planner`] maps
//! `(model, corpus stats, request)` to a
//! [`friends_core::plan::ProcessorRegistry`] entry plus a
//! [`friends_core::processors::ScoringStrategy`] — callers never name a
//! processor type, and every plan returns byte-identical rankings.
//! [`Ticket`]s are non-blocking (`poll` / `try_take`; `wait_deadline`
//! respects the request's deadline even mid-execution), and a
//! [`Multiplexer`] drives many in-flight tickets from one loop.
//!
//! ```
//! use friends_core::corpus::Corpus;
//! use friends_core::plan::QueryRequest;
//! use friends_core::proximity::ProximityModel;
//! use friends_data::datasets::{DatasetSpec, Scale};
//! use friends_service::{DirectClient, DirectConfig, SearchClient};
//! use std::sync::Arc;
//!
//! let ds = DatasetSpec::delicious_like(Scale::Tiny).build(1);
//! let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
//! let client = DirectClient::start(Arc::clone(&corpus), DirectConfig::default());
//! let reply = client.run(
//!     QueryRequest::new(3, vec![1, 2], 5)
//!         .with_model(ProximityModel::WeightedDecay { alpha: 0.5 }),
//! );
//! assert!(reply.outcome.result().expect("served").items.len() <= 5);
//! ```
//!
//! ## The broker underneath
//!
//! [`FriendsService`] is a thread-based query broker between clients and
//! the `friends-core` processors, the layer WAND-era IR engines put between
//! the index and the network:
//!
//! * **Seeker-affinity sharding** — `hash(seeker) % shards` routes every
//!   request of a seeker to the same worker, so their σ materializations
//!   and cache entries stay hot on one thread instead of being recomputed
//!   (or fetched through a contended shared cache) on whichever worker a
//!   chunk split happened to land them on.
//! * **Batched dispatch with request coalescing** — each worker drains its
//!   queue into a small batch and executes duplicate in-flight
//!   `(query, model, strategy)` requests **once**, fanning the result
//!   out to every waiter. Real streams repeat queries (see
//!   [`friends_data::requests`]); coalescing converts that repetition into
//!   throughput.
//! * **Cross-request result memoization** — an optional per-shard
//!   `(query, model, strategy) → ranking` cache with the same TinyLFU
//!   admission as the proximity cache serves repeats that arrive in
//!   *different* dispatch cycles, invalidated in one stroke by a corpus
//!   epoch counter ([`FriendsService::invalidate_results`]).
//! * **Admission-controlled private caches** — every shard owns an
//!   unsharded [`friends_core::cache::ProximityCache`] with TinyLFU-style
//!   admission (and optional TTL): uncontended for its owner, and scan
//!   traffic cannot evict the shard's hot seekers.
//! * **Deadline-aware execution** — requests carry a deadline (defaulted
//!   from [`ServiceConfig`]); a request that expires while queued is shed
//!   without execution, and [`Ticket::wait_deadline`] returns
//!   `DeadlineMissed` at the deadline even when the request is already
//!   executing, so an overloaded shard degrades by dropping stale work
//!   instead of serving it late.
//!
//! The broker is synchronous by design: the vendored `crossbeam` channels
//! provide MPMC queues without an async runtime, and one OS thread per
//! shard matches the one-processor-per-worker scratch model of
//! `friends-core`. Non-blocking tickets plus the [`Multiplexer`] provide
//! the async-client ergonomics on top.

mod broker;
mod client;
mod multiplexer;
mod request;
mod result_cache;
mod stats;

#[allow(deprecated)]
pub use broker::par_batch_served;
pub use broker::{
    exact_factory, global_bound_factory, FaultKind, FaultPlan, FriendsService, MutationReport,
    OverloadPolicy, ProcessorFactory, ServiceConfig, ShardContext,
};
pub use client::{ClientStats, DirectClient, DirectConfig, SearchClient, ServedClient};
pub use multiplexer::Multiplexer;
pub use request::{Deadline, Outcome, Reply, Request, Ticket};
pub use result_cache::ResultCache;
pub use stats::{ServiceStats, ShardStats};

// The client API's request/planning types, re-exported so service users
// need only this crate.
pub use friends_core::plan::{
    Plan, PlanHistogram, Planner, PlannerConfig, ProcessorRegistry, QueryRequest,
};
pub use friends_core::proximity::SigmaBounds;

// The live-graph write path: mutation batches (generated or hand-built)
// and the epoch-snapshot machinery behind `apply_mutations` — plus the
// durability layer behind `ServiceConfig::durability` (checksummed
// snapshots, mutation WAL, replay recovery).
pub use friends_core::live::{
    DurabilityConfig, LiveCorpus, LiveDurability, MutationOutcome, PreparedMutation, RecoverError,
    RecoveryReport,
};
pub use friends_data::mutations::{Mutation, MutationBatch, MutationParams, MutationStream};
pub use friends_data::wal::{SyncPolicy, WalAppend, WalStats};

// The observability surface: traces (EXPLAIN, slow-query log) and the
// unified metrics registry behind `SearchClient::metrics()`.
pub use friends_core::metrics::{Metric, MetricKind, MetricsRegistry};
pub use friends_core::trace::{QueryTrace, TraceConfig, TraceEvent, TraceOutcome, TraceSpan};
