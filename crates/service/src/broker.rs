//! The broker: shard routing, worker loops, batched dispatch, coalescing,
//! result memoization, deadline shedding and drain-based shutdown.

use crate::request::{Job, Outcome, Reply, Request, Ticket};
use crate::result_cache::{ResultCache, ResultKey};
use crate::stats::{ServiceStats, ShardState};
use crossbeam::channel;
use friends_core::cache::{CachePolicy, ProximityCache};
use friends_core::corpus::{Corpus, SearchResult};
use friends_core::latency::Stage;
use friends_core::live::{
    DurabilityConfig, LiveCorpus, LiveDurability, PreparedMutation, RecoveryReport,
};
use friends_core::plan::{
    strategy_index, PlanCounters, PlannedExecutor, Planner, ProcessorRegistry, STRATEGY_LABELS,
};
use friends_core::processors::{ExactOnline, GlobalBoundTA, Processor, ScoringStrategy};
use friends_core::proximity::{ProximityModel, ProximityVec, SigmaBounds, SigmaWorkspace};
use friends_core::trace::{QueryTrace, TraceCollector, TraceConfig, TraceOutcome, TraceRecord};
use friends_data::mutations::MutationBatch;
use friends_data::queries::Query;
use friends_data::wal::{WalAppend, WalStats};
use friends_data::UserId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The overload controller's policy: when to degrade, how fast to recover,
/// and which σ bounds each degradation level applies. `None` in
/// [`ServiceConfig::overload`] disables the controller entirely (requests
/// run under their own bounds only).
///
/// The controller is a per-worker hysteresis state machine over three
/// signals — queue depth, the worker's observed per-job latency (EWMA) and
/// the tightest remaining deadline budget in the drained batch. It steps
/// Exact → level 1 → level 2 immediately under pressure and steps back one
/// level only after `cooldown_batches` consecutive calm batches, so the
/// service does not flap at the boundary. Shedding (deadline misses) is
/// unchanged and remains the last resort when even degraded execution
/// cannot keep up. Deadline-free requests are never degraded — a batch
/// client that opted out of shedding opted out of approximation too.
#[derive(Clone, Copy, Debug)]
pub struct OverloadPolicy {
    /// Queue depth (after draining a batch) at which the level steps up.
    pub depth_high: usize,
    /// Depth at or below which a batch counts as calm (toward stepping
    /// back down). Keep well under `depth_high` for hysteresis.
    pub depth_low: usize,
    /// Consecutive calm batches required to step one level down.
    pub cooldown_batches: u32,
    /// σ bounds applied at degradation level 1 (composed with each
    /// request's own bounds via [`SigmaBounds::tighten`]).
    pub level1: SigmaBounds,
    /// σ bounds applied at degradation level 2 (the deepest level).
    pub level2: SigmaBounds,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        OverloadPolicy {
            depth_high: 64,
            depth_low: 8,
            cooldown_batches: 4,
            level1: Planner::degraded_bounds(1),
            level2: Planner::degraded_bounds(2),
        }
    }
}

impl OverloadPolicy {
    /// The σ bounds of a degradation level under this policy.
    pub fn bounds_for(&self, level: u8) -> SigmaBounds {
        match level {
            0 => SigmaBounds::EXACT,
            1 => self.level1,
            _ => self.level2,
        }
    }
}

/// Test-only fault injection: make one worker request misbehave, to
/// exercise the broker's containment paths deterministically. The fault
/// arms per shard and fires **once**, on that shard's `nth` execution
/// attempt (1-based, counting every dequeued-and-live request).
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// 1-based execution ordinal (per shard) the fault fires on.
    pub nth: u64,
    pub kind: FaultKind,
}

/// What an armed [`FaultPlan`] does when it fires.
#[derive(Clone, Copy, Debug)]
pub enum FaultKind {
    /// Panic inside the execution region — exercises containment: the
    /// in-flight request(s) reply [`Outcome::Failed`], the engine is
    /// rebuilt, and the worker keeps serving.
    Panic,
    /// Sleep before executing — simulates a stall for deadline tests.
    Delay(Duration),
    /// Fail the request without executing it (no panic, no engine
    /// rebuild) — a clean error path.
    Error,
}

/// Broker tuning. The defaults are the serving posture: one shard per
/// hardware thread, admission-controlled caches, coalescing on, a generous
/// default deadline. Result memoization is opt-in (`result_cache_capacity`)
/// because it changes what "executed" means for observability.
///
/// No longer `Copy`: [`ServiceConfig::durability`] carries a directory
/// path — clone explicitly where needed.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker shard count (≥ 1). Requests route by `hash(seeker) % shards`.
    pub shards: usize,
    /// Per-shard queue bound; 0 means unbounded. A bounded queue makes
    /// `submit` exert backpressure instead of buffering without limit.
    pub queue_capacity: usize,
    /// Capacity of each shard's private proximity cache, in entries.
    pub cache_capacity: usize,
    /// Byte budget of each shard's private proximity cache
    /// (`usize::MAX` disables; both limits are enforced when set). State
    /// the budget in bytes to let reach-proportional `Touched` snapshots
    /// pack thousands deep where dense vectors fit dozens — entry counts
    /// cannot tell the two apart.
    pub cache_bytes: usize,
    /// Policy of the shard-private caches (TinyLFU admission on by
    /// default; no TTL).
    pub cache_policy: CachePolicy,
    /// Capacity of each shard's private result-memoization cache, in
    /// rankings; 0 disables memoization (the default).
    pub result_cache_capacity: usize,
    /// Policy of the result caches (TinyLFU admission on by default; the
    /// TTL doubles as a staleness bound alongside epoch invalidation).
    pub result_cache_policy: CachePolicy,
    /// Deadline budget applied to requests that don't carry their own;
    /// `None` disables shedding for them.
    pub default_deadline: Option<Duration>,
    /// Most requests drained into one dispatch cycle.
    pub max_batch: usize,
    /// Whether duplicate in-flight `(query, model, strategy)` requests
    /// are executed once and fanned out. Disabling is only useful for
    /// measurement.
    pub coalesce: bool,
    /// Overload controller policy; `None` (the default) disables degraded
    /// serving — requests execute under their own bounds only.
    pub overload: Option<OverloadPolicy>,
    /// Test-only fault injection, armed per shard; `None` in production.
    pub fault: Option<FaultPlan>,
    /// Per-shard trace retention: head-sampling rate, ring capacities and
    /// the slow-query threshold. Always on (the hot-path cost is one
    /// relaxed `fetch_add` per request); set `sample_every: 0` to keep
    /// only forced, slow and deadline-missed traces.
    pub trace: TraceConfig,
    /// Per-shard budget on the σ entries `apply_mutations` re-materializes
    /// on the writer thread per batch (most-recently-used first; the rest
    /// rebuild lazily on their next query). Bounds the writer's CPU per
    /// epoch; 0 disables the refresh.
    pub mutation_refresh_cap: usize,
    /// Crash safety for the live graph: when set, startup recovers from
    /// the directory's newest valid snapshot + WAL replay (an empty
    /// directory is seeded from the start corpus), and every mutation
    /// batch is appended to the WAL — and fsynced per
    /// [`DurabilityConfig::sync`] — *before* it is broadcast, published or
    /// acknowledged. `None` (the default) serves memory-only.
    pub durability: Option<DurabilityConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_capacity: 0,
            // Byte budget is the primary limit (σ entries vary by orders of
            // magnitude between Touched and Dense snapshots); the entry cap
            // is a disabled fallback.
            cache_capacity: usize::MAX,
            cache_bytes: 64 << 20,
            cache_policy: CachePolicy {
                admission: true,
                ttl: None,
            },
            result_cache_capacity: 0,
            result_cache_policy: CachePolicy {
                admission: true,
                ttl: None,
            },
            default_deadline: Some(Duration::from_secs(5)),
            max_batch: 256,
            coalesce: true,
            overload: None,
            fault: None,
            trace: TraceConfig::default(),
            mutation_refresh_cap: 64,
            durability: None,
        }
    }
}

impl ServiceConfig {
    /// A config whose proximity-cache byte budget is sized from the corpus
    /// instead of the fixed default: enough for a `Touched` σ snapshot of a
    /// few hundred bytes per user (so affinity-routed repeat traffic fits
    /// entirely), clamped to `[1 MiB, 256 MiB]` across all shards.
    pub fn sized_for(corpus: &Corpus) -> Self {
        let users = corpus.graph.num_nodes();
        let budget = (users.saturating_mul(512)).clamp(1 << 20, 256 << 20);
        ServiceConfig {
            cache_bytes: budget,
            ..ServiceConfig::default()
        }
    }
}

/// What a worker hands the processor factory besides the corpus: the shard
/// index and the shard's private cache.
pub struct ShardContext {
    pub shard: usize,
    /// The shard-private cache. Single-owner by construction (only this
    /// worker ever touches it), so every access is an uncontended lock.
    pub cache: Arc<ProximityCache>,
}

/// Builds one processor per worker, borrowing the service-owned corpus.
/// Blanket-implemented for closures of the matching shape; see
/// [`exact_factory`] / [`global_bound_factory`] for ready-made ones.
///
/// This is the *fixed-factory* form — one processor type and model for the
/// whole service. The planner-backed form
/// ([`FriendsService::start_planned`], what
/// [`crate::ServedClient`] uses) instead chooses a registry entry per
/// request.
pub trait ProcessorFactory:
    for<'c> Fn(&'c Corpus, ShardContext) -> Box<dyn Processor + 'c> + Send + Sync + 'static
{
}

impl<T> ProcessorFactory for T where
    T: for<'c> Fn(&'c Corpus, ShardContext) -> Box<dyn Processor + 'c> + Send + Sync + 'static
{
}

/// Factory for [`ExactOnline`] under `model`, wired to the shard cache.
pub fn exact_factory(model: ProximityModel) -> impl ProcessorFactory {
    move |corpus: &Corpus, ctx: ShardContext| {
        Box::new(ExactOnline::with_cache(corpus, model, ctx.cache)) as Box<dyn Processor + '_>
    }
}

/// Factory for [`GlobalBoundTA`] under `model`, wired to the shard cache.
pub fn global_bound_factory(model: ProximityModel) -> impl ProcessorFactory {
    move |corpus: &Corpus, ctx: ShardContext| {
        Box::new(GlobalBoundTA::with_cache(corpus, model, ctx.cache)) as Box<dyn Processor + '_>
    }
}

/// What a worker executes requests with: either the fixed processor its
/// factory built, or a planned executor choosing per request.
enum ShardEngine<'c> {
    Fixed(Box<dyn Processor + 'c>),
    Planned(PlannedExecutor<'c>),
}

impl ShardEngine<'_> {
    fn run(
        &mut self,
        query: &Query,
        model: Option<ProximityModel>,
        strategy: ScoringStrategy,
        processor: Option<&'static str>,
        bounds: SigmaBounds,
    ) -> SearchResult {
        match self {
            // Fixed engines ignore the model/processor fields: their
            // processor was chosen (with its model) at start.
            ShardEngine::Fixed(p) => {
                p.set_bounds(bounds);
                p.set_strategy(strategy);
                p.query(query)
            }
            ShardEngine::Planned(e) => e.execute(
                query,
                model.unwrap_or(ProximityModel::Global),
                strategy,
                processor,
                bounds,
            ),
        }
    }

    /// The planner decision this engine would make for the request —
    /// `(processor name, strategy label)` — recovered on the trace cold
    /// path (planning is deterministic and cheap, so re-planning beats
    /// threading the decision through the hot path). `None` for fixed
    /// engines, which never plan.
    fn plan_of(
        &self,
        query: &Query,
        model: Option<ProximityModel>,
        strategy: ScoringStrategy,
        processor: Option<&'static str>,
        bounds: SigmaBounds,
    ) -> Option<(&'static str, &'static str)> {
        match self {
            ShardEngine::Fixed(_) => None,
            ShardEngine::Planned(e) => {
                let plan = e.plan(
                    query,
                    model.unwrap_or(ProximityModel::Global),
                    strategy,
                    processor,
                    bounds,
                );
                Some((
                    plan.processor_name,
                    STRATEGY_LABELS[strategy_index(plan.strategy)],
                ))
            }
        }
    }
}

/// Stable label of an injected fault for trace events.
fn fault_name(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Panic => "panic",
        FaultKind::Delay(_) => "delay",
        FaultKind::Error => "error",
    }
}

/// Builds and retains this request's trace when the collector wants one —
/// the cold path guard every reply site goes through. Returns the `Arc`
/// the [`Reply`] carries; `None` (the common case) costs nothing beyond
/// the `wants` check.
#[allow(clippy::too_many_arguments)]
fn maybe_trace(
    state: &ShardState,
    shard: usize,
    query: &Query,
    job: &Job,
    sampled: bool,
    outcome: TraceOutcome,
    queue_wait: Duration,
    raced: Option<RacedMutation>,
    fill: impl FnOnce(&mut TraceRecord),
) -> Option<Arc<QueryTrace>> {
    let e2e = job.submitted.elapsed();
    let missed = outcome == TraceOutcome::DeadlineMissed;
    if !state.traces.wants(job.trace, sampled, e2e, missed) {
        return None;
    }
    let mut rec = TraceRecord::new(shard, query, job.tag, job.trace);
    rec.sampled = sampled;
    rec.outcome = outcome;
    rec.e2e = e2e;
    rec.queue_wait = queue_wait;
    if let Some(m) = raced {
        rec.mutation = Some((m.epoch, m.mutations));
        rec.invalidated = Some((m.prox_invalidated, m.results_invalidated));
        rec.wal = m.wal.map(|w| (w.bytes, w.synced));
    }
    fill(&mut rec);
    Some(state.traces.retain(rec))
}

/// What flows down a shard's queue: queries, or a mutation batch to apply
/// at the next batch boundary. FIFO order is the sequencing guarantee —
/// every query runs entirely under the snapshot that was current when the
/// worker reached it, so each answer is *some* epoch's frozen answer
/// (snapshot isolation; `tests/proptest_live.rs` pins this).
enum WorkItem {
    Query(Job),
    Mutation(MutationJob),
}

/// One shard's share of a broadcast mutation: the prepared next snapshot
/// plus the ack the publisher collects (per-shard invalidation counts).
struct MutationJob {
    prepared: Arc<PreparedMutation>,
    ack: channel::Sender<(u64, u64)>,
    /// The batch's WAL receipt (`None` on memory-only services) — carried
    /// so racing queries' traces can show the durability point.
    wal: Option<WalAppend>,
}

/// The mutation a shard applied most recently, remembered for exactly one
/// dispatch cycle: the queries drained in that cycle were queued while the
/// epoch changed under them, and their traces say so.
#[derive(Clone, Copy, Debug)]
struct RacedMutation {
    epoch: u64,
    mutations: usize,
    prox_invalidated: u64,
    results_invalidated: u64,
    wal: Option<WalAppend>,
}

/// What [`FriendsService::apply_mutations`] reports back, aggregated over
/// every shard's ack.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MutationReport {
    /// The epoch the batch published.
    pub epoch: u64,
    /// Mutations in the batch.
    pub mutations: usize,
    /// σ cache entries dropped by the incremental sweeps, summed over
    /// shards.
    pub prox_invalidated: u64,
    /// Memoized rankings dropped by the per-seeker/per-tag sweeps, summed
    /// over shards.
    pub results_invalidated: u64,
    /// σ entries the writer re-materialized on the new epoch and
    /// re-installed after every shard switched — read-path misses the
    /// sweep would otherwise have caused.
    pub sigma_refreshed: u64,
    /// The batch's WAL receipt. `Some` iff the service runs durable
    /// ([`ServiceConfig::durability`]): the record was appended — and,
    /// when `wal.synced`, fsynced — before any shard saw the batch.
    pub wal: Option<WalAppend>,
}

/// The running service: N worker shards behind MPMC queues. Dropping the
/// handle without [`FriendsService::shutdown`] also drains (workers finish
/// queued work before exiting), but `shutdown` additionally joins and
/// returns the final stats.
pub struct FriendsService {
    senders: Vec<channel::Sender<WorkItem>>,
    shards: Vec<Arc<ShardState>>,
    workers: Vec<JoinHandle<()>>,
    default_deadline: Option<Duration>,
    /// The service-level snapshot lineage: `apply_mutations` prepares
    /// against it and publishes to it after every shard acks.
    live: LiveCorpus,
    /// Serializes `apply_mutations` callers (prepare must see the latest
    /// published snapshot).
    mutation_gate: Mutex<()>,
    /// See [`ServiceConfig::mutation_refresh_cap`].
    mutation_refresh_cap: usize,
    /// The WAL + snapshot machinery when the service runs durable
    /// ([`ServiceConfig::durability`]).
    durability: Option<Arc<LiveDurability>>,
}

impl FriendsService {
    /// Starts `config.shards` workers over `corpus`. Each worker builds its
    /// own processor through `factory` (one call per shard, so build cost —
    /// e.g. `GlobalBoundTA`'s candidate lists — is paid per shard).
    pub fn start<F: ProcessorFactory>(
        corpus: Arc<Corpus>,
        config: ServiceConfig,
        factory: F,
    ) -> Self {
        let factory = Arc::new(factory);
        Self::start_with(corpus, config, move |corpus, ctx, _state| {
            ShardEngine::Fixed(factory(corpus, ctx))
        })
    }

    /// Starts a **planner-backed** service: every request carries its own
    /// proximity model (and optional strategy hint / processor override),
    /// and each worker's [`PlannedExecutor`] maps it to a `registry` entry
    /// via `planner`. This is the engine behind [`crate::ServedClient`];
    /// planner decisions surface in [`crate::ShardStats::plans`].
    pub fn start_planned(
        corpus: Arc<Corpus>,
        config: ServiceConfig,
        registry: Arc<ProcessorRegistry>,
        planner: Planner,
    ) -> Self {
        Self::start_with(corpus, config, move |corpus, ctx, state| {
            ShardEngine::Planned(PlannedExecutor::new(
                corpus,
                Some(ctx.cache),
                Arc::clone(&registry),
                planner,
                state
                    .plans
                    .as_ref()
                    .map(Arc::clone)
                    .expect("planned shards carry counters"),
            ))
        })
    }

    fn start_with<E>(corpus: Arc<Corpus>, config: ServiceConfig, make_engine: E) -> Self
    where
        E: for<'c> Fn(&'c Corpus, ShardContext, &ShardState) -> ShardEngine<'c>
            + Send
            + Sync
            + 'static,
    {
        // Recovery happens before any worker spawns: with durability
        // configured, the disk state (newest valid snapshot + WAL replay)
        // is newer truth than the `corpus` argument, which only seeds an
        // empty directory. Startup panics when the directory is unusable —
        // serving from a stale seed while writes go nowhere would be a
        // silent data-loss mode.
        let (live, durability) = match config.durability.clone() {
            Some(dcfg) => {
                let (live, dur) = LiveCorpus::open_durable(Arc::clone(&corpus), dcfg)
                    .expect("durable service startup: snapshot/WAL directory unusable");
                (live, Some(Arc::new(dur)))
            }
            None => (LiveCorpus::new(Arc::clone(&corpus)), None),
        };
        // Workers serve the recovered snapshot (identical to the argument
        // on memory-only or freshly-seeded services).
        let corpus = live.snapshot();
        let shards = config.shards.max(1);
        let make_engine = Arc::new(make_engine);
        let mut senders = Vec::with_capacity(shards);
        let mut states = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = if config.queue_capacity == 0 {
                channel::unbounded()
            } else {
                channel::bounded(config.queue_capacity)
            };
            let cache = Arc::new(ProximityCache::with_limits(
                config.cache_capacity,
                config.cache_bytes,
                1, // shard-private: exactly one worker ever takes the lock
                config.cache_policy,
            ));
            let results = (config.result_cache_capacity > 0).then(|| {
                Arc::new(ResultCache::new(
                    config.result_cache_capacity,
                    config.result_cache_policy,
                ))
            });
            // Counters are a few atomics; every shard gets a set (fixed
            // engines simply never record into them).
            let plans = Some(Arc::new(PlanCounters::default()));
            let traces = Arc::new(TraceCollector::new(shard, config.trace));
            let state = Arc::new(ShardState::new(Arc::clone(&cache), results, plans, traces));
            let corpus = Arc::clone(&corpus);
            let make_engine = Arc::clone(&make_engine);
            let worker_state = Arc::clone(&state);
            let config = config.clone(); // per-worker copy (no longer Copy)
            let handle = std::thread::Builder::new()
                .name(format!("friends-svc-{shard}"))
                .spawn(move || {
                    // The worker serves one snapshot per *era*: the engine
                    // borrows the era's corpus, `rebuild` re-creates it
                    // after a contained panic (the old instance's scratch
                    // state is suspect, the shared cache and counters
                    // survive untouched), and a mutation ends the era —
                    // the loop comes back with the next snapshot and a
                    // fresh engine built over it. Controller state and the
                    // armed fault outlive eras.
                    let mut corpus = corpus;
                    let mut ctl = WorkerCtl {
                        level: 0,
                        calm: 0,
                        ewma_job_us: 0.0,
                        fault: config.fault,
                        attempts: 0,
                    };
                    let mut raced: Option<RacedMutation> = None;
                    loop {
                        let next = {
                            let rebuild = || {
                                let ctx = ShardContext {
                                    shard,
                                    cache: Arc::clone(&worker_state.cache),
                                };
                                make_engine(corpus.as_ref(), ctx, &worker_state)
                            };
                            worker_loop(
                                &rebuild,
                                &rx,
                                &worker_state,
                                shard,
                                &config,
                                &mut ctl,
                                &mut raced,
                            )
                        };
                        match next {
                            Some(snapshot) => corpus = snapshot,
                            None => return,
                        }
                    }
                })
                .expect("spawn service worker");
            senders.push(tx);
            states.push(state);
            workers.push(handle);
        }
        FriendsService {
            senders,
            shards: states,
            workers,
            default_deadline: config.default_deadline,
            live,
            mutation_gate: Mutex::new(()),
            mutation_refresh_cap: config.mutation_refresh_cap,
            durability,
        }
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard `seeker` routes to: affinity is a pure function of the
    /// seeker, so one user's traffic always lands on one worker.
    pub fn shard_of(&self, seeker: UserId) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        seeker.hash(&mut h);
        (h.finish() as usize) % self.senders.len()
    }

    /// Enqueues one request, returning the [`Ticket`] to wait on.
    pub fn submit(&self, request: Request) -> Ticket {
        let shard = self.shard_of(request.query.seeker);
        let (tx, rx) = channel::bounded(1);
        let now = Instant::now();
        let deadline = request.deadline.resolve(now, self.default_deadline);
        let state = &self.shards[shard];
        state.submitted.fetch_add(1, Ordering::Relaxed);
        let depth = state.depth.fetch_add(1, Ordering::Relaxed) + 1;
        state.max_depth.fetch_max(depth, Ordering::Relaxed);
        let job = Job {
            query: request.query,
            strategy: request.strategy,
            model: request.model,
            processor: request.processor,
            bounds: request.bounds,
            deadline,
            submitted: now,
            reply: tx.clone(),
            tag: request.tag,
            trace: request.trace,
        };
        if self.senders[shard].send(WorkItem::Query(job)).is_err() {
            // The worker died (processor panic). Resolve the ticket rather
            // than leaving the caller to block forever.
            state.depth.fetch_sub(1, Ordering::Relaxed);
            state.failed.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(Reply {
                outcome: Outcome::Failed,
                shard,
                queue_wait: Duration::ZERO,
                coalesced: false,
                result_cached: false,
                degraded: false,
                residual: 0.0,
                tag: request.tag,
                trace: None,
            });
        }
        Ticket {
            shard,
            rx,
            deadline,
            tag: request.tag,
            stash: None,
        }
    }

    /// Floods every query in (affinity-routed), then collects replies in
    /// input order — the serving-tier equivalent of
    /// [`friends_core::batch::par_batch`].
    pub fn submit_batch(&self, queries: &[Query]) -> Vec<Reply> {
        let tickets: Vec<Ticket> = queries
            .iter()
            .map(|q| self.submit(Request::new(q.clone())))
            .collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// [`FriendsService::submit_batch`] for deadline-free clients: unwraps
    /// every reply into its [`SearchResult`].
    ///
    /// # Panics
    /// Panics if a worker died mid-batch — batch clients submit without
    /// deadlines ([`crate::request::Deadline::Unbounded`]), so requests are
    /// never shed here.
    pub fn run_batch(&self, queries: &[Query]) -> Vec<SearchResult> {
        let tickets: Vec<Ticket> = queries
            .iter()
            .map(|q| self.submit(Request::new(q.clone()).without_deadline()))
            .collect();
        tickets
            .into_iter()
            .map(|t| t.wait().outcome.expect_done("run_batch"))
            .collect()
    }

    /// Bumps every shard's result-cache epoch, logically dropping all
    /// memoized rankings at once — the blunt full-stamp fallback when a
    /// corpus change's blast radius is unknown. [`apply_mutations`] is the
    /// incremental path and does **not** go through this.
    ///
    /// [`apply_mutations`]: FriendsService::apply_mutations
    pub fn invalidate_results(&self) {
        for s in &self.shards {
            if let Some(rc) = &s.results {
                rc.invalidate();
            }
        }
    }

    /// Applies a live-graph mutation batch across the whole service:
    /// prepare the next snapshot once (off every query path), broadcast it
    /// to each shard, and publish after the last shard acks.
    ///
    /// Each shard applies at its next **batch boundary** — queries drained
    /// before the boundary run under the old snapshot, queries after it
    /// under the new one, and no query ever straddles epochs (snapshot
    /// isolation). Invalidation is incremental: the σ sweep drops only
    /// entries whose reach set crosses a touched node
    /// ([`ProximityCache::invalidate_affected`]), the result sweep only
    /// affected seekers and touched tags
    /// ([`ResultCache::invalidate_partial`]); surviving entries keep
    /// hitting because the edited graph keeps its identity token.
    ///
    /// `horizon` bounds the affected-seeker search (pass the proximity
    /// model's decay horizon or the serving σ-bounds radius; `None` =
    /// full reachability, sound for every model). Blocks until every live
    /// shard has switched; concurrent callers serialize.
    ///
    /// # Panics
    /// On a durable service ([`ServiceConfig::durability`]), panics if the
    /// WAL append fails — an unlogged mutation must not be acknowledged,
    /// and this infallible entry point has no other way to refuse. Use
    /// [`FriendsService::try_apply_mutations`] to handle the error.
    pub fn apply_mutations(&self, batch: &MutationBatch, horizon: Option<u32>) -> MutationReport {
        self.try_apply_mutations(batch, horizon)
            .expect("mutation batch could not be made durable")
    }

    /// [`FriendsService::apply_mutations`] with the durability error
    /// surfaced. On a durable service the batch is appended to the WAL
    /// (group commit, fsynced per [`DurabilityConfig::sync`]) *after*
    /// prepare and **before** any shard sees it: `Err` means nothing was
    /// broadcast, published or acknowledged — the corpus stays at the
    /// previous epoch and the caller may retry. `Err` after the WAL write
    /// can only come from snapshot maintenance
    /// ([`DurabilityConfig::snapshot_every`]); the batch itself is then
    /// already durable and published, and the report is lost only to the
    /// caller.
    pub fn try_apply_mutations(
        &self,
        batch: &MutationBatch,
        horizon: Option<u32>,
    ) -> std::io::Result<MutationReport> {
        let _writer = self.mutation_gate.lock();
        if batch.is_empty() {
            return Ok(MutationReport {
                epoch: self.live.epoch(),
                ..MutationReport::default()
            });
        }
        let prepared = Arc::new(self.live.prepare(batch, horizon));
        let epoch = prepared.epoch();
        // The durability point. Everything below — σ refresh, broadcast,
        // acks, publish — happens only once the record (and, under
        // `SyncPolicy::Always`, its fsync) is on disk.
        let wal = match &self.durability {
            Some(d) => Some(d.log_batch(epoch, batch)?),
            None => None,
        };
        // Writer-side σ refresh: collect the entries each shard's sweep is
        // about to drop and re-materialize them against the next epoch
        // *here*, while every shard still serves the old snapshot. They are
        // re-installed after the last ack, so hot seekers hit warm σ on
        // their first post-epoch query instead of rebuilding it inline on
        // the shard thread. (Entries inserted between this scan and the
        // shard's sweep are simply not refreshed — a cold first query, not
        // a correctness issue.)
        let refreshed: Vec<Vec<(UserId, ProximityModel, Arc<ProximityVec>)>> = {
            let mut ws = SigmaWorkspace::new();
            self.shards
                .iter()
                .map(|s| {
                    s.cache
                        .affected_entries(&prepared.touched_nodes)
                        .into_iter()
                        .take(self.mutation_refresh_cap)
                        .map(|(seeker, model)| {
                            model.materialize_into(&prepared.next.graph, seeker, &mut ws);
                            let v = ws.snapshot(prepared.next.graph.num_nodes());
                            (seeker, model, Arc::new(v))
                        })
                        .collect()
                })
                .collect()
        };
        let (ack_tx, ack_rx) = channel::bounded(self.senders.len());
        for tx in &self.senders {
            // A dead shard (worker panic) just drops its queue; its clone
            // of the ack sender goes with it, so the recv loop below still
            // terminates.
            let _ = tx.send(WorkItem::Mutation(MutationJob {
                prepared: Arc::clone(&prepared),
                ack: ack_tx.clone(),
                wal,
            }));
        }
        drop(ack_tx);
        let mut prox = 0u64;
        let mut results = 0u64;
        while let Ok((p, r)) = ack_rx.recv() {
            prox += p;
            results += r;
        }
        // Every shard now serves the new snapshot (and swept its caches):
        // installing next-epoch σ under the shared graph token is safe from
        // here on.
        let mut sigma_refreshed = 0u64;
        for (state, entries) in self.shards.iter().zip(refreshed) {
            for (seeker, model, v) in entries {
                state.cache.insert(&prepared.next.graph, seeker, model, v);
                sigma_refreshed += 1;
            }
        }
        // Publish as the base for the next prepare (and for `snapshot()`
        // readers).
        self.live.publish(&prepared);
        if let Some(d) = &self.durability {
            d.maybe_snapshot(&self.live)?;
        }
        Ok(MutationReport {
            epoch,
            mutations: batch.len(),
            prox_invalidated: prox,
            results_invalidated: results,
            sigma_refreshed,
            wal,
        })
    }

    /// The startup recovery report — what the durable service found on
    /// disk and replayed before serving. `None` on memory-only services.
    /// All-zero fields mean the directory was freshly initialized.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.durability.as_ref().map(|d| d.report())
    }

    /// Current WAL counters; `None` on memory-only services.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.durability.as_ref().map(|d| d.wal_stats())
    }

    /// Forces an fsync of the active WAL segment — a durable shutdown
    /// barrier under [`friends_data::wal::SyncPolicy::EveryN`] /
    /// [`friends_data::wal::SyncPolicy::Never`]. No-op on memory-only
    /// services.
    pub fn sync_wal(&self) -> std::io::Result<()> {
        match &self.durability {
            Some(d) => d.sync(),
            None => Ok(()),
        }
    }

    /// Writes a snapshot of the current epoch now (atomic temp-file +
    /// rename), prunes old snapshots and retires covered WAL segments.
    /// Returns the snapshotted epoch, or `None` on memory-only services.
    pub fn snapshot_now(&self) -> std::io::Result<Option<u64>> {
        match &self.durability {
            Some(d) => {
                // Hold the writer gate so the snapshot captures a settled
                // epoch (no batch mid-broadcast).
                let _writer = self.mutation_gate.lock();
                d.snapshot_now(&self.live).map(Some)
            }
            None => Ok(None),
        }
    }

    /// Pins the service's current published snapshot (see
    /// [`LiveCorpus::snapshot`]).
    pub fn snapshot(&self) -> Arc<Corpus> {
        self.live.snapshot()
    }

    /// The service's published corpus epoch (0 = frozen seed).
    pub fn epoch(&self) -> u64 {
        self.live.epoch()
    }

    /// Drains every shard's head-sampled traces (shard order, FIFO within
    /// a shard). Draining is destructive: each trace is returned once.
    pub fn traces(&self) -> Vec<Arc<QueryTrace>> {
        self.shards
            .iter()
            .flat_map(|s| s.traces.drain_sampled())
            .collect()
    }

    /// Drains the slow-query log: forced (`with_trace()`), slow
    /// (past [`TraceConfig::slow_threshold`]) and deadline-missed traces,
    /// each with its full span tree.
    pub fn slow_queries(&self) -> Vec<Arc<QueryTrace>> {
        self.shards
            .iter()
            .flat_map(|s| s.traces.drain_retained())
            .collect()
    }

    /// A live snapshot of every shard's counters, plus the service-level
    /// WAL counters and startup recovery report when running durable.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| s.snapshot(i))
                .collect(),
            wal: self.wal_stats(),
            recovery: self.recovery_report().cloned(),
        }
    }

    /// Drain-based shutdown: closes the queues, lets every worker finish
    /// what is already enqueued, joins them, and returns the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.senders.clear(); // disconnects; workers drain then exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats()
    }
}

impl Drop for FriendsService {
    fn drop(&mut self) {
        self.senders.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The coalescing/memoization identity of a job: query, model parameter
/// bits, strategy hint, processor override and **effective** σ-bounds bits
/// (the job's own bounds after any controller tightening). Two jobs with
/// equal keys are interchangeable executions; jobs at different degradation
/// levels never coalesce and never share memoized rankings.
fn group_key(job: &Job, query: Query) -> ResultKey {
    (
        query,
        job.model.map(|m| m.key_bits()),
        job.strategy,
        job.processor,
        job.bounds.key_bits(),
    )
}

/// Per-worker mutable control state: the overload controller's hysteresis
/// machine, the armed fault, and the execution-attempt counter the fault
/// ordinal is matched against.
struct WorkerCtl {
    /// Current degradation level (0 = exact).
    level: u8,
    /// Consecutive calm batches observed at the current level.
    calm: u32,
    /// EWMA of observed per-job execution latency, in microseconds
    /// (0.0 until the first batch completes).
    ewma_job_us: f64,
    /// Armed fault, disarmed after it fires.
    fault: Option<FaultPlan>,
    /// Execution attempts on this shard (the fault ordinal clock).
    attempts: u64,
}

impl WorkerCtl {
    /// Steps the hysteresis machine for one drained batch: up immediately
    /// under pressure (deep queue, or the EWMA projects this batch past its
    /// tightest remaining deadline budget), down one level only after
    /// `cooldown_batches` consecutive calm batches.
    fn observe_batch(&mut self, policy: &OverloadPolicy, depth_after: usize, batch: &[Job]) {
        let mut pressure = depth_after >= policy.depth_high;
        if !pressure && self.ewma_job_us > 0.0 {
            // Keep fractional microseconds: `from_micros(x as u64)` used to
            // truncate sub-µs projections to zero, so a fast corpus
            // (per-job EWMA < 1 µs) never projected past any slack and the
            // deadline arm of the controller was blind.
            let projected = Duration::from_secs_f64(self.ewma_job_us * batch.len() as f64 * 1e-6);
            let now = Instant::now();
            if let Some(min_slack) = batch
                .iter()
                .filter_map(|j| j.deadline)
                .map(|d| d.saturating_duration_since(now))
                .min()
            {
                pressure = projected > min_slack;
            }
        }
        if pressure {
            self.level = (self.level + 1).min(2);
            self.calm = 0;
        } else if depth_after <= policy.depth_low {
            self.calm += 1;
            if self.calm >= policy.cooldown_batches && self.level > 0 {
                self.level -= 1;
                self.calm = 0;
            }
        } else {
            // Neither overloaded nor calm: hold the level, reset the
            // cooldown so recovery needs genuinely consecutive calm.
            self.calm = 0;
        }
    }

    /// The fault to apply to this execution attempt, if one fires now.
    fn take_fault(&mut self) -> Option<FaultKind> {
        self.attempts += 1;
        match self.fault {
            Some(f) if f.nth == self.attempts => {
                self.fault = None;
                Some(f.kind)
            }
            _ => None,
        }
    }
}

/// One worker era: block for the first item, opportunistically drain up to
/// `max_batch - 1` more, step the overload controller, dispatch the batch,
/// repeat. `rebuild` re-creates the engine after a contained panic.
///
/// A [`WorkItem::Mutation`] is a **batch boundary**: draining stops at it,
/// the queries drained before it dispatch under the era's snapshot, the
/// worker sweeps its caches, acks, and returns the next snapshot — ending
/// the era (the caller builds a fresh engine over it and re-enters).
/// Returns `None` when the queue disconnects (shutdown).
fn worker_loop<'c, R>(
    rebuild: &R,
    rx: &channel::Receiver<WorkItem>,
    state: &ShardState,
    shard: usize,
    config: &ServiceConfig,
    ctl: &mut WorkerCtl,
    raced: &mut Option<RacedMutation>,
) -> Option<Arc<Corpus>>
where
    R: Fn() -> ShardEngine<'c>,
{
    let mut engine = rebuild();
    let mut batch: Vec<Job> = Vec::new();
    let mut groups: HashMap<ResultKey, Vec<Job>> = HashMap::new();
    loop {
        let mut pending: Option<MutationJob> = None;
        match rx.recv() {
            Ok(WorkItem::Query(job)) => batch.push(job),
            Ok(WorkItem::Mutation(m)) => pending = Some(m),
            Err(channel::RecvError) => return None, // queue fully drained
        }
        if pending.is_none() {
            while batch.len() < config.max_batch.max(1) {
                match rx.try_recv() {
                    Ok(WorkItem::Query(job)) => batch.push(job),
                    Ok(WorkItem::Mutation(m)) => {
                        pending = Some(m);
                        break;
                    }
                    Err(_) => break,
                }
            }
        }
        if !batch.is_empty() {
            let drained = batch.len();
            let depth_after = state
                .depth
                .fetch_sub(drained, Ordering::Relaxed)
                .saturating_sub(drained);
            state.batches.fetch_add(1, Ordering::Relaxed);
            state.max_batch.fetch_max(drained, Ordering::Relaxed);
            if let Some(policy) = &config.overload {
                ctl.observe_batch(policy, depth_after, &batch);
            }
            let started = Instant::now();
            dispatch(
                &mut engine,
                rebuild,
                &mut batch,
                &mut groups,
                state,
                shard,
                config,
                ctl,
                raced,
            );
            let per_job = started.elapsed().as_micros() as f64 / drained as f64;
            ctl.ewma_job_us = if ctl.ewma_job_us == 0.0 {
                per_job
            } else {
                0.75 * ctl.ewma_job_us + 0.25 * per_job
            };
        }
        if let Some(m) = pending {
            // Sweep-then-swap, in that order: the edited graph keeps its
            // token, so any entry not swept here will keep hitting under
            // the new snapshot (see `friends_core::live`).
            let prox = state.cache.invalidate_affected(&m.prepared.touched_nodes);
            let results = state
                .results
                .as_ref()
                .map(|rc| {
                    rc.invalidate_partial(&m.prepared.affected_seekers, &m.prepared.touched_tags)
                })
                .unwrap_or(0);
            state
                .mutations_applied
                .fetch_add(m.prepared.mutations as u64, Ordering::Relaxed);
            state.mutation_batches.fetch_add(1, Ordering::Relaxed);
            state
                .mutation_epoch
                .store(m.prepared.epoch(), Ordering::Relaxed);
            *raced = Some(RacedMutation {
                epoch: m.prepared.epoch(),
                mutations: m.prepared.mutations,
                prox_invalidated: prox,
                results_invalidated: results,
                wal: m.wal,
            });
            let next = Arc::clone(&m.prepared.next);
            let _ = m.ack.send((prox, results));
            return Some(next);
        }
    }
}

/// Runs one query inside the panic-containment region. `Err` means the
/// engine panicked: its scratch state is suspect and the caller must
/// rebuild before the next execution.
fn run_contained(
    engine: &mut ShardEngine<'_>,
    query: &Query,
    model: Option<ProximityModel>,
    strategy: ScoringStrategy,
    processor: Option<&'static str>,
    bounds: SigmaBounds,
    fault: Option<FaultKind>,
) -> Result<SearchResult, ()> {
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        match fault {
            Some(FaultKind::Panic) => panic!("injected fault: panic"),
            Some(FaultKind::Delay(d)) => std::thread::sleep(d),
            Some(FaultKind::Error) | None => {}
        }
        engine.run(query, model, strategy, processor, bounds)
    }))
    .map_err(drop)
}

/// Replies `Outcome::Failed` for one job and counts it. `fault` is the
/// injected fault's label (or `None` for a real contained panic); `query`
/// is passed separately because the coalescing path moves the query out of
/// the job and into the group key.
#[allow(clippy::too_many_arguments)]
fn reply_failed(
    job: &Job,
    query: &Query,
    state: &ShardState,
    shard: usize,
    started: Instant,
    degraded: bool,
    sampled: bool,
    fault: Option<&'static str>,
    bounds: SigmaBounds,
    raced: Option<RacedMutation>,
) {
    state.failed.fetch_add(1, Ordering::Relaxed);
    let queue_wait = started - job.submitted;
    let trace = maybe_trace(
        state,
        shard,
        query,
        job,
        sampled,
        TraceOutcome::Failed,
        queue_wait,
        raced,
        |rec| {
            rec.fault = fault;
            if degraded {
                rec.degraded = Some((bounds.max_radius, bounds.min_mass));
            }
        },
    );
    let _ = job.reply.send(Reply {
        outcome: Outcome::Failed,
        shard,
        queue_wait,
        coalesced: false,
        result_cached: false,
        degraded,
        residual: 0.0,
        tag: job.tag,
        trace,
    });
}

/// Executes one drained batch: tighten bounds to the controller's level,
/// group duplicates, shed expired jobs, serve memoized rankings, run each
/// unique live query once (inside panic containment), fan results out.
/// Execution order within a cycle follows the group map (not arrival
/// order) — results are per-query deterministic either way, and replies
/// route by ticket.
#[allow(clippy::too_many_arguments)]
fn dispatch<'c, R>(
    engine: &mut ShardEngine<'c>,
    rebuild: &R,
    batch: &mut Vec<Job>,
    groups: &mut HashMap<ResultKey, Vec<Job>>,
    state: &ShardState,
    shard: usize,
    config: &ServiceConfig,
    ctl: &mut WorkerCtl,
    raced: &mut Option<RacedMutation>,
) where
    R: Fn() -> ShardEngine<'c>,
{
    let started = Instant::now();
    // The mutation race marker sticks to exactly one dispatch cycle: the
    // queries drained here were queued while the epoch changed under them.
    let raced = raced.take();
    groups.clear();
    // Compose the controller's level bounds into each job. Deadline-free
    // jobs are exempt: a caller that opted out of shedding opted out of
    // approximation too, and keeps byte-identical exact answers.
    if let Some(policy) = &config.overload {
        if ctl.level > 0 {
            let level_bounds = policy.bounds_for(ctl.level);
            for job in batch.iter_mut() {
                if job.deadline.is_some() {
                    job.bounds = job.bounds.tighten(level_bounds);
                }
            }
        }
    }
    if !config.coalesce {
        // Measurement mode: every job executes individually, reusing the
        // drained buffer (no per-job wrappers). Memoization still applies —
        // it is a different axis than coalescing.
        for job in batch.drain(..) {
            // The head-sampling decision — tracing's only hot-path cost.
            let sampled = state.traces.should_sample();
            // Queue wait is a property of queuing: every dispatched job has
            // one, shed or served.
            state
                .latency
                .record(Stage::QueueWait, started - job.submitted);
            if job.deadline.is_some_and(|d| started > d) {
                state.deadline_misses.fetch_add(1, Ordering::Relaxed);
                let trace = maybe_trace(
                    state,
                    shard,
                    &job.query,
                    &job,
                    sampled,
                    TraceOutcome::DeadlineMissed,
                    started - job.submitted,
                    raced,
                    |rec| rec.shed = true,
                );
                let _ = job.reply.send(Reply {
                    outcome: Outcome::DeadlineMissed,
                    shard,
                    queue_wait: started - job.submitted,
                    coalesced: false,
                    result_cached: false,
                    degraded: false,
                    residual: 0.0,
                    tag: job.tag,
                    trace,
                });
                continue;
            }
            let degraded = !job.bounds.is_exact();
            let memo = state.results.as_ref().map(|rc| {
                // The key (a query clone) is only built when memoization
                // can use it — measurement mode without a result cache
                // stays wrapper- and allocation-free per job.
                (group_key(&job, job.query.clone()), rc.epoch())
            });
            let memo_attempted = memo.is_some();
            if let Some((key, _)) = &memo {
                let rc = state.results.as_ref().expect("memo key implies cache");
                if let Some((items, residual)) = rc.get(key) {
                    state.result_served.fetch_add(1, Ordering::Relaxed);
                    if degraded {
                        state.record_degraded(residual);
                    }
                    // Memo hits have an end-to-end latency but no σ or
                    // scoring execution of their own.
                    state
                        .latency
                        .record(Stage::EndToEnd, job.submitted.elapsed());
                    let trace = maybe_trace(
                        state,
                        shard,
                        &job.query,
                        &job,
                        sampled,
                        TraceOutcome::Done { items: items.len() },
                        started - job.submitted,
                        raced,
                        |rec| {
                            rec.result_cached = Some(true);
                            if degraded {
                                rec.degraded = Some((job.bounds.max_radius, job.bounds.min_mass));
                                rec.residual = residual;
                            }
                        },
                    );
                    let _ = job.reply.send(Reply {
                        outcome: Outcome::Done(SearchResult {
                            items: (*items).clone(),
                            stats: Default::default(),
                            residual,
                        }),
                        shard,
                        queue_wait: started - job.submitted,
                        coalesced: false,
                        result_cached: true,
                        degraded,
                        residual,
                        tag: job.tag,
                        trace,
                    });
                    continue;
                }
            }
            let fault = ctl.take_fault();
            if matches!(fault, Some(FaultKind::Error)) {
                reply_failed(
                    &job,
                    &job.query,
                    state,
                    shard,
                    started,
                    degraded,
                    sampled,
                    fault.map(fault_name),
                    job.bounds,
                    raced,
                );
                continue;
            }
            let run = run_contained(
                engine,
                &job.query,
                job.model,
                job.strategy,
                job.processor,
                job.bounds,
                fault,
            );
            let result = match run {
                Ok(result) => result,
                Err(()) => {
                    state.worker_restarts.fetch_add(1, Ordering::Relaxed);
                    *engine = rebuild();
                    reply_failed(
                        &job,
                        &job.query,
                        state,
                        shard,
                        started,
                        degraded,
                        sampled,
                        fault.map(fault_name),
                        job.bounds,
                        raced,
                    );
                    continue;
                }
            };
            if let Some((key, observed_epoch)) = memo {
                let rc = state.results.as_ref().expect("memo key implies cache");
                rc.insert(
                    key,
                    Arc::new(result.items.clone()),
                    result.residual,
                    observed_epoch,
                );
            }
            state.executed.fetch_add(1, Ordering::Relaxed);
            let residual = result.residual;
            if degraded {
                state.record_degraded(residual);
            }
            // σ/scoring are per-execution stages, reported by the processor
            // through `QueryStats`; end-to-end closes at reply time.
            state.latency.record_ns(Stage::Sigma, result.stats.sigma_ns);
            state
                .latency
                .record_ns(Stage::Scoring, result.stats.scoring_ns);
            state
                .latency
                .record(Stage::EndToEnd, job.submitted.elapsed());
            let trace = maybe_trace(
                state,
                shard,
                &job.query,
                &job,
                sampled,
                TraceOutcome::Done {
                    items: result.items.len(),
                },
                started - job.submitted,
                raced,
                |rec| {
                    rec.fill_execution(&result.stats);
                    match engine.plan_of(
                        &job.query,
                        job.model,
                        job.strategy,
                        job.processor,
                        job.bounds,
                    ) {
                        Some(p) => rec.plan = Some(p),
                        None => rec.fixed_engine = true,
                    }
                    rec.result_cached = memo_attempted.then_some(false);
                    rec.fault = fault.map(fault_name);
                    if degraded {
                        rec.degraded = Some((job.bounds.max_radius, job.bounds.min_mass));
                        rec.residual = residual;
                    }
                },
            );
            let _ = job.reply.send(Reply {
                outcome: Outcome::Done(result),
                shard,
                queue_wait: started - job.submitted,
                coalesced: false,
                result_cached: false,
                degraded,
                residual,
                tag: job.tag,
                trace,
            });
        }
        return;
    }
    for mut job in batch.drain(..) {
        // The key takes ownership of the job's query (no clone): run_group
        // executes from the key, and duplicate keys are simply dropped.
        let query = std::mem::replace(
            &mut job.query,
            Query {
                seeker: 0,
                tags: Vec::new(),
                k: 0,
            },
        );
        let key = group_key(&job, query);
        groups.entry(key).or_default().push(job);
    }
    for (key, jobs) in groups.drain() {
        run_group(
            engine, rebuild, key, jobs, state, shard, started, ctl, raced,
        );
    }
}

/// Sheds expired members of one duplicate-request group, answers the
/// survivors from the result cache when possible, otherwise executes the
/// query once (inside panic containment) and fans the result out.
#[allow(clippy::too_many_arguments)]
fn run_group<'c, R>(
    engine: &mut ShardEngine<'c>,
    rebuild: &R,
    key: ResultKey,
    jobs: Vec<Job>,
    state: &ShardState,
    shard: usize,
    started: Instant,
    ctl: &mut WorkerCtl,
    raced: Option<RacedMutation>,
) where
    R: Fn() -> ShardEngine<'c>,
{
    // Every job in the group shares the key, hence the effective bounds.
    let degraded = key.4 != SigmaBounds::EXACT.key_bits();
    let bounds = SigmaBounds {
        max_radius: key.4 .0,
        min_mass: f64::from_bits(key.4 .1),
    };
    // Shed what already expired in the queue; execute for the rest. The
    // group key owns the query (coalescing moved it out of each job), so
    // every trace site below reads it from `key.0`.
    let mut live: Vec<(Job, bool)> = Vec::with_capacity(jobs.len());
    for job in jobs {
        // The head-sampling decision — tracing's only hot-path cost.
        let sampled = state.traces.should_sample();
        state
            .latency
            .record(Stage::QueueWait, started - job.submitted);
        if job.deadline.is_some_and(|d| started > d) {
            state.deadline_misses.fetch_add(1, Ordering::Relaxed);
            let trace = maybe_trace(
                state,
                shard,
                &key.0,
                &job,
                sampled,
                TraceOutcome::DeadlineMissed,
                started - job.submitted,
                raced,
                |rec| rec.shed = true,
            );
            let _ = job.reply.send(Reply {
                outcome: Outcome::DeadlineMissed,
                shard,
                queue_wait: started - job.submitted,
                coalesced: false,
                result_cached: false,
                degraded: false,
                residual: 0.0,
                tag: job.tag,
                trace,
            });
        } else {
            live.push((job, sampled));
        }
    }
    if live.is_empty() {
        return;
    }
    // Epoch read at the miss: if an invalidation lands while the query
    // executes, the insert below is dropped rather than caching a
    // pre-invalidation ranking as fresh.
    let observed_epoch = state.results.as_ref().map(|rc| rc.epoch());
    if let Some((items, residual)) = state.results.as_ref().and_then(|rc| rc.get(&key)) {
        state
            .result_served
            .fetch_add(live.len() as u64, Ordering::Relaxed);
        for (job, sampled) in live {
            if degraded {
                state.record_degraded(residual);
            }
            state
                .latency
                .record(Stage::EndToEnd, job.submitted.elapsed());
            let trace = maybe_trace(
                state,
                shard,
                &key.0,
                &job,
                sampled,
                TraceOutcome::Done { items: items.len() },
                started - job.submitted,
                raced,
                |rec| {
                    rec.result_cached = Some(true);
                    if degraded {
                        rec.degraded = Some((bounds.max_radius, bounds.min_mass));
                        rec.residual = residual;
                    }
                },
            );
            let _ = job.reply.send(Reply {
                outcome: Outcome::Done(SearchResult {
                    items: (*items).clone(),
                    stats: Default::default(),
                    residual,
                }),
                shard,
                queue_wait: started - job.submitted,
                coalesced: false,
                result_cached: true,
                degraded,
                residual,
                tag: job.tag,
                trace,
            });
        }
        return;
    }
    let fault = ctl.take_fault();
    if matches!(fault, Some(FaultKind::Error)) {
        for (job, sampled) in &live {
            reply_failed(
                job,
                &key.0,
                state,
                shard,
                started,
                degraded,
                *sampled,
                fault.map(fault_name),
                bounds,
                raced,
            );
        }
        return;
    }
    let (query, _, strategy, processor, _) = &key;
    let run = run_contained(
        engine,
        query,
        live[0].0.model,
        *strategy,
        *processor,
        bounds,
        fault,
    );
    let result = match run {
        Ok(result) => result,
        Err(()) => {
            // Contained panic: the whole group was riding this execution —
            // fail it, rebuild the engine, keep serving the other groups.
            state.worker_restarts.fetch_add(1, Ordering::Relaxed);
            *engine = rebuild();
            for (job, sampled) in &live {
                reply_failed(
                    job,
                    &key.0,
                    state,
                    shard,
                    started,
                    degraded,
                    *sampled,
                    fault.map(fault_name),
                    bounds,
                    raced,
                );
            }
            return;
        }
    };
    state.executed.fetch_add(1, Ordering::Relaxed);
    state
        .coalesced
        .fetch_add(live.len() as u64 - 1, Ordering::Relaxed);
    // One execution served the whole group: σ/scoring record once, while
    // queue wait and end-to-end record per rider.
    state.latency.record_ns(Stage::Sigma, result.stats.sigma_ns);
    state
        .latency
        .record_ns(Stage::Scoring, result.stats.scoring_ns);
    let residual = result.residual;
    // Clone the ranking for memoization before the fan-out consumes the
    // result; the insert itself waits until after the loop (it takes the
    // key, whose query the trace sites still borrow).
    let memo_items = state
        .results
        .as_ref()
        .map(|_| Arc::new(result.items.clone()));
    let count = live.len();
    let mut remaining = Some(result);
    for (i, (job, sampled)) in live.into_iter().enumerate() {
        // Waiters beyond the first are coalesced onto the single
        // execution; the last reply moves the original result.
        let r = if i + 1 == count {
            remaining.take().expect("result consumed once")
        } else {
            remaining.as_ref().expect("result still held").clone()
        };
        if degraded {
            state.record_degraded(residual);
        }
        state
            .latency
            .record(Stage::EndToEnd, job.submitted.elapsed());
        let trace = maybe_trace(
            state,
            shard,
            &key.0,
            &job,
            sampled,
            TraceOutcome::Done {
                items: r.items.len(),
            },
            started - job.submitted,
            raced,
            |rec| {
                rec.fill_execution(&r.stats);
                rec.coalesced = i != 0;
                match engine.plan_of(&key.0, job.model, *strategy, *processor, bounds) {
                    Some(p) => rec.plan = Some(p),
                    None => rec.fixed_engine = true,
                }
                rec.result_cached = state.results.is_some().then_some(false);
                rec.fault = fault.map(fault_name);
                if degraded {
                    rec.degraded = Some((bounds.max_radius, bounds.min_mass));
                    rec.residual = residual;
                }
            },
        );
        let _ = job.reply.send(Reply {
            outcome: Outcome::Done(r),
            shard,
            queue_wait: started - job.submitted,
            coalesced: i != 0,
            result_cached: false,
            degraded,
            residual,
            tag: job.tag,
            trace,
        });
    }
    if let Some(rc) = &state.results {
        let epoch = observed_epoch.expect("epoch read with the cache present");
        rc.insert(
            key,
            memo_items.expect("cloned with the cache present"),
            residual,
            epoch,
        );
    }
}

/// Runs `queries` through a transient service over `corpus` — the thin
/// service-client form of [`friends_core::batch::par_batch_with_cache`]:
/// start, flood, drain, shutdown. Results come back in input order and are
/// byte-identical to direct execution (routing affects *where* a query
/// runs, never its answer).
#[deprecated(
    note = "use `ServedClient` (a `SearchClient` over a standing planner-backed service); \
            this path is pinned byte-identical to it by the client proptests"
)]
pub fn par_batch_served<F: ProcessorFactory>(
    corpus: &Arc<Corpus>,
    queries: &[Query],
    shards: usize,
    factory: F,
) -> Vec<SearchResult> {
    let config = ServiceConfig {
        shards,
        default_deadline: None,
        ..ServiceConfig::default()
    };
    let service = FriendsService::start(Arc::clone(corpus), config, factory);
    let out = service.run_batch(queries);
    service.shutdown();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(deprecated)]
    use friends_core::batch::par_batch;
    use friends_data::datasets::{DatasetSpec, Scale};
    use friends_data::mutations::Mutation;
    use friends_data::queries::{QueryParams, QueryWorkload};

    fn fixture() -> (Arc<Corpus>, QueryWorkload) {
        let ds = DatasetSpec::delicious_like(Scale::Tiny).build(8);
        let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
        let w = QueryWorkload::generate(
            &corpus.graph,
            &corpus.store,
            &QueryParams {
                count: 37, // deliberately not divisible by the shard count
                ..QueryParams::default()
            },
            4,
        );
        (corpus, w)
    }

    const MODEL: ProximityModel = ProximityModel::WeightedDecay { alpha: 0.5 };

    #[test]
    #[allow(deprecated)]
    fn service_matches_direct_execution() {
        let (corpus, w) = fixture();
        let direct = par_batch(&w.queries, 1, || ExactOnline::new(&corpus, MODEL));
        let served = par_batch_served(&corpus, &w.queries, 3, exact_factory(MODEL));
        assert_eq!(direct.len(), served.len());
        for (a, b) in direct.iter().zip(&served) {
            assert_eq!(a.items, b.items);
        }
    }

    #[test]
    fn affinity_routes_each_seeker_to_one_shard() {
        let (corpus, w) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 4,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        assert_eq!(svc.num_shards(), 4);
        for q in &w.queries {
            let s = svc.shard_of(q.seeker);
            assert!(s < 4);
            assert_eq!(s, svc.shard_of(q.seeker), "routing must be stable");
            let t = svc.submit(Request::new(q.clone()));
            assert_eq!(t.shard(), s);
            let reply = t.wait();
            assert_eq!(reply.shard, s);
            assert!(reply.outcome.result().is_some());
        }
        let stats = svc.shutdown();
        let totals = stats.totals();
        assert_eq!(totals.submitted, w.len() as u64);
        assert_eq!(totals.deadline_misses, 0);
        assert_eq!(totals.queue_depth, 0);
        assert!(totals.batches >= 1 && totals.max_queue_depth >= 1);
    }

    #[test]
    fn duplicate_requests_coalesce_onto_one_execution() {
        let (corpus, w) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let q = Query {
            seeker: 7,
            tags: vec![0, 1],
            k: 10,
        };
        // Park the single worker behind a pile of distinct work first:
        // release-mode queries are fast enough that a bare flood can be
        // consumed one-by-one as it is produced (no two duplicates ever in
        // flight together). Behind the plug, the duplicates queue up and
        // land in shared dispatch cycles.
        let parked: Vec<Ticket> = w
            .queries
            .iter()
            .cycle()
            .take(256)
            .map(|p| svc.submit(Request::new(p.clone()).without_deadline()))
            .collect();
        // Flood 32 identical requests; collect replies afterwards so they
        // are all in flight together.
        let queries = vec![q.clone(); 32];
        let replies = svc.submit_batch(&queries);
        // The cycled plug repeats queries too, so its replies also carry
        // coalesced flags — tally them all against the shard counter.
        let mut coalesced = 0;
        for t in parked {
            let r = t.wait();
            assert!(r.outcome.result().is_some());
            if r.coalesced {
                coalesced += 1;
            }
        }
        let baseline = replies[0].outcome.result().expect("done").items.clone();
        let mut dup_coalesced = 0;
        for r in &replies {
            assert_eq!(r.outcome.result().expect("done").items, baseline);
            if r.coalesced {
                dup_coalesced += 1;
            }
        }
        coalesced += dup_coalesced;
        let stats = svc.shutdown().totals();
        assert_eq!(stats.submitted, 32 + 256);
        assert_eq!(stats.executed + stats.coalesced, 32 + 256);
        assert!(
            dup_coalesced > 0 && coalesced == stats.coalesced as usize,
            "flooded duplicates must coalesce: {stats:?}"
        );
    }

    #[test]
    fn coalescing_can_be_disabled() {
        let (corpus, _) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                coalesce: false,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let q = Query {
            seeker: 7,
            tags: vec![0],
            k: 5,
        };
        let replies = svc.submit_batch(&vec![q; 16]);
        assert!(replies.iter().all(|r| !r.coalesced));
        let stats = svc.shutdown().totals();
        assert_eq!(stats.executed, 16);
        assert_eq!(stats.coalesced, 0);
    }

    #[test]
    fn result_cache_serves_repeats_across_cycles() {
        let (corpus, w) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 2,
                result_cache_capacity: 256,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let first = svc.run_batch(&w.queries);
        // Second pass arrives in later dispatch cycles: coalescing cannot
        // help, memoization must.
        let tickets: Vec<Ticket> = w
            .queries
            .iter()
            .map(|q| svc.submit(Request::new(q.clone()).without_deadline()))
            .collect();
        let replies: Vec<Reply> = tickets.into_iter().map(Ticket::wait).collect();
        for ((a, b), q) in first.iter().zip(&replies).zip(&w.queries) {
            let served = b.outcome.result().expect("done");
            assert_eq!(a.items, served.items, "memoized ranking diverged: {q:?}");
        }
        assert!(
            replies.iter().any(|r| r.result_cached),
            "second pass should hit the result cache"
        );
        let totals = svc.shutdown().totals();
        assert!(totals.result_served > 0, "{totals:?}");
        assert!(totals.results.hits > 0, "{totals:?}");
        assert!(totals.results.insertions > 0, "{totals:?}");
        // Accounting: every submitted request is executed, coalesced,
        // memo-served or shed.
        assert_eq!(
            totals.executed + totals.coalesced + totals.result_served + totals.deadline_misses,
            totals.submitted,
            "{totals:?}"
        );
    }

    #[test]
    fn invalidate_results_forces_reexecution() {
        let (corpus, _) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                result_cache_capacity: 64,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let q = Query {
            seeker: 3,
            tags: vec![0, 1],
            k: 5,
        };
        let a = svc.run_batch(std::slice::from_ref(&q));
        let b = svc.run_batch(std::slice::from_ref(&q));
        assert_eq!(a[0].items, b[0].items);
        let before = svc.stats().totals();
        assert_eq!(before.result_served, 1, "{before:?}");
        svc.invalidate_results();
        let c = svc.run_batch(std::slice::from_ref(&q));
        assert_eq!(a[0].items, c[0].items, "re-execution must agree");
        let after = svc.shutdown().totals();
        assert_eq!(
            after.result_served, before.result_served,
            "the invalidated entry must not serve: {after:?}"
        );
        assert_eq!(after.executed, before.executed + 1, "{after:?}");
        assert!(after.results.expirations > 0, "{after:?}");
    }

    #[test]
    fn apply_mutations_switches_every_shard_to_the_new_epoch() {
        let (corpus, w) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 3,
                result_cache_capacity: 64,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        // Warm both cache layers under epoch 0.
        let before = svc.run_batch(&w.queries);
        for (q, r) in w.queries.iter().zip(&before) {
            let d = ExactOnline::new(&corpus, MODEL).query(q);
            assert_eq!(r.items, d.items);
        }
        let batch = MutationBatch::new(vec![
            Mutation::InsertEdge {
                u: 0,
                v: 1,
                weight: 2.0,
            },
            Mutation::AddTagging(friends_data::Tagging {
                user: 0,
                item: 0,
                tag: 0,
                weight: 2.0,
            }),
        ]);
        let report = svc.apply_mutations(&batch, None);
        assert_eq!(report.epoch, 1);
        assert_eq!(report.mutations, 2);
        assert_eq!(svc.epoch(), 1);
        let now = svc.snapshot();
        assert_eq!(now.epoch(), 1);
        assert!(now.graph.has_edge(0, 1));
        // Post-mutation answers — whether re-executed or served by a cache
        // entry the incremental sweep left alone — must equal from-scratch
        // execution on the new snapshot. This is the sweep-soundness claim
        // end to end.
        let after = svc.run_batch(&w.queries);
        for (q, r) in w.queries.iter().zip(&after) {
            let d = ExactOnline::new(&now, MODEL).query(q);
            assert_eq!(r.items, d.items, "stale answer under epoch 1: {q:?}");
        }
        let totals = svc.shutdown().totals();
        assert_eq!(totals.mutation_batches, 1, "{totals:?}");
        assert_eq!(totals.mutations_applied, 2, "{totals:?}");
        assert_eq!(totals.mutation_epoch, 1, "{totals:?}");
    }

    #[test]
    fn queries_racing_a_mutation_carry_trace_events() {
        let (corpus, _) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let q = Query {
            seeker: 2,
            tags: vec![0],
            k: 5,
        };
        // Warm a σ entry so the sweep has something to drop.
        let _ = svc.run_batch(std::slice::from_ref(&q));
        let report = svc.apply_mutations(
            &MutationBatch::new(vec![Mutation::InsertEdge {
                u: 2,
                v: 3,
                weight: 1.5,
            }]),
            None,
        );
        assert_eq!(report.epoch, 1);
        // The first dispatch cycle after the boundary carries the marker.
        let reply = svc.submit(Request::new(q).with_trace()).wait();
        let trace = reply.trace.expect("forced trace");
        let rendered = trace.render();
        assert!(
            rendered.contains("raced mutation batch (1 mutations) publishing epoch 1"),
            "{rendered}"
        );
        assert!(
            rendered.contains("invalidated sigma_entries="),
            "{rendered}"
        );
        svc.shutdown();
    }

    #[test]
    fn incremental_sweep_counts_surface_in_stats() {
        let (corpus, w) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 2,
                result_cache_capacity: 256,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let _ = svc.run_batch(&w.queries); // warm σ + memoized rankings
        let report = svc.apply_mutations(
            &MutationBatch::new(vec![Mutation::InsertEdge {
                u: 0,
                v: 1,
                weight: 2.0,
            }]),
            None,
        );
        // The delicious-like graph is well connected: some cached seeker
        // is reachable from the endpoints.
        assert!(report.prox_invalidated > 0, "{report:?}");
        assert!(report.results_invalidated > 0, "{report:?}");
        let totals = svc.shutdown().totals();
        assert_eq!(totals.cache.invalidated, report.prox_invalidated);
        assert_eq!(totals.results.invalidated, report.results_invalidated);
        // Incremental means *not* a full stamp: the result-cache epoch is
        // untouched, so nothing shows up as an expiration.
        assert_eq!(totals.results.expirations, 0, "{totals:?}");
    }

    #[test]
    fn expired_requests_are_shed_not_executed() {
        let (corpus, _) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        // A deadline that has effectively already passed: the request
        // expires while queued (the worker needs a moment to pick it up).
        let q = Query {
            seeker: 3,
            tags: vec![0],
            k: 5,
        };
        // Park the worker on a slow-ish first request so the doomed one
        // waits in the queue past its deadline.
        let mut tickets = Vec::new();
        for _ in 0..64 {
            tickets.push(svc.submit(Request::new(q.clone())));
        }
        let doomed = svc.submit(
            Request::new(Query {
                seeker: 5,
                tags: vec![1],
                k: 5,
            })
            .with_deadline(Duration::ZERO),
        );
        std::thread::sleep(Duration::from_millis(5));
        let reply = doomed.wait();
        assert!(
            matches!(reply.outcome, Outcome::DeadlineMissed),
            "zero-budget request must be shed"
        );
        for t in tickets {
            assert!(t.wait().outcome.result().is_some());
        }
        let stats = svc.shutdown().totals();
        assert_eq!(stats.deadline_misses, 1);
    }

    /// The satellite regression: a request that is *dequeued and executing*
    /// (or stuck behind one) when its deadline passes used to block
    /// `Ticket::wait` until the worker got to it; `wait_deadline` must
    /// return `DeadlineMissed` at the deadline instead.
    #[test]
    fn wait_deadline_returns_at_the_deadline_not_after_execution() {
        let (corpus, w) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                max_batch: 1, // one job per dispatch cycle: the queue drains slowly
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        // Park the single worker behind a pile of work. The pile and the
        // budget below are sized so the queue cannot drain inside the
        // budget even on a fast release build — the reach-proportional σ
        // path made 256-job piles drain in under the old 5 ms budget.
        let parked: Vec<Ticket> = w
            .queries
            .iter()
            .cycle()
            .take(2048)
            .map(|q| svc.submit(Request::new(q.clone()).without_deadline()))
            .collect();
        // …then submit a short-deadline request. Its deadline will pass
        // while the earlier work is still executing.
        let budget = Duration::from_millis(1);
        let doomed = svc.submit(
            Request::new(Query {
                seeker: 9,
                tags: vec![0],
                k: 5,
            })
            .with_deadline(budget),
        );
        let start = Instant::now();
        let reply = doomed.wait_deadline();
        let waited = start.elapsed();
        assert!(
            matches!(reply.outcome, Outcome::DeadlineMissed),
            "must miss, got {:?}",
            reply.outcome
        );
        assert!(
            waited < Duration::from_millis(500),
            "wait_deadline blocked {waited:?} — far past the {budget:?} budget"
        );
        for t in parked {
            assert!(t.wait().outcome.result().is_some());
        }
        svc.shutdown();
    }

    #[test]
    fn wait_deadline_returns_results_when_in_time() {
        let (corpus, _) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let t = svc.submit(
            Request::new(Query {
                seeker: 2,
                tags: vec![0],
                k: 5,
            })
            .with_deadline(Duration::from_secs(30)),
        );
        assert!(t.wait_deadline().outcome.result().is_some());
        svc.shutdown();
    }

    #[test]
    fn tickets_poll_and_try_take_without_blocking() {
        let (corpus, _) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let mut t = svc.submit(
            Request::new(Query {
                seeker: 4,
                tags: vec![0],
                k: 5,
            })
            .with_tag(77),
        );
        assert_eq!(t.tag(), 77);
        // Poll until completion — never blocks.
        let start = Instant::now();
        while !t.poll() {
            assert!(start.elapsed() < Duration::from_secs(10), "never completed");
            std::thread::yield_now();
        }
        let reply = t.try_take().expect("polled ready");
        assert_eq!(reply.tag, 77);
        assert!(reply.outcome.result().is_some());
        svc.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let (corpus, w) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 2,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let tickets: Vec<Ticket> = w
            .queries
            .iter()
            .map(|q| svc.submit(Request::new(q.clone())))
            .collect();
        // Shut down immediately: every already-submitted request must still
        // be answered (drain, not abort).
        let stats = svc.shutdown();
        for t in tickets {
            let reply = t.wait();
            assert!(
                reply.outcome.result().is_some(),
                "queued request dropped at shutdown"
            );
        }
        assert_eq!(stats.totals().submitted, w.len() as u64);
        assert_eq!(stats.totals().queue_depth, 0);
    }

    #[test]
    fn strategy_hint_is_honored_and_exact() {
        let (corpus, w) = fixture();
        corpus.sigma_index(); // shared build
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 2,
                ..ServiceConfig::default()
            },
            exact_factory(ProximityModel::DistanceDecay { alpha: 0.4 }),
        );
        let mut direct = ExactOnline::new(&corpus, ProximityModel::DistanceDecay { alpha: 0.4 });
        for q in w.queries.iter().take(8) {
            let want = direct.query(q).items;
            for strategy in [
                ScoringStrategy::Auto,
                ScoringStrategy::PostingScan,
                ScoringStrategy::BlockMax,
            ] {
                let reply = svc
                    .submit(Request::new(q.clone()).with_strategy(strategy))
                    .wait();
                assert_eq!(
                    reply.outcome.result().expect("done").items,
                    want,
                    "{strategy:?} diverged"
                );
            }
        }
        svc.shutdown();
    }

    #[test]
    fn planned_service_plans_per_request_model() {
        let (corpus, w) = fixture();
        let svc = FriendsService::start_planned(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 2,
                ..ServiceConfig::default()
            },
            Arc::new(ProcessorRegistry::standard()),
            Planner::default(),
        );
        let mut exact_wd = ExactOnline::new(&corpus, MODEL);
        let mut exact_global = ExactOnline::new(&corpus, ProximityModel::Global);
        for q in w.queries.iter().take(8) {
            let want = exact_wd.query(q).items;
            let got = svc.submit(Request::new(q.clone()).with_model(MODEL)).wait();
            assert_eq!(got.outcome.result().expect("done").items, want);
            // No model → the planner's Global default.
            let want = exact_global.query(q).items;
            let got = svc.submit(Request::new(q.clone())).wait();
            assert_eq!(got.outcome.result().expect("done").items, want);
        }
        let totals = svc.shutdown().totals();
        assert!(totals.plans.total() >= 16, "{:?}", totals.plans);
        assert_eq!(totals.plans.processors[0], totals.plans.total());
    }

    #[test]
    fn shard_caches_fill_under_affinity() {
        let (corpus, w) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 2,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        svc.run_batch(&w.queries);
        svc.run_batch(&w.queries); // second pass: repeat seekers hit
        let stats = svc.shutdown();
        let totals = stats.totals();
        assert!(totals.cache.insertions > 0, "{totals:?}");
        assert!(totals.cache.hits > 0, "{totals:?}");
        // Affinity means a seeker's entries live on exactly one shard: the
        // sum of entries never exceeds distinct seekers.
        let distinct: std::collections::HashSet<u32> = w.queries.iter().map(|q| q.seeker).collect();
        assert!(totals.cache.entries <= distinct.len());
    }

    #[test]
    #[allow(deprecated)]
    fn global_bound_factory_serves() {
        let (corpus, w) = fixture();
        let direct = par_batch(&w.queries, 1, || GlobalBoundTA::new(&corpus, MODEL));
        let served = par_batch_served(&corpus, &w.queries, 2, global_bound_factory(MODEL));
        for (a, b) in direct.iter().zip(&served) {
            assert_eq!(a.items, b.items);
        }
    }

    /// The fault-injection satellite: a panic in the Nth execution is
    /// contained — the in-flight request replies `Failed` promptly (no
    /// hung ticket), the engine is rebuilt once, and every other request
    /// in the stream completes with the accounting invariant intact.
    #[test]
    fn injected_panic_fails_only_the_in_flight_request() {
        let (corpus, w) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                coalesce: false, // one execution attempt per request
                fault: Some(FaultPlan {
                    nth: 3,
                    kind: FaultKind::Panic,
                }),
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let mut failed = Vec::new();
        for (i, q) in w.queries.iter().take(10).enumerate() {
            // Waiting each ticket serializes execution, so the fault
            // ordinal maps 1:1 onto the stream position.
            let start = Instant::now();
            let reply = svc
                .submit(Request::new(q.clone()).without_deadline())
                .wait();
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "ticket hung after the injected panic"
            );
            match reply.outcome {
                Outcome::Failed => failed.push(i),
                Outcome::Done(_) => {}
                other => panic!("request {i}: unexpected {other:?}"),
            }
        }
        assert_eq!(failed, vec![2], "exactly the 3rd execution must fail");
        let totals = svc.shutdown().totals();
        assert_eq!(totals.worker_restarts, 1, "{totals:?}");
        assert_eq!(totals.failed, 1, "{totals:?}");
        assert_eq!(totals.executed, 9, "{totals:?}");
        assert_eq!(
            totals.executed
                + totals.coalesced
                + totals.result_served
                + totals.deadline_misses
                + totals.failed,
            totals.submitted,
            "{totals:?}"
        );
    }

    /// `FaultKind::Error` is the clean failure path: the request fails
    /// without executing and without an engine rebuild.
    #[test]
    fn injected_error_fails_cleanly_without_restart() {
        let (corpus, w) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                coalesce: false,
                fault: Some(FaultPlan {
                    nth: 2,
                    kind: FaultKind::Error,
                }),
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let replies: Vec<Reply> = w
            .queries
            .iter()
            .take(6)
            .map(|q| {
                svc.submit(Request::new(q.clone()).without_deadline())
                    .wait()
            })
            .collect();
        assert!(matches!(replies[1].outcome, Outcome::Failed));
        assert_eq!(
            replies
                .iter()
                .filter(|r| matches!(r.outcome, Outcome::Failed))
                .count(),
            1
        );
        let totals = svc.shutdown().totals();
        assert_eq!(totals.worker_restarts, 0, "no panic, no rebuild");
        assert_eq!(totals.failed, 1);
        assert_eq!(totals.executed, 5);
    }

    /// `FaultKind::Delay` stalls the execution but the request still
    /// completes (the deadline tests use this to simulate slow workers).
    #[test]
    fn injected_delay_stalls_but_completes() {
        let (corpus, _) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                fault: Some(FaultPlan {
                    nth: 1,
                    kind: FaultKind::Delay(Duration::from_millis(30)),
                }),
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let start = Instant::now();
        let reply = svc
            .submit(
                Request::new(Query {
                    seeker: 3,
                    tags: vec![0],
                    k: 5,
                })
                .without_deadline(),
            )
            .wait();
        assert!(reply.outcome.result().is_some());
        assert!(start.elapsed() >= Duration::from_millis(30));
        let totals = svc.shutdown().totals();
        assert_eq!(totals.failed, 0);
        assert_eq!(totals.worker_restarts, 0);
    }

    /// The overload controller: a flooded queue steps the shard into
    /// degraded serving (replies marked with their residual certificate);
    /// calm traffic steps it back to exact.
    #[test]
    fn overload_controller_degrades_under_pressure_and_recovers() {
        let (corpus, w) = fixture();
        let policy = OverloadPolicy {
            depth_high: 8,
            depth_low: 2,
            cooldown_batches: 2,
            ..OverloadPolicy::default()
        };
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                max_batch: 4, // small cycles keep the flooded queue deep
                overload: Some(policy),
                default_deadline: Some(Duration::from_secs(30)),
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        // Flood: far more than depth_high in flight at once. Every request
        // carries the default deadline, so the controller may degrade it.
        let tickets: Vec<Ticket> = w
            .queries
            .iter()
            .cycle()
            .take(512)
            .map(|q| svc.submit(Request::new(q.clone())))
            .collect();
        let mut saw_degraded = false;
        for t in tickets {
            let r = t.wait();
            let result = r.outcome.result().expect("no shedding at a 30s budget");
            if r.degraded {
                saw_degraded = true;
                assert!(r.residual >= 0.0 && r.residual.is_finite());
                assert_eq!(r.residual, result.residual);
            } else {
                assert_eq!(r.residual, 0.0);
            }
        }
        assert!(saw_degraded, "a 512-deep flood must trip the controller");
        let mid = svc.stats().totals();
        assert!(mid.degraded > 0, "{mid:?}");
        // Recovery: sequential singletons are calm batches (depth 0 after
        // each drain); after a few, the level must be back at exact.
        let q = Query {
            seeker: 2,
            tags: vec![0],
            k: 5,
        };
        let mut last = None;
        for _ in 0..8 {
            last = Some(svc.submit(Request::new(q.clone())).wait());
        }
        let last = last.expect("eight replies");
        assert!(
            !last.degraded,
            "calm traffic must recover exact serving: {last:?}"
        );
        let mut direct = ExactOnline::new(&corpus, MODEL);
        assert_eq!(
            last.outcome.result().expect("done").items,
            direct.query(&q).items,
            "recovered replies must be byte-identical exact"
        );
        let totals = svc.shutdown().totals();
        assert_eq!(totals.deadline_misses, 0, "{totals:?}");
        assert!(totals.max_residual >= 0.0 && totals.max_residual.is_finite());
    }

    /// The timing-truncation drill: `from_micros((ewma * len) as u64)` used
    /// to round a sub-µs cost projection down to zero, so on a fast corpus
    /// (per-job EWMA < 1 µs) the deadline arm of the controller compared
    /// `0 > slack` and never fired. With fractional microseconds kept, a
    /// 0.4 µs EWMA across even a 2-job batch projects 0.8 µs, which must
    /// register as pressure against (near-)zero remaining slack.
    #[test]
    fn sub_microsecond_costs_still_project_pressure() {
        let policy = OverloadPolicy::default();
        let mut ctl = WorkerCtl {
            level: 0,
            calm: 0,
            ewma_job_us: 0.4,
            fault: None,
            attempts: 0,
        };
        let (tx, _rx) = channel::bounded(4);
        let due = Instant::now() + Duration::from_nanos(100);
        let make_job = || Job {
            query: Query {
                seeker: 0,
                tags: vec![0],
                k: 1,
            },
            strategy: ScoringStrategy::Auto,
            model: None,
            processor: None,
            bounds: SigmaBounds::EXACT,
            deadline: Some(due),
            submitted: Instant::now(),
            reply: tx.clone(),
            tag: 0,
            trace: false,
        };
        let batch = vec![make_job(), make_job()];
        // Depth 0 is far below depth_high: only the cost projection can
        // trip pressure here. Slack is at most 100 ns < the 800 ns
        // projection, so the controller must step up one level.
        ctl.observe_batch(&policy, 0, &batch);
        assert_eq!(
            ctl.level, 1,
            "sub-µs EWMA × batch length must still project past near-zero slack"
        );
        // And at a large batch: 1 ns per job × 512 jobs = 0.512 µs, still
        // inside the regime the truncation zeroed out entirely.
        let mut ctl2 = WorkerCtl {
            level: 0,
            calm: 0,
            ewma_job_us: 0.001,
            fault: None,
            attempts: 0,
        };
        let batch512: Vec<Job> = (0..512).map(|_| make_job()).collect();
        ctl2.observe_batch(&policy, 0, &batch512);
        assert_eq!(ctl2.level, 1, "1 ns × 512 must trip against ~0 slack");
    }

    /// Deadline-free requests are never degraded, whatever the controller's
    /// level: opting out of shedding opts out of approximation.
    #[test]
    fn deadline_free_requests_stay_exact_under_overload() {
        let (corpus, w) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                max_batch: 4,
                overload: Some(OverloadPolicy {
                    depth_high: 8,
                    depth_low: 2,
                    cooldown_batches: 2,
                    ..OverloadPolicy::default()
                }),
                default_deadline: None, // every request is deadline-free
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let tickets: Vec<Ticket> = w
            .queries
            .iter()
            .cycle()
            .take(512)
            .map(|q| svc.submit(Request::new(q.clone())))
            .collect();
        for t in tickets {
            let r = t.wait();
            assert!(!r.degraded, "deadline-free request degraded");
            assert_eq!(r.residual, 0.0);
        }
        let totals = svc.shutdown().totals();
        assert_eq!(totals.degraded, 0, "{totals:?}");
        assert_eq!(totals.max_residual, 0.0, "{totals:?}");
    }

    /// σ bounds are part of the memoization identity: a ranking computed
    /// under degraded bounds is never served for an exact request (and
    /// vice versa).
    #[test]
    fn degraded_rankings_never_alias_exact_in_the_result_cache() {
        let (corpus, _) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                result_cache_capacity: 64,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let q = Query {
            seeker: 5,
            tags: vec![0, 1],
            k: 10,
        };
        let bounds = Planner::degraded_bounds(2);
        // Degraded execution populates the cache under the degraded key.
        let a = svc
            .submit(
                Request::new(q.clone())
                    .without_deadline()
                    .with_bounds(bounds),
            )
            .wait();
        assert!(a.degraded && !a.result_cached);
        // The exact request must execute (miss), not read the degraded
        // entry.
        let b = svc
            .submit(Request::new(q.clone()).without_deadline())
            .wait();
        assert!(!b.degraded && !b.result_cached, "{b:?}");
        assert_eq!(b.residual, 0.0);
        // Repeats hit their own entries, degradation marker preserved.
        let a2 = svc
            .submit(
                Request::new(q.clone())
                    .without_deadline()
                    .with_bounds(bounds),
            )
            .wait();
        assert!(a2.degraded && a2.result_cached, "{a2:?}");
        assert_eq!(a2.residual, a.residual);
        let b2 = svc
            .submit(Request::new(q.clone()).without_deadline())
            .wait();
        assert!(!b2.degraded && b2.result_cached, "{b2:?}");
        let mut direct = ExactOnline::new(&corpus, MODEL);
        assert_eq!(
            b2.outcome.result().expect("done").items,
            direct.query(&q).items
        );
        svc.shutdown();
    }

    /// A scratch durability directory, cleared of any previous run.
    fn durability_dir(tag: &str) -> std::path::PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("friends-svc-dur-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn edge_batch(u: u32, v: u32) -> MutationBatch {
        MutationBatch::new(vec![
            Mutation::InsertEdge {
                u,
                v,
                weight: 1.0 + u as f32,
            },
            Mutation::AddTagging(friends_data::Tagging {
                user: u,
                item: v,
                tag: (u + v) % 4,
                weight: 1.5,
            }),
        ])
    }

    /// The tentpole, at the service tier: every acknowledged batch is on
    /// the WAL (with its fsync receipt under `SyncPolicy::Always`), and a
    /// restart over the same directory recovers the exact epoch chain —
    /// the stale seed argument is ignored and queries serve answers
    /// byte-identical to the pre-restart snapshot.
    #[test]
    fn durable_service_recovers_the_acked_epochs_after_restart() {
        let (corpus, w) = fixture();
        let dir = durability_dir("restart");
        let config = ServiceConfig {
            shards: 2,
            durability: Some(DurabilityConfig::new(&dir)),
            ..ServiceConfig::default()
        };
        let svc = FriendsService::start(Arc::clone(&corpus), config.clone(), exact_factory(MODEL));
        let fresh = svc.recovery_report().expect("durable service").clone();
        assert_eq!(fresh.recovered_epoch, 0, "{fresh:?}");
        assert!(!fresh.degraded(), "{fresh:?}");
        for (i, batch) in [edge_batch(0, 3), edge_batch(1, 4), edge_batch(2, 5)]
            .iter()
            .enumerate()
        {
            let report = svc.try_apply_mutations(batch, None).expect("durable apply");
            assert_eq!(report.epoch, i as u64 + 1);
            let wal = report.wal.expect("durable service returns a WAL receipt");
            assert!(wal.bytes > 0, "{wal:?}");
            assert!(wal.synced, "SyncPolicy::Always fsyncs every batch");
        }
        assert_eq!(svc.epoch(), 3);
        let expect = svc.snapshot();
        svc.shutdown();

        // Restart over the same directory, passing the *stale* seed: the
        // disk state must win.
        let svc2 = FriendsService::start(Arc::clone(&corpus), config, exact_factory(MODEL));
        let report = svc2.recovery_report().expect("durable service").clone();
        assert_eq!(report.recovered_epoch, 3, "{report:?}");
        assert_eq!(report.replayed, 3, "{report:?}");
        assert!(
            !report.degraded(),
            "clean shutdown, clean recovery: {report:?}"
        );
        assert_eq!(svc2.epoch(), 3);
        let recovered = svc2.snapshot();
        assert!(recovered.graph.has_edge(0, 3) && recovered.graph.has_edge(2, 5));
        let after = svc2.run_batch(&w.queries);
        for (q, r) in w.queries.iter().zip(&after) {
            let d = ExactOnline::new(&expect, MODEL).query(q);
            assert_eq!(r.items, d.items, "recovered answer diverged: {q:?}");
        }
        svc2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// WAL counters and the recovery report surface through the unified
    /// registry (`friends_wal_*` / `friends_recovery_*`), and a query that
    /// raced a durable mutation carries the WAL-append trace event.
    #[test]
    fn durable_service_surfaces_wal_metrics_and_trace_events() {
        let (corpus, _) = fixture();
        let dir = durability_dir("metrics");
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                durability: Some(DurabilityConfig::new(&dir)),
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let q = Query {
            seeker: 2,
            tags: vec![0],
            k: 5,
        };
        let _ = svc.run_batch(std::slice::from_ref(&q));
        let report = svc.apply_mutations(&edge_batch(2, 3), None);
        let wal = report.wal.expect("durable service returns a WAL receipt");
        // The first post-boundary dispatch cycle's traces show the
        // durability point alongside the epoch switch.
        let reply = svc.submit(Request::new(q).with_trace()).wait();
        let rendered = reply.trace.expect("forced trace").render();
        assert!(
            rendered.contains(&format!("wal append {} bytes (fsynced)", wal.bytes)),
            "{rendered}"
        );
        let registry = svc.stats().registry();
        assert_eq!(registry.get("friends_wal_appends_total"), Some(1.0));
        assert!(registry.get("friends_wal_bytes_total") >= Some(wal.bytes as f64));
        assert!(registry.get("friends_wal_syncs_total") >= Some(1.0));
        assert_eq!(registry.get("friends_recovery_recovered_epoch"), Some(0.0));
        assert_eq!(registry.get("friends_recovery_replayed_batches"), Some(0.0));
        svc.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `snapshot_every` keeps restart cost bounded: after enough batches a
    /// snapshot lands, covered WAL segments retire, and the next recovery
    /// replays only the suffix past the snapshot.
    #[test]
    fn durable_service_auto_snapshots_and_replays_only_the_suffix() {
        let (corpus, _) = fixture();
        let dir = durability_dir("snap");
        let mut dcfg = DurabilityConfig::new(&dir);
        dcfg.snapshot_every = 2;
        let config = ServiceConfig {
            shards: 1,
            durability: Some(dcfg),
            ..ServiceConfig::default()
        };
        let svc = FriendsService::start(Arc::clone(&corpus), config.clone(), exact_factory(MODEL));
        for (u, v) in [(0, 3), (1, 4), (2, 5), (3, 6), (4, 7)] {
            svc.apply_mutations(&edge_batch(u, v), None);
        }
        let stats = svc.wal_stats().expect("durable service");
        assert_eq!(stats.appends, 5, "{stats:?}");
        assert!(
            stats.rotations > 0,
            "snapshots seal the active segment: {stats:?}"
        );
        svc.shutdown();

        let svc2 = FriendsService::start(Arc::clone(&corpus), config, exact_factory(MODEL));
        let report = svc2.recovery_report().expect("durable service").clone();
        assert_eq!(report.recovered_epoch, 5, "{report:?}");
        assert!(report.snapshot_epoch >= 2, "{report:?}");
        assert_eq!(
            report.replayed,
            5 - report.snapshot_epoch,
            "only the post-snapshot suffix replays: {report:?}"
        );
        svc2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Degraded scores are certified lower bounds: within `residual` of the
    /// exact score for every returned item.
    #[test]
    fn degraded_scores_stay_within_the_reported_residual() {
        let (corpus, w) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let mut direct = ExactOnline::new(&corpus, MODEL);
        for level in [1u8, 2] {
            let bounds = Planner::degraded_bounds(level);
            for q in w.queries.iter().take(12) {
                let reply = svc
                    .submit(
                        Request::new(q.clone())
                            .without_deadline()
                            .with_bounds(bounds),
                    )
                    .wait();
                assert!(reply.degraded);
                let got = reply.outcome.result().expect("done");
                let exact = direct.query(q);
                let by_id: std::collections::HashMap<u32, f32> =
                    exact.items.iter().copied().collect();
                for &(item, score) in &got.items {
                    let full = by_id.get(&item).copied().unwrap_or(0.0).max(score);
                    assert!(
                        (full as f64) - (score as f64) <= reply.residual + 1e-6,
                        "level {level} {q:?}: item {item} degraded {score} vs exact {full}, \
                         residual {}",
                        reply.residual
                    );
                }
            }
        }
        svc.shutdown();
    }
}
