//! The broker: shard routing, worker loops, batched dispatch, coalescing,
//! deadline shedding and drain-based shutdown.

use crate::request::{Job, Outcome, Reply, Request, Ticket};
use crate::stats::{ServiceStats, ShardState};
use crossbeam::channel;
use friends_core::cache::{CachePolicy, ProximityCache};
use friends_core::corpus::{Corpus, SearchResult};
use friends_core::processors::{ExactOnline, GlobalBoundTA, Processor, ScoringStrategy};
use friends_core::proximity::ProximityModel;
use friends_data::queries::Query;
use friends_data::UserId;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Broker tuning. The defaults are the serving posture: one shard per
/// hardware thread, admission-controlled caches, coalescing on, a generous
/// default deadline.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker shard count (≥ 1). Requests route by `hash(seeker) % shards`.
    pub shards: usize,
    /// Per-shard queue bound; 0 means unbounded. A bounded queue makes
    /// `submit` exert backpressure instead of buffering without limit.
    pub queue_capacity: usize,
    /// Capacity of each shard's private proximity cache, in entries.
    pub cache_capacity: usize,
    /// Policy of the shard-private caches (TinyLFU admission on by
    /// default; no TTL).
    pub cache_policy: CachePolicy,
    /// Deadline budget applied to requests that don't carry their own;
    /// `None` disables shedding for them.
    pub default_deadline: Option<Duration>,
    /// Most requests drained into one dispatch cycle.
    pub max_batch: usize,
    /// Whether duplicate in-flight `(seeker, tags, k, strategy)` requests
    /// are executed once and fanned out. Disabling is only useful for
    /// measurement.
    pub coalesce: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_capacity: 0,
            cache_capacity: 1024,
            cache_policy: CachePolicy {
                admission: true,
                ttl: None,
            },
            default_deadline: Some(Duration::from_secs(5)),
            max_batch: 256,
            coalesce: true,
        }
    }
}

/// What a worker hands the processor factory besides the corpus: the shard
/// index and the shard's private cache.
pub struct ShardContext {
    pub shard: usize,
    /// The shard-private cache. Single-owner by construction (only this
    /// worker ever touches it), so every access is an uncontended lock.
    pub cache: Arc<ProximityCache>,
}

/// Builds one processor per worker, borrowing the service-owned corpus.
/// Blanket-implemented for closures of the matching shape; see
/// [`exact_factory`] / [`global_bound_factory`] for ready-made ones.
pub trait ProcessorFactory:
    for<'c> Fn(&'c Corpus, ShardContext) -> Box<dyn Processor + 'c> + Send + Sync + 'static
{
}

impl<T> ProcessorFactory for T where
    T: for<'c> Fn(&'c Corpus, ShardContext) -> Box<dyn Processor + 'c> + Send + Sync + 'static
{
}

/// Factory for [`ExactOnline`] under `model`, wired to the shard cache.
pub fn exact_factory(model: ProximityModel) -> impl ProcessorFactory {
    move |corpus: &Corpus, ctx: ShardContext| {
        Box::new(ExactOnline::with_cache(corpus, model, ctx.cache)) as Box<dyn Processor + '_>
    }
}

/// Factory for [`GlobalBoundTA`] under `model`, wired to the shard cache.
pub fn global_bound_factory(model: ProximityModel) -> impl ProcessorFactory {
    move |corpus: &Corpus, ctx: ShardContext| {
        Box::new(GlobalBoundTA::with_cache(corpus, model, ctx.cache)) as Box<dyn Processor + '_>
    }
}

/// The running service: N worker shards behind MPMC queues. Dropping the
/// handle without [`FriendsService::shutdown`] also drains (workers finish
/// queued work before exiting), but `shutdown` additionally joins and
/// returns the final stats.
pub struct FriendsService {
    senders: Vec<channel::Sender<Job>>,
    shards: Vec<Arc<ShardState>>,
    workers: Vec<JoinHandle<()>>,
    default_deadline: Option<Duration>,
}

impl FriendsService {
    /// Starts `config.shards` workers over `corpus`. Each worker builds its
    /// own processor through `factory` (one call per shard, so build cost —
    /// e.g. `GlobalBoundTA`'s candidate lists — is paid per shard).
    pub fn start<F: ProcessorFactory>(
        corpus: Arc<Corpus>,
        config: ServiceConfig,
        factory: F,
    ) -> Self {
        let shards = config.shards.max(1);
        let factory = Arc::new(factory);
        let mut senders = Vec::with_capacity(shards);
        let mut states = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = if config.queue_capacity == 0 {
                channel::unbounded()
            } else {
                channel::bounded(config.queue_capacity)
            };
            let cache = Arc::new(ProximityCache::unsharded(
                config.cache_capacity,
                config.cache_policy,
            ));
            let state = Arc::new(ShardState::new(Arc::clone(&cache)));
            let corpus = Arc::clone(&corpus);
            let factory = Arc::clone(&factory);
            let worker_state = Arc::clone(&state);
            let handle = std::thread::Builder::new()
                .name(format!("friends-svc-{shard}"))
                .spawn(move || {
                    let ctx = ShardContext {
                        shard,
                        cache: Arc::clone(&worker_state.cache),
                    };
                    let mut processor = factory(corpus.as_ref(), ctx);
                    worker_loop(processor.as_mut(), &rx, &worker_state, shard, &config);
                })
                .expect("spawn service worker");
            senders.push(tx);
            states.push(state);
            workers.push(handle);
        }
        FriendsService {
            senders,
            shards: states,
            workers,
            default_deadline: config.default_deadline,
        }
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard `seeker` routes to: affinity is a pure function of the
    /// seeker, so one user's traffic always lands on one worker.
    pub fn shard_of(&self, seeker: UserId) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        seeker.hash(&mut h);
        (h.finish() as usize) % self.senders.len()
    }

    /// Enqueues one request, returning the [`Ticket`] to wait on.
    pub fn submit(&self, request: Request) -> Ticket {
        let shard = self.shard_of(request.query.seeker);
        let (tx, rx) = channel::bounded(1);
        let now = Instant::now();
        let deadline = match request.deadline {
            crate::request::Deadline::Default => self.default_deadline.map(|b| now + b),
            crate::request::Deadline::Unbounded => None,
            crate::request::Deadline::Budget(b) => Some(now + b),
        };
        let state = &self.shards[shard];
        state.submitted.fetch_add(1, Ordering::Relaxed);
        let depth = state.depth.fetch_add(1, Ordering::Relaxed) + 1;
        state.max_depth.fetch_max(depth, Ordering::Relaxed);
        let job = Job {
            query: request.query,
            strategy: request.strategy,
            deadline,
            submitted: now,
            reply: tx.clone(),
        };
        if self.senders[shard].send(job).is_err() {
            // The worker died (processor panic). Resolve the ticket rather
            // than leaving the caller to block forever.
            state.depth.fetch_sub(1, Ordering::Relaxed);
            let _ = tx.send(Reply {
                outcome: Outcome::Failed,
                shard,
                queue_wait: Duration::ZERO,
                coalesced: false,
            });
        }
        Ticket { shard, rx }
    }

    /// Floods every query in (affinity-routed), then collects replies in
    /// input order — the serving-tier equivalent of
    /// [`friends_core::batch::par_batch`].
    pub fn submit_batch(&self, queries: &[Query]) -> Vec<Reply> {
        let tickets: Vec<Ticket> = queries
            .iter()
            .map(|q| self.submit(Request::new(q.clone())))
            .collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// [`FriendsService::submit_batch`] for deadline-free clients: unwraps
    /// every reply into its [`SearchResult`].
    ///
    /// # Panics
    /// Panics if a worker died mid-batch — batch clients submit without
    /// deadlines ([`crate::request::Deadline::Unbounded`]), so requests are
    /// never shed here.
    pub fn run_batch(&self, queries: &[Query]) -> Vec<SearchResult> {
        let tickets: Vec<Ticket> = queries
            .iter()
            .map(|q| self.submit(Request::new(q.clone()).without_deadline()))
            .collect();
        tickets
            .into_iter()
            .map(|t| t.wait().outcome.expect_done("run_batch"))
            .collect()
    }

    /// A live snapshot of every shard's counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| s.snapshot(i))
                .collect(),
        }
    }

    /// Drain-based shutdown: closes the queues, lets every worker finish
    /// what is already enqueued, joins them, and returns the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.senders.clear(); // disconnects; workers drain then exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats()
    }
}

impl Drop for FriendsService {
    fn drop(&mut self) {
        self.senders.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One worker: block for the first job, opportunistically drain up to
/// `max_batch - 1` more, dispatch the batch, repeat until disconnected.
fn worker_loop(
    processor: &mut dyn Processor,
    rx: &channel::Receiver<Job>,
    state: &ShardState,
    shard: usize,
    config: &ServiceConfig,
) {
    let mut batch: Vec<Job> = Vec::new();
    let mut groups: HashMap<(Query, ScoringStrategy), Vec<Job>> = HashMap::new();
    loop {
        let first = match rx.recv() {
            Ok(job) => job,
            Err(channel::RecvError) => return, // queue fully drained
        };
        batch.push(first);
        while batch.len() < config.max_batch.max(1) {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        state.depth.fetch_sub(batch.len(), Ordering::Relaxed);
        state.batches.fetch_add(1, Ordering::Relaxed);
        state.max_batch.fetch_max(batch.len(), Ordering::Relaxed);
        dispatch(
            processor,
            &mut batch,
            &mut groups,
            state,
            shard,
            config.coalesce,
        );
    }
}

/// Executes one drained batch: group duplicates, shed expired jobs, run
/// each unique live query once, fan results out. Execution order within a
/// cycle follows the group map (not arrival order) — results are
/// per-query deterministic either way, and replies route by ticket.
fn dispatch(
    processor: &mut dyn Processor,
    batch: &mut Vec<Job>,
    groups: &mut HashMap<(Query, ScoringStrategy), Vec<Job>>,
    state: &ShardState,
    shard: usize,
    coalesce: bool,
) {
    let started = Instant::now();
    groups.clear();
    if !coalesce {
        // Measurement mode: every job executes individually, reusing the
        // drained buffer (no per-job wrappers).
        for job in batch.drain(..) {
            if job.deadline.is_some_and(|d| started > d) {
                state.deadline_misses.fetch_add(1, Ordering::Relaxed);
                let _ = job.reply.send(Reply {
                    outcome: Outcome::DeadlineMissed,
                    shard,
                    queue_wait: started - job.submitted,
                    coalesced: false,
                });
                continue;
            }
            processor.set_strategy(job.strategy);
            let result = processor.query(&job.query);
            state.executed.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Reply {
                outcome: Outcome::Done(result),
                shard,
                queue_wait: started - job.submitted,
                coalesced: false,
            });
        }
        return;
    }
    for mut job in batch.drain(..) {
        // The key takes ownership of the job's query (no clone): run_group
        // executes from the key, and duplicate keys are simply dropped.
        let query = std::mem::replace(
            &mut job.query,
            Query {
                seeker: 0,
                tags: Vec::new(),
                k: 0,
            },
        );
        groups.entry((query, job.strategy)).or_default().push(job);
    }
    for ((query, strategy), jobs) in groups.drain() {
        run_group(processor, &query, strategy, jobs, state, shard, started);
    }
}

/// Sheds expired members of one duplicate-request group, executes the query
/// once for the survivors, and fans the result out.
fn run_group(
    processor: &mut dyn Processor,
    query: &Query,
    strategy: ScoringStrategy,
    jobs: Vec<Job>,
    state: &ShardState,
    shard: usize,
    started: Instant,
) {
    // Shed what already expired in the queue; execute for the rest.
    let mut live: Vec<Job> = Vec::with_capacity(jobs.len());
    for job in jobs {
        if job.deadline.is_some_and(|d| started > d) {
            state.deadline_misses.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Reply {
                outcome: Outcome::DeadlineMissed,
                shard,
                queue_wait: started - job.submitted,
                coalesced: false,
            });
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }
    processor.set_strategy(strategy);
    let result = processor.query(query);
    state.executed.fetch_add(1, Ordering::Relaxed);
    state
        .coalesced
        .fetch_add(live.len() as u64 - 1, Ordering::Relaxed);
    let count = live.len();
    let mut remaining = Some(result);
    for (i, job) in live.into_iter().enumerate() {
        // Waiters beyond the first are coalesced onto the single
        // execution; the last reply moves the original result.
        let r = if i + 1 == count {
            remaining.take().expect("result consumed once")
        } else {
            remaining.as_ref().expect("result still held").clone()
        };
        let _ = job.reply.send(Reply {
            outcome: Outcome::Done(r),
            shard,
            queue_wait: started - job.submitted,
            coalesced: i != 0,
        });
    }
}

/// Runs `queries` through a transient service over `corpus` — the thin
/// service-client form of [`friends_core::batch::par_batch_with_cache`]:
/// start, flood, drain, shutdown. Results come back in input order and are
/// byte-identical to direct execution (routing affects *where* a query
/// runs, never its answer).
pub fn par_batch_served<F: ProcessorFactory>(
    corpus: &Arc<Corpus>,
    queries: &[Query],
    shards: usize,
    factory: F,
) -> Vec<SearchResult> {
    let config = ServiceConfig {
        shards,
        default_deadline: None,
        ..ServiceConfig::default()
    };
    let service = FriendsService::start(Arc::clone(corpus), config, factory);
    let out = service.run_batch(queries);
    service.shutdown();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use friends_core::batch::par_batch;
    use friends_data::datasets::{DatasetSpec, Scale};
    use friends_data::queries::{QueryParams, QueryWorkload};

    fn fixture() -> (Arc<Corpus>, QueryWorkload) {
        let ds = DatasetSpec::delicious_like(Scale::Tiny).build(8);
        let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
        let w = QueryWorkload::generate(
            &corpus.graph,
            &corpus.store,
            &QueryParams {
                count: 37, // deliberately not divisible by the shard count
                ..QueryParams::default()
            },
            4,
        );
        (corpus, w)
    }

    const MODEL: ProximityModel = ProximityModel::WeightedDecay { alpha: 0.5 };

    #[test]
    fn service_matches_direct_execution() {
        let (corpus, w) = fixture();
        let direct = par_batch(&w.queries, 1, || ExactOnline::new(&corpus, MODEL));
        let served = par_batch_served(&corpus, &w.queries, 3, exact_factory(MODEL));
        assert_eq!(direct.len(), served.len());
        for (a, b) in direct.iter().zip(&served) {
            assert_eq!(a.items, b.items);
        }
    }

    #[test]
    fn affinity_routes_each_seeker_to_one_shard() {
        let (corpus, w) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 4,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        assert_eq!(svc.num_shards(), 4);
        for q in &w.queries {
            let s = svc.shard_of(q.seeker);
            assert!(s < 4);
            assert_eq!(s, svc.shard_of(q.seeker), "routing must be stable");
            let t = svc.submit(Request::new(q.clone()));
            assert_eq!(t.shard(), s);
            let reply = t.wait();
            assert_eq!(reply.shard, s);
            assert!(reply.outcome.result().is_some());
        }
        let stats = svc.shutdown();
        let totals = stats.totals();
        assert_eq!(totals.submitted, w.len() as u64);
        assert_eq!(totals.deadline_misses, 0);
        assert_eq!(totals.queue_depth, 0);
        assert!(totals.batches >= 1 && totals.max_queue_depth >= 1);
    }

    #[test]
    fn duplicate_requests_coalesce_onto_one_execution() {
        let (corpus, _) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let q = Query {
            seeker: 7,
            tags: vec![0, 1],
            k: 10,
        };
        // Flood 32 identical requests; collect replies afterwards so they
        // are all in flight together.
        let queries = vec![q.clone(); 32];
        let replies = svc.submit_batch(&queries);
        let baseline = replies[0].outcome.result().expect("done").items.clone();
        let mut coalesced = 0;
        for r in &replies {
            assert_eq!(r.outcome.result().expect("done").items, baseline);
            if r.coalesced {
                coalesced += 1;
            }
        }
        let stats = svc.shutdown().totals();
        assert_eq!(stats.submitted, 32);
        assert_eq!(stats.executed + stats.coalesced, 32);
        assert!(
            stats.coalesced > 0 && coalesced == stats.coalesced as usize,
            "flooded duplicates must coalesce: {stats:?}"
        );
    }

    #[test]
    fn coalescing_can_be_disabled() {
        let (corpus, _) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                coalesce: false,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let q = Query {
            seeker: 7,
            tags: vec![0],
            k: 5,
        };
        let replies = svc.submit_batch(&vec![q; 16]);
        assert!(replies.iter().all(|r| !r.coalesced));
        let stats = svc.shutdown().totals();
        assert_eq!(stats.executed, 16);
        assert_eq!(stats.coalesced, 0);
    }

    #[test]
    fn expired_requests_are_shed_not_executed() {
        let (corpus, _) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 1,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        // A deadline that has effectively already passed: the request
        // expires while queued (the worker needs a moment to pick it up).
        let q = Query {
            seeker: 3,
            tags: vec![0],
            k: 5,
        };
        // Park the worker on a slow-ish first request so the doomed one
        // waits in the queue past its deadline.
        let mut tickets = Vec::new();
        for _ in 0..64 {
            tickets.push(svc.submit(Request::new(q.clone())));
        }
        let doomed = svc.submit(
            Request::new(Query {
                seeker: 5,
                tags: vec![1],
                k: 5,
            })
            .with_deadline(Duration::ZERO),
        );
        std::thread::sleep(Duration::from_millis(5));
        let reply = doomed.wait();
        assert!(
            matches!(reply.outcome, Outcome::DeadlineMissed),
            "zero-budget request must be shed"
        );
        for t in tickets {
            assert!(t.wait().outcome.result().is_some());
        }
        let stats = svc.shutdown().totals();
        assert_eq!(stats.deadline_misses, 1);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let (corpus, w) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 2,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        let tickets: Vec<Ticket> = w
            .queries
            .iter()
            .map(|q| svc.submit(Request::new(q.clone())))
            .collect();
        // Shut down immediately: every already-submitted request must still
        // be answered (drain, not abort).
        let stats = svc.shutdown();
        for t in tickets {
            let reply = t.wait();
            assert!(
                reply.outcome.result().is_some(),
                "queued request dropped at shutdown"
            );
        }
        assert_eq!(stats.totals().submitted, w.len() as u64);
        assert_eq!(stats.totals().queue_depth, 0);
    }

    #[test]
    fn strategy_hint_is_honored_and_exact() {
        let (corpus, w) = fixture();
        corpus.sigma_index(); // shared build
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 2,
                ..ServiceConfig::default()
            },
            exact_factory(ProximityModel::DistanceDecay { alpha: 0.4 }),
        );
        let mut direct = ExactOnline::new(&corpus, ProximityModel::DistanceDecay { alpha: 0.4 });
        for q in w.queries.iter().take(8) {
            let want = direct.query(q).items;
            for strategy in [
                ScoringStrategy::Auto,
                ScoringStrategy::PostingScan,
                ScoringStrategy::BlockMax,
            ] {
                let reply = svc
                    .submit(Request::new(q.clone()).with_strategy(strategy))
                    .wait();
                assert_eq!(
                    reply.outcome.result().expect("done").items,
                    want,
                    "{strategy:?} diverged"
                );
            }
        }
        svc.shutdown();
    }

    #[test]
    fn shard_caches_fill_under_affinity() {
        let (corpus, w) = fixture();
        let svc = FriendsService::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards: 2,
                ..ServiceConfig::default()
            },
            exact_factory(MODEL),
        );
        svc.run_batch(&w.queries);
        svc.run_batch(&w.queries); // second pass: repeat seekers hit
        let stats = svc.shutdown();
        let totals = stats.totals();
        assert!(totals.cache.insertions > 0, "{totals:?}");
        assert!(totals.cache.hits > 0, "{totals:?}");
        // Affinity means a seeker's entries live on exactly one shard: the
        // sum of entries never exceeds distinct seekers.
        let distinct: std::collections::HashSet<u32> = w.queries.iter().map(|q| q.seeker).collect();
        assert!(totals.cache.entries <= distinct.len());
    }

    #[test]
    fn global_bound_factory_serves() {
        let (corpus, w) = fixture();
        let direct = par_batch(&w.queries, 1, || GlobalBoundTA::new(&corpus, MODEL));
        let served = par_batch_served(&corpus, &w.queries, 2, global_bound_factory(MODEL));
        for (a, b) in direct.iter().zip(&served) {
            assert_eq!(a.items, b.items);
        }
    }
}
