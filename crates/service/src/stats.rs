//! Per-shard observability: the counters a serving loop watches.

use crate::result_cache::ResultCache;
use friends_core::cache::{CacheStats, ProximityCache};
use friends_core::latency::{StageLatencies, StageSnapshot};
use friends_core::live::{register_wal_stats, RecoveryReport};
use friends_core::metrics::MetricsRegistry;
use friends_core::plan::{PlanCounters, PlanHistogram};
use friends_core::trace::TraceCollector;
use friends_data::wal::WalStats;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Live counters owned by one shard, shared between its worker thread and
/// the service handle (all relaxed atomics — monitoring, not coordination).
pub(crate) struct ShardState {
    pub depth: AtomicUsize,
    pub max_depth: AtomicUsize,
    pub submitted: AtomicU64,
    pub executed: AtomicU64,
    pub coalesced: AtomicU64,
    pub result_served: AtomicU64,
    pub deadline_misses: AtomicU64,
    pub degraded: AtomicU64,
    pub failed: AtomicU64,
    pub worker_restarts: AtomicU64,
    /// `f64::to_bits` of the largest residual reported so far. Residuals
    /// are finite and non-negative, so the bit patterns order like the
    /// numbers and a plain `fetch_max` keeps the running maximum.
    pub max_residual_bits: AtomicU64,
    pub batches: AtomicU64,
    pub max_batch: AtomicUsize,
    /// Individual mutations applied to this shard's snapshot (every shard
    /// applies every broadcast batch, so this counts shard-applications).
    pub mutations_applied: AtomicU64,
    /// Mutation batches applied at this shard's batch boundaries.
    pub mutation_batches: AtomicU64,
    /// Epoch of the snapshot this shard currently serves from.
    pub mutation_epoch: AtomicU64,
    pub cache: Arc<ProximityCache>,
    /// Present when the service memoizes results.
    pub results: Option<Arc<ResultCache>>,
    /// Present when the service is planner-backed.
    pub plans: Option<Arc<PlanCounters>>,
    /// Per-stage latency histograms (queue wait, σ materialization,
    /// scoring, end-to-end) — lock-free, recorded by the worker loop.
    pub latency: StageLatencies,
    /// Per-shard trace retention: head sampling, the sampled ring, and
    /// the slow-query log.
    pub traces: Arc<TraceCollector>,
}

impl ShardState {
    pub fn new(
        cache: Arc<ProximityCache>,
        results: Option<Arc<ResultCache>>,
        plans: Option<Arc<PlanCounters>>,
        traces: Arc<TraceCollector>,
    ) -> Self {
        ShardState {
            depth: AtomicUsize::new(0),
            max_depth: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            result_served: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            max_residual_bits: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicUsize::new(0),
            mutations_applied: AtomicU64::new(0),
            mutation_batches: AtomicU64::new(0),
            mutation_epoch: AtomicU64::new(0),
            cache,
            results,
            plans,
            latency: StageLatencies::new(),
            traces,
        }
    }

    /// Records one degraded completion's residual certificate.
    pub fn record_degraded(&self, residual: f64) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
        self.max_residual_bits
            .fetch_max(residual.to_bits(), Ordering::Relaxed);
    }

    pub fn snapshot(&self, shard: usize) -> ShardStats {
        ShardStats {
            shard,
            queue_depth: self.depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_depth.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            result_served: self.result_served.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            max_residual: f64::from_bits(self.max_residual_bits.load(Ordering::Relaxed)),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            mutations_applied: self.mutations_applied.load(Ordering::Relaxed),
            mutation_batches: self.mutation_batches.load(Ordering::Relaxed),
            mutation_epoch: self.mutation_epoch.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            results: self.results.as_ref().map(|r| r.stats()).unwrap_or_default(),
            plans: self
                .plans
                .as_ref()
                .map(|p| p.snapshot())
                .unwrap_or_default(),
            latency: self.latency.snapshot(),
            traces_dropped: self.traces.dropped(),
        }
    }
}

/// A snapshot of one shard's counters. No longer `Copy`: the latency
/// snapshot carries histogram buckets — clone explicitly where needed.
///
/// **Deprecated for reporting**: reading counter fields directly from
/// reporting/export code is deprecated — call
/// [`ShardStats::register_into`] and look the values up by their stable
/// `friends_service_*` / `friends_stage_*` registry keys instead
/// (migration table in `crates/README.md`). The fields stay public
/// because this struct is the recording surface; only the
/// read-for-reporting direction moved to the registry.
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    pub shard: usize,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Deepest the queue has ever been.
    pub max_queue_depth: usize,
    /// Requests routed to this shard.
    pub submitted: u64,
    /// Queries actually executed (after coalescing, memoization and
    /// shedding).
    pub executed: u64,
    /// Requests answered by another identical request's execution.
    pub coalesced: u64,
    /// Requests answered out of the result-memoization cache (no
    /// execution, no coalescing). Always 0 when the cache is disabled.
    pub result_served: u64,
    /// Requests shed because their deadline passed while queued.
    pub deadline_misses: u64,
    /// Requests served under non-exact σ bounds (their own, or tightened
    /// by the overload controller).
    pub degraded: u64,
    /// Requests answered [`crate::Outcome::Failed`] — a contained worker
    /// panic (injected or real) lost the in-flight execution.
    pub failed: u64,
    /// Times this shard's engine was rebuilt after a contained panic.
    pub worker_restarts: u64,
    /// Largest score-space residual certificate reported by any degraded
    /// reply (0.0 when nothing degraded).
    pub max_residual: f64,
    /// Dispatch cycles run.
    pub batches: u64,
    /// Largest batch drained in one dispatch cycle.
    pub max_batch: usize,
    /// Individual live-graph mutations applied on this shard. Every shard
    /// applies every broadcast batch, so in [`ServiceStats::totals`] this
    /// takes the max across shards (the service-level count), not the sum.
    pub mutations_applied: u64,
    /// Mutation batches applied at this shard's batch boundaries (max
    /// across shards in totals, like `mutations_applied`).
    pub mutation_batches: u64,
    /// Epoch of the snapshot this shard serves from (max across shards).
    pub mutation_epoch: u64,
    /// The shard-private proximity cache's counters.
    pub cache: CacheStats,
    /// The shard-private result-memoization cache's counters (all zero
    /// when disabled).
    pub results: CacheStats,
    /// Planner decisions on this shard (all zero for fixed-factory
    /// services, which never plan).
    pub plans: PlanHistogram,
    /// Per-stage latency histograms. Queue wait and end-to-end count
    /// *requests* (every dispatched / every answered one); σ and scoring
    /// count *executions* — coalesced and memo-served requests ride an
    /// execution they did not pay for.
    pub latency: StageSnapshot,
    /// Traces lost on contended trace-ring slots (0 in practice: the ring
    /// is shard-private and contention needs a concurrent drain).
    pub traces_dropped: u64,
}

impl ShardStats {
    /// Registers every counter under the unified naming convention:
    /// `friends_service_*` for the broker counters,
    /// `friends_proximity_cache_*` / `friends_result_cache_*` for the
    /// caches, `friends_plan_*` for planner decisions and
    /// `friends_stage_*` for the latency percentiles. Reporting paths
    /// read the registry; the struct fields stay as the recording
    /// surface.
    pub fn register_into(&self, registry: &mut MetricsRegistry) {
        registry.counter(
            "friends_service_submitted_total",
            "requests routed to the service",
            self.submitted,
        );
        registry.counter(
            "friends_service_executed_total",
            "queries actually executed",
            self.executed,
        );
        registry.counter(
            "friends_service_coalesced_total",
            "requests answered by an identical in-flight execution",
            self.coalesced,
        );
        registry.counter(
            "friends_service_result_served_total",
            "requests answered from the result-memoization cache",
            self.result_served,
        );
        registry.counter(
            "friends_service_deadline_misses_total",
            "requests shed past their deadline",
            self.deadline_misses,
        );
        registry.counter(
            "friends_service_degraded_total",
            "requests served under non-exact sigma bounds",
            self.degraded,
        );
        registry.counter(
            "friends_service_failed_total",
            "requests answered Failed after a contained panic or fault",
            self.failed,
        );
        registry.counter(
            "friends_service_worker_restarts_total",
            "engine rebuilds after contained panics",
            self.worker_restarts,
        );
        registry.counter(
            "friends_service_batches_total",
            "dispatch cycles run",
            self.batches,
        );
        registry.counter(
            "friends_service_traces_dropped_total",
            "traces lost on contended trace-ring slots",
            self.traces_dropped,
        );
        registry.gauge(
            "friends_service_queue_depth",
            "requests currently queued",
            self.queue_depth as f64,
        );
        registry.gauge(
            "friends_service_max_queue_depth",
            "deepest observed queue",
            self.max_queue_depth as f64,
        );
        registry.gauge(
            "friends_service_max_batch",
            "largest batch drained in one dispatch cycle",
            self.max_batch as f64,
        );
        registry.gauge(
            "friends_service_max_residual",
            "largest residual certificate of any degraded reply",
            self.max_residual,
        );
        registry.counter(
            "friends_mutation_applied_total",
            "individual live-graph mutations applied",
            self.mutations_applied,
        );
        registry.counter(
            "friends_mutation_batches_total",
            "mutation batches applied at batch boundaries",
            self.mutation_batches,
        );
        registry.gauge(
            "friends_mutation_epoch",
            "corpus epoch currently served (0 = frozen seed)",
            self.mutation_epoch as f64,
        );
        self.cache.register_into(registry, "proximity_cache");
        self.results.register_into(registry, "result_cache");
        self.plans.register_into(registry);
        self.latency.register_into(registry);
    }
}

/// A snapshot of every shard, plus aggregates and — on durable services —
/// the service-level WAL counters and startup recovery report.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    pub shards: Vec<ShardStats>,
    /// WAL counters; `None` on memory-only services
    /// (`ServiceConfig::durability: None`).
    pub wal: Option<WalStats>,
    /// What startup recovery found and replayed; `None` on memory-only
    /// services, all-zero on a freshly initialized directory.
    pub recovery: Option<RecoveryReport>,
}

impl ServiceStats {
    /// Sums every shard (the `shard` field of the total is the shard
    /// count; depth fields take the max across shards).
    pub fn totals(&self) -> ShardStats {
        let mut t = ShardStats {
            shard: self.shards.len(),
            ..ShardStats::default()
        };
        for s in &self.shards {
            t.queue_depth += s.queue_depth;
            t.max_queue_depth = t.max_queue_depth.max(s.max_queue_depth);
            t.submitted += s.submitted;
            t.executed += s.executed;
            t.coalesced += s.coalesced;
            t.result_served += s.result_served;
            t.deadline_misses += s.deadline_misses;
            t.degraded += s.degraded;
            t.failed += s.failed;
            t.worker_restarts += s.worker_restarts;
            t.max_residual = t.max_residual.max(s.max_residual);
            t.batches += s.batches;
            t.max_batch = t.max_batch.max(s.max_batch);
            // Broadcast batches land on every shard: max, not sum, is the
            // service-level mutation count.
            t.mutations_applied = t.mutations_applied.max(s.mutations_applied);
            t.mutation_batches = t.mutation_batches.max(s.mutation_batches);
            t.mutation_epoch = t.mutation_epoch.max(s.mutation_epoch);
            t.cache.merge(&s.cache);
            t.results.merge(&s.results);
            t.plans.merge(&s.plans);
            // Shards iterate in index order, so the merged histograms are
            // deterministic run-to-run for a fixed set of samples.
            t.latency.merge(&s.latency);
            t.traces_dropped += s.traces_dropped;
        }
        t
    }

    /// The pooled (all-shards) counters as a [`MetricsRegistry`] — the
    /// export surface behind `report --json`'s `metrics_*` keys, the
    /// `metrics_dump` example and the CI tail-latency gates. Durable
    /// services additionally publish `friends_wal_*` and
    /// `friends_recovery_*`.
    pub fn registry(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        self.totals().register_into(&mut registry);
        if let Some(wal) = &self.wal {
            register_wal_stats(wal, &mut registry);
        }
        if let Some(recovery) = &self.recovery {
            recovery.register_into(&mut registry);
        }
        registry
    }
}
