//! Per-shard observability: the counters a serving loop watches.

use crate::result_cache::ResultCache;
use friends_core::cache::{CacheStats, ProximityCache};
use friends_core::latency::{StageLatencies, StageSnapshot};
use friends_core::plan::{PlanCounters, PlanHistogram};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Live counters owned by one shard, shared between its worker thread and
/// the service handle (all relaxed atomics — monitoring, not coordination).
pub(crate) struct ShardState {
    pub depth: AtomicUsize,
    pub max_depth: AtomicUsize,
    pub submitted: AtomicU64,
    pub executed: AtomicU64,
    pub coalesced: AtomicU64,
    pub result_served: AtomicU64,
    pub deadline_misses: AtomicU64,
    pub degraded: AtomicU64,
    pub failed: AtomicU64,
    pub worker_restarts: AtomicU64,
    /// `f64::to_bits` of the largest residual reported so far. Residuals
    /// are finite and non-negative, so the bit patterns order like the
    /// numbers and a plain `fetch_max` keeps the running maximum.
    pub max_residual_bits: AtomicU64,
    pub batches: AtomicU64,
    pub max_batch: AtomicUsize,
    pub cache: Arc<ProximityCache>,
    /// Present when the service memoizes results.
    pub results: Option<Arc<ResultCache>>,
    /// Present when the service is planner-backed.
    pub plans: Option<Arc<PlanCounters>>,
    /// Per-stage latency histograms (queue wait, σ materialization,
    /// scoring, end-to-end) — lock-free, recorded by the worker loop.
    pub latency: StageLatencies,
}

impl ShardState {
    pub fn new(
        cache: Arc<ProximityCache>,
        results: Option<Arc<ResultCache>>,
        plans: Option<Arc<PlanCounters>>,
    ) -> Self {
        ShardState {
            depth: AtomicUsize::new(0),
            max_depth: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            result_served: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            max_residual_bits: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicUsize::new(0),
            cache,
            results,
            plans,
            latency: StageLatencies::new(),
        }
    }

    /// Records one degraded completion's residual certificate.
    pub fn record_degraded(&self, residual: f64) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
        self.max_residual_bits
            .fetch_max(residual.to_bits(), Ordering::Relaxed);
    }

    pub fn snapshot(&self, shard: usize) -> ShardStats {
        ShardStats {
            shard,
            queue_depth: self.depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_depth.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            result_served: self.result_served.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            max_residual: f64::from_bits(self.max_residual_bits.load(Ordering::Relaxed)),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            results: self.results.as_ref().map(|r| r.stats()).unwrap_or_default(),
            plans: self
                .plans
                .as_ref()
                .map(|p| p.snapshot())
                .unwrap_or_default(),
            latency: self.latency.snapshot(),
        }
    }
}

/// A snapshot of one shard's counters. No longer `Copy`: the latency
/// snapshot carries histogram buckets — clone explicitly where needed.
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    pub shard: usize,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Deepest the queue has ever been.
    pub max_queue_depth: usize,
    /// Requests routed to this shard.
    pub submitted: u64,
    /// Queries actually executed (after coalescing, memoization and
    /// shedding).
    pub executed: u64,
    /// Requests answered by another identical request's execution.
    pub coalesced: u64,
    /// Requests answered out of the result-memoization cache (no
    /// execution, no coalescing). Always 0 when the cache is disabled.
    pub result_served: u64,
    /// Requests shed because their deadline passed while queued.
    pub deadline_misses: u64,
    /// Requests served under non-exact σ bounds (their own, or tightened
    /// by the overload controller).
    pub degraded: u64,
    /// Requests answered [`crate::Outcome::Failed`] — a contained worker
    /// panic (injected or real) lost the in-flight execution.
    pub failed: u64,
    /// Times this shard's engine was rebuilt after a contained panic.
    pub worker_restarts: u64,
    /// Largest score-space residual certificate reported by any degraded
    /// reply (0.0 when nothing degraded).
    pub max_residual: f64,
    /// Dispatch cycles run.
    pub batches: u64,
    /// Largest batch drained in one dispatch cycle.
    pub max_batch: usize,
    /// The shard-private proximity cache's counters.
    pub cache: CacheStats,
    /// The shard-private result-memoization cache's counters (all zero
    /// when disabled).
    pub results: CacheStats,
    /// Planner decisions on this shard (all zero for fixed-factory
    /// services, which never plan).
    pub plans: PlanHistogram,
    /// Per-stage latency histograms. Queue wait and end-to-end count
    /// *requests* (every dispatched / every answered one); σ and scoring
    /// count *executions* — coalesced and memo-served requests ride an
    /// execution they did not pay for.
    pub latency: StageSnapshot,
}

/// A snapshot of every shard, plus aggregates.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    pub shards: Vec<ShardStats>,
}

impl ServiceStats {
    /// Sums every shard (the `shard` field of the total is the shard
    /// count; depth fields take the max across shards).
    pub fn totals(&self) -> ShardStats {
        let mut t = ShardStats {
            shard: self.shards.len(),
            ..ShardStats::default()
        };
        for s in &self.shards {
            t.queue_depth += s.queue_depth;
            t.max_queue_depth = t.max_queue_depth.max(s.max_queue_depth);
            t.submitted += s.submitted;
            t.executed += s.executed;
            t.coalesced += s.coalesced;
            t.result_served += s.result_served;
            t.deadline_misses += s.deadline_misses;
            t.degraded += s.degraded;
            t.failed += s.failed;
            t.worker_restarts += s.worker_restarts;
            t.max_residual = t.max_residual.max(s.max_residual);
            t.batches += s.batches;
            t.max_batch = t.max_batch.max(s.max_batch);
            t.cache.merge(&s.cache);
            t.results.merge(&s.results);
            t.plans.merge(&s.plans);
            // Shards iterate in index order, so the merged histograms are
            // deterministic run-to-run for a fixed set of samples.
            t.latency.merge(&s.latency);
        }
        t
    }
}
