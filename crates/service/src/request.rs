//! Request/response types of the broker's wire surface.

use crossbeam::channel;
use friends_core::corpus::SearchResult;
use friends_core::plan::QueryRequest;
use friends_core::processors::ScoringStrategy;
use friends_core::proximity::{ProximityModel, SigmaBounds};
use friends_core::trace::QueryTrace;
use friends_data::queries::Query;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use friends_core::plan::Deadline;

/// A service request: the query plus serving metadata. Build one with
/// [`Request::new`] and the `with_*` setters, or convert a
/// [`QueryRequest`] (the unified client API's request type) via `From`.
#[derive(Clone, Debug)]
pub struct Request {
    pub query: Query,
    /// Per-request scoring-strategy hint, forwarded to the processor via
    /// [`friends_core::processors::Processor::set_strategy`]. Every
    /// strategy returns byte-identical rankings, so the hint is purely a
    /// cost decision. Defaults to `Auto`.
    pub strategy: ScoringStrategy,
    /// See [`Deadline`]; defaults to the service's configured budget.
    pub deadline: Deadline,
    /// Proximity model for planner-backed services
    /// ([`crate::FriendsService::start_planned`]); `None` means the
    /// planner's default ([`ProximityModel::Global`]). Fixed-factory
    /// services ignore it (their processor's model is set at start).
    pub model: Option<ProximityModel>,
    /// Expert override for planner-backed services: force a registry entry
    /// by name. Fixed-factory services ignore it.
    pub processor: Option<&'static str>,
    /// Approximation bounds on σ materialization — [`SigmaBounds::EXACT`]
    /// (the default) is lossless. Under overload the broker may tighten
    /// these further (never loosen); the reply reports the effective
    /// degradation in [`Reply::degraded`] / [`Reply::residual`].
    pub bounds: SigmaBounds,
    /// Caller correlation tag, echoed in the [`Reply`].
    pub tag: u64,
    /// Force-sample this request's trace: the reply carries a full
    /// [`QueryTrace`] and the trace lands in the shard's slow-query log
    /// regardless of latency or head sampling.
    pub trace: bool,
}

impl Request {
    /// A request with the default strategy (`Auto`) and the service's
    /// default deadline.
    pub fn new(query: Query) -> Self {
        Request {
            query,
            strategy: ScoringStrategy::default(),
            deadline: Deadline::Default,
            model: None,
            processor: None,
            bounds: SigmaBounds::EXACT,
            tag: 0,
            trace: false,
        }
    }

    /// Sets the scoring-strategy hint.
    pub fn with_strategy(mut self, strategy: ScoringStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets an explicit deadline budget (overriding the service default).
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Deadline::Budget(budget);
        self
    }

    /// Opts out of deadlines entirely: the request is never shed.
    pub fn without_deadline(mut self) -> Self {
        self.deadline = Deadline::Unbounded;
        self
    }

    /// Sets the proximity model (planner-backed services only).
    pub fn with_model(mut self, model: ProximityModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Sets approximation bounds (see [`Request::bounds`]).
    pub fn with_bounds(mut self, bounds: SigmaBounds) -> Self {
        self.bounds = bounds;
        self
    }

    /// Sets the caller correlation tag.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Force-samples this request's trace (see [`Request::trace`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

impl From<QueryRequest> for Request {
    fn from(r: QueryRequest) -> Self {
        Request {
            query: r.query,
            strategy: r.strategy,
            deadline: r.deadline,
            model: Some(r.model),
            processor: r.processor,
            bounds: r.bounds,
            tag: r.tag,
            trace: r.trace,
        }
    }
}

/// How a request ended.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Executed (or coalesced onto an identical in-flight execution, or
    /// served from the result-memoization cache).
    Done(SearchResult),
    /// Expired without execution: shed in the queue, or — through
    /// [`Ticket::wait_deadline`] / the multiplexer — still unanswered when
    /// the deadline passed.
    DeadlineMissed,
    /// The owning worker disappeared mid-request (a processor panic); the
    /// broker never silently drops a ticket.
    Failed,
}

impl Outcome {
    /// The result, if the request completed.
    pub fn result(&self) -> Option<&SearchResult> {
        match self {
            Outcome::Done(r) => Some(r),
            _ => None,
        }
    }

    /// Unwraps the result, panicking on a miss or failure — for clients
    /// (like the batch shim) that run without deadlines.
    pub fn expect_done(self, context: &str) -> SearchResult {
        match self {
            Outcome::Done(r) => r,
            Outcome::DeadlineMissed => panic!("{context}: deadline missed"),
            Outcome::Failed => panic!("{context}: worker failed"),
        }
    }
}

/// The reply delivered for one request.
#[derive(Clone, Debug)]
pub struct Reply {
    pub outcome: Outcome,
    /// Shard (or direct-client worker) that served the request.
    pub shard: usize,
    /// Time from submission to the start of its dispatch cycle.
    pub queue_wait: Duration,
    /// Whether this reply was satisfied by another identical in-flight
    /// request's execution.
    pub coalesced: bool,
    /// Whether this reply came out of the broker's result-memoization
    /// cache (its `stats` are then empty — no work was performed).
    pub result_cached: bool,
    /// Whether the request executed under non-exact σ bounds — either its
    /// own or bounds tightened by the broker's overload controller. A
    /// degraded reply's scores are **lower bounds** on the exact scores.
    pub degraded: bool,
    /// Score-space error certificate: every returned (and every omitted)
    /// item's exact score exceeds its reported score by at most this much.
    /// Always `0.0` for non-degraded replies.
    pub residual: f64,
    /// The request's correlation tag, echoed verbatim.
    pub tag: u64,
    /// The request's trace, present when it was retained (forced via
    /// `with_trace()`, head-sampled, slow, or deadline-missed). The same
    /// `Arc` sits in the shard's trace rings.
    pub trace: Option<Arc<QueryTrace>>,
}

impl Reply {
    /// The retained trace's id, if the request was traced.
    pub fn trace_id(&self) -> Option<u64> {
        self.trace.as_ref().map(|t| t.id)
    }

    /// Renders the retained trace as an annotated text tree (the
    /// `EXPLAIN` output); `None` when the request was not traced.
    pub fn explain(&self) -> Option<String> {
        self.trace.as_ref().map(|t| t.render())
    }
}

/// A claim on one submitted request's reply. Non-blocking by default:
/// [`Ticket::poll`] / [`Ticket::try_take`] never wait, and a
/// [`crate::Multiplexer`] can drive many tickets from one loop;
/// [`Ticket::wait`] and the deadline-respecting [`Ticket::wait_deadline`]
/// block.
pub struct Ticket {
    pub(crate) shard: usize,
    pub(crate) rx: channel::Receiver<Reply>,
    pub(crate) deadline: Option<Instant>,
    pub(crate) tag: u64,
    pub(crate) stash: Option<Reply>,
}

impl Ticket {
    /// Whether the reply has arrived (buffering it for
    /// [`Ticket::try_take`]). Never blocks. A dead worker counts as
    /// arrived (the buffered reply is [`Outcome::Failed`]).
    pub fn poll(&mut self) -> bool {
        if self.stash.is_some() {
            return true;
        }
        match self.rx.try_recv() {
            Ok(reply) => {
                self.stash = Some(reply);
                true
            }
            Err(channel::TryRecvError::Empty) => false,
            Err(channel::TryRecvError::Disconnected) => {
                self.stash = Some(self.failed());
                true
            }
        }
    }

    /// Takes the reply if it has arrived; never blocks.
    pub fn try_take(&mut self) -> Option<Reply> {
        if self.poll() {
            self.stash.take()
        } else {
            None
        }
    }

    /// Blocks until the reply arrives, however long that takes — even past
    /// the request's deadline (use [`Ticket::wait_deadline`] to respect
    /// it). A worker that died without replying yields [`Outcome::Failed`]
    /// instead of hanging.
    pub fn wait(mut self) -> Reply {
        if let Some(reply) = self.stash.take() {
            return reply;
        }
        match self.rx.recv() {
            Ok(reply) => reply,
            Err(channel::RecvError) => self.failed(),
        }
    }

    /// Blocks until the reply arrives **or the request's deadline
    /// passes**, whichever is first. The broker sheds requests that expire
    /// while *queued*, but one that starts executing before its deadline
    /// is answered late — this is the client-side half of the deadline
    /// contract, returning [`Outcome::DeadlineMissed`] at the deadline
    /// instead of blocking behind the in-flight execution. Deadline-free
    /// tickets behave like [`Ticket::wait`].
    pub fn wait_deadline(mut self) -> Reply {
        if let Some(reply) = self.stash.take() {
            return reply;
        }
        let Some(deadline) = self.deadline else {
            return self.wait();
        };
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Reply {
                    outcome: Outcome::DeadlineMissed,
                    shard: self.shard,
                    queue_wait: Duration::ZERO,
                    coalesced: false,
                    result_cached: false,
                    degraded: false,
                    residual: 0.0,
                    tag: self.tag,
                    trace: None,
                };
            }
            match self.rx.recv_timeout(deadline - now) {
                Ok(reply) => return reply,
                Err(channel::RecvTimeoutError::Timeout) => continue,
                Err(channel::RecvTimeoutError::Disconnected) => return self.failed(),
            }
        }
    }

    /// The shard this request was routed to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The request's correlation tag.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// The request's resolved expiry instant, if it has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    fn failed(&self) -> Reply {
        Reply {
            outcome: Outcome::Failed,
            shard: self.shard,
            queue_wait: Duration::ZERO,
            coalesced: false,
            result_cached: false,
            degraded: false,
            residual: 0.0,
            tag: self.tag,
            trace: None,
        }
    }
}

/// Internal queue entry: one request plus its reply channel and timing.
pub(crate) struct Job {
    pub query: Query,
    pub strategy: ScoringStrategy,
    pub model: Option<ProximityModel>,
    pub processor: Option<&'static str>,
    pub bounds: SigmaBounds,
    pub deadline: Option<Instant>,
    pub submitted: Instant,
    pub reply: channel::Sender<Reply>,
    pub tag: u64,
    /// Force-sample the trace (from [`Request::trace`]).
    pub trace: bool,
}
