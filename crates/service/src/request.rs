//! Request/response types of the broker's wire surface.

use crossbeam::channel;
use friends_core::corpus::SearchResult;
use friends_core::processors::ScoringStrategy;
use friends_data::queries::Query;
use std::time::{Duration, Instant};

/// When a request must be served by. A request still queued past its
/// deadline is shed without execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Deadline {
    /// Use the service's configured default budget.
    #[default]
    Default,
    /// No deadline — never shed. What batch clients use: a flood's tail
    /// legitimately waits behind the whole batch.
    Unbounded,
    /// Explicit budget, measured from submission.
    Budget(Duration),
}

/// A service request: the query plus serving metadata. Build one with
/// [`Request::new`] and the `with_*` setters.
#[derive(Clone, Debug)]
pub struct Request {
    pub query: Query,
    /// Per-request scoring-strategy hint, forwarded to the processor via
    /// [`friends_core::processors::Processor::set_strategy`]. Every
    /// strategy returns byte-identical rankings, so the hint is purely a
    /// cost decision. Defaults to `Auto`.
    pub strategy: ScoringStrategy,
    /// See [`Deadline`]; defaults to the service's configured budget.
    pub deadline: Deadline,
}

impl Request {
    /// A request with the default strategy (`Auto`) and the service's
    /// default deadline.
    pub fn new(query: Query) -> Self {
        Request {
            query,
            strategy: ScoringStrategy::default(),
            deadline: Deadline::Default,
        }
    }

    /// Sets the scoring-strategy hint.
    pub fn with_strategy(mut self, strategy: ScoringStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets an explicit deadline budget (overriding the service default).
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Deadline::Budget(budget);
        self
    }

    /// Opts out of deadlines entirely: the request is never shed.
    pub fn without_deadline(mut self) -> Self {
        self.deadline = Deadline::Unbounded;
        self
    }
}

/// How a request ended.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Executed (or coalesced onto an identical in-flight execution).
    Done(SearchResult),
    /// Expired in the queue and was shed without execution.
    DeadlineMissed,
    /// The owning worker disappeared mid-request (a processor panic); the
    /// broker never silently drops a ticket.
    Failed,
}

impl Outcome {
    /// The result, if the request completed.
    pub fn result(&self) -> Option<&SearchResult> {
        match self {
            Outcome::Done(r) => Some(r),
            _ => None,
        }
    }

    /// Unwraps the result, panicking on a miss or failure — for clients
    /// (like the batch shim) that run without deadlines.
    pub fn expect_done(self, context: &str) -> SearchResult {
        match self {
            Outcome::Done(r) => r,
            Outcome::DeadlineMissed => panic!("{context}: deadline missed"),
            Outcome::Failed => panic!("{context}: worker failed"),
        }
    }
}

/// The reply delivered for one request.
#[derive(Clone, Debug)]
pub struct Reply {
    pub outcome: Outcome,
    /// Shard that served (or shed) the request.
    pub shard: usize,
    /// Time from submission to the start of its dispatch cycle.
    pub queue_wait: Duration,
    /// Whether this reply was satisfied by another identical in-flight
    /// request's execution.
    pub coalesced: bool,
}

/// A claim on one submitted request's reply.
pub struct Ticket {
    pub(crate) shard: usize,
    pub(crate) rx: channel::Receiver<Reply>,
}

impl Ticket {
    /// Blocks until the reply arrives. A worker that died without replying
    /// yields [`Outcome::Failed`] instead of hanging.
    pub fn wait(self) -> Reply {
        match self.rx.recv() {
            Ok(reply) => reply,
            Err(channel::RecvError) => Reply {
                outcome: Outcome::Failed,
                shard: self.shard,
                queue_wait: Duration::ZERO,
                coalesced: false,
            },
        }
    }

    /// The shard this request was routed to.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// Internal queue entry: one request plus its reply channel and timing.
pub(crate) struct Job {
    pub query: Query,
    pub strategy: ScoringStrategy,
    pub deadline: Option<Instant>,
    pub submitted: Instant,
    pub reply: channel::Sender<Reply>,
}
