//! The unified client API: one planner-backed query surface over direct
//! and served execution.
//!
//! Callers build a [`QueryRequest`] (seeker, tags, k, proximity model,
//! strategy hint, deadline, tag) and hand it to any [`SearchClient`]:
//!
//! * [`DirectClient`] — in-process execution on a standing worker pool
//!   with one **shared** sharded proximity cache, the successor of
//!   `par_batch` / `par_batch_with_cache`. No affinity, no coalescing:
//!   the lightest way to run personalized queries concurrently.
//! * [`ServedClient`] — a planner-backed [`FriendsService`]: seeker
//!   affinity, batched dispatch, duplicate coalescing, shard-private
//!   caches, optional result memoization. The serving tier behind the same
//!   trait.
//!
//! Both return non-blocking [`Ticket`]s; a [`crate::Multiplexer`] drives
//! many in-flight tickets from one loop. Behind the trait, the
//! [`Planner`] maps every request to a
//! [`ProcessorRegistry`] entry plus a scoring strategy — callers never
//! name a processor type, and every plan returns byte-identical rankings
//! (pinned by `tests/proptest_client.rs`).

use crate::broker::{FriendsService, ServiceConfig};
use crate::request::{Job, Outcome, Reply, Request, Ticket};
use crate::stats::ServiceStats;
use crossbeam::channel;
use friends_core::cache::{CachePolicy, CacheStats, ProximityCache};
use friends_core::corpus::{Corpus, SearchResult};
use friends_core::latency::{Stage, StageLatencies, StageSnapshot};
use friends_core::metrics::MetricsRegistry;
use friends_core::plan::{
    strategy_index, PlanCounters, PlanHistogram, PlannedExecutor, Planner, ProcessorRegistry,
    QueryRequest, STRATEGY_LABELS,
};
use friends_core::proximity::ProximityModel;
use friends_core::trace::{QueryTrace, TraceCollector, TraceConfig, TraceOutcome, TraceRecord};
use friends_data::mutations::MutationBatch;
use friends_data::queries::Query;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The one query surface of the system. Implementations differ in *where
/// and how* a request executes (in-process pool vs serving tier), never in
/// its answer: for the same corpus and request, every client returns
/// byte-identical rankings.
pub trait SearchClient {
    /// Enqueues one request, returning a non-blocking [`Ticket`].
    fn submit(&self, request: QueryRequest) -> Ticket;

    /// Submits and waits, respecting the request's deadline
    /// ([`Ticket::wait_deadline`]).
    fn run(&self, request: QueryRequest) -> Reply {
        self.submit(request).wait_deadline()
    }

    /// Floods every request in, then collects replies in input order,
    /// respecting each request's deadline.
    fn run_batch(&self, requests: Vec<QueryRequest>) -> Vec<Reply> {
        let tickets: Vec<Ticket> = requests.into_iter().map(|r| self.submit(r)).collect();
        tickets.into_iter().map(Ticket::wait_deadline).collect()
    }

    /// Batch convenience for deadline-free workloads: runs every query
    /// under `model` and unwraps the results, in input order — the
    /// drop-in replacement for the deprecated `par_batch*` entry points.
    ///
    /// # Panics
    /// Panics if a worker died mid-batch (requests are submitted without
    /// deadlines, so they are never shed).
    fn search(&self, queries: &[Query], model: ProximityModel) -> Vec<SearchResult> {
        let tickets: Vec<Ticket> = queries
            .iter()
            .map(|q| {
                self.submit(
                    QueryRequest::from_query(q.clone())
                        .with_model(model)
                        .without_deadline(),
                )
            })
            .collect();
        tickets
            .into_iter()
            .map(|t| t.wait().outcome.expect_done("search"))
            .collect()
    }

    /// Per-stage latency histograms (queue wait, σ materialization,
    /// scoring, end-to-end) accumulated so far. Implementations without
    /// recording return an empty snapshot.
    fn latencies(&self) -> StageSnapshot {
        StageSnapshot::default()
    }

    /// Drains head-sampled traces accumulated so far (destructive: each
    /// trace is returned once). Implementations without tracing return
    /// nothing.
    fn traces(&self) -> Vec<Arc<QueryTrace>> {
        Vec::new()
    }

    /// Drains the slow-query log — forced (`with_trace()`), slow and
    /// deadline-missed traces, each with its full span tree.
    fn slow_queries(&self) -> Vec<Arc<QueryTrace>> {
        Vec::new()
    }

    /// The client's counters as a unified [`MetricsRegistry`] snapshot
    /// (the `friends_*` naming convention). Implementations without
    /// recording return an empty registry.
    fn metrics(&self) -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

/// [`DirectClient`] tuning.
#[derive(Clone, Copy, Debug)]
pub struct DirectConfig {
    /// Worker threads (0 → one per hardware thread). Workers compete for
    /// jobs on one queue — no affinity, work goes wherever a thread is
    /// idle.
    pub threads: usize,
    /// Job queue bound; 0 means unbounded.
    pub queue_capacity: usize,
    /// Capacity of the **shared** sharded proximity cache; 0 runs
    /// cache-less (every query materializes σ into its worker's scratch).
    pub cache_capacity: usize,
    /// Byte budget of the shared cache across all its shards
    /// (`usize::MAX` disables; both limits are enforced when set).
    pub cache_bytes: usize,
    /// Policy of the shared cache.
    pub cache_policy: CachePolicy,
    /// Deadline budget for requests that don't carry their own; `None`
    /// disables shedding for them.
    pub default_deadline: Option<Duration>,
    /// The planner mapping requests to registry entries.
    pub planner: Planner,
    /// Trace retention (shared across the pool): head-sampling rate, ring
    /// capacities and the slow-query threshold.
    pub trace: TraceConfig,
}

impl Default for DirectConfig {
    fn default() -> Self {
        DirectConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_capacity: 0,
            // Byte budget is the primary limit; the entry cap is a disabled
            // fallback (0 still runs cache-less).
            cache_capacity: usize::MAX,
            cache_bytes: 64 << 20,
            cache_policy: CachePolicy {
                admission: true,
                ttl: None,
            },
            default_deadline: Some(Duration::from_secs(5)),
            planner: Planner::default(),
            trace: TraceConfig::default(),
        }
    }
}

impl DirectConfig {
    /// A config whose shared-cache byte budget is sized from the corpus
    /// (~512 bytes of σ cache per user, clamped to `[1 MiB, 256 MiB]`).
    pub fn sized_for(corpus: &Corpus) -> Self {
        let users = corpus.graph.num_nodes();
        let budget = (users.saturating_mul(512)).clamp(1 << 20, 256 << 20);
        DirectConfig {
            cache_bytes: budget,
            ..DirectConfig::default()
        }
    }
}

/// Aggregate counters of a [`DirectClient`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests executed (everything not shed).
    pub executed: u64,
    /// Requests shed because their deadline passed while queued.
    pub deadline_misses: u64,
    /// Requests answered [`Outcome::Failed`] — a contained executor panic
    /// lost the in-flight request.
    pub failed: u64,
    /// Times a worker's executor was rebuilt after a contained panic.
    pub worker_restarts: u64,
    /// Traces lost on contended trace-ring slots.
    pub traces_dropped: u64,
    /// The shared proximity cache's counters (all zero when cache-less).
    pub cache: CacheStats,
    /// Planner decisions across all workers.
    pub plans: PlanHistogram,
}

impl ClientStats {
    /// Registers every counter under the unified naming convention
    /// (`friends_client_*` for the pool counters; caches and planner
    /// decisions share the service's `friends_proximity_cache_*` /
    /// `friends_plan_*` names).
    pub fn register_into(&self, registry: &mut MetricsRegistry) {
        registry.counter(
            "friends_client_submitted_total",
            "requests submitted to the pool",
            self.submitted,
        );
        registry.counter(
            "friends_client_executed_total",
            "requests executed",
            self.executed,
        );
        registry.counter(
            "friends_client_deadline_misses_total",
            "requests shed past their deadline",
            self.deadline_misses,
        );
        registry.counter(
            "friends_client_failed_total",
            "requests answered Failed after a contained panic",
            self.failed,
        );
        registry.counter(
            "friends_client_worker_restarts_total",
            "executor rebuilds after contained panics",
            self.worker_restarts,
        );
        registry.counter(
            "friends_client_traces_dropped_total",
            "traces lost on contended trace-ring slots",
            self.traces_dropped,
        );
        self.cache.register_into(registry, "proximity_cache");
        self.plans.register_into(registry);
    }
}

/// In-process [`SearchClient`]: a standing pool of planner-backed workers
/// over one shared proximity cache. Subsumes the deprecated
/// `par_batch` / `par_batch_with_cache` entry points — same executors, same
/// shared-cache semantics, but non-blocking submission, per-request models
/// and deadlines, and no per-batch thread spawning.
pub struct DirectClient {
    sender: Option<channel::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    cache: Option<Arc<ProximityCache>>,
    plans: Arc<PlanCounters>,
    submitted: Arc<AtomicU64>,
    executed: Arc<AtomicU64>,
    deadline_misses: Arc<AtomicU64>,
    failed: Arc<AtomicU64>,
    worker_restarts: Arc<AtomicU64>,
    latency: Arc<StageLatencies>,
    traces: Arc<TraceCollector>,
    default_deadline: Option<Duration>,
}

impl DirectClient {
    /// Starts a pool with the standard registry.
    pub fn start(corpus: Arc<Corpus>, config: DirectConfig) -> Self {
        Self::with_registry(corpus, config, Arc::new(ProcessorRegistry::standard()))
    }

    /// Starts a pool over a custom registry.
    pub fn with_registry(
        corpus: Arc<Corpus>,
        config: DirectConfig,
        registry: Arc<ProcessorRegistry>,
    ) -> Self {
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.threads
        };
        let (tx, rx) = if config.queue_capacity == 0 {
            channel::unbounded()
        } else {
            channel::bounded(config.queue_capacity)
        };
        let cache = (config.cache_capacity > 0).then(|| {
            Arc::new(ProximityCache::with_limits(
                config.cache_capacity,
                config.cache_bytes,
                threads.clamp(1, 16),
                config.cache_policy,
            ))
        });
        let plans = Arc::new(PlanCounters::default());
        let executed = Arc::new(AtomicU64::new(0));
        let deadline_misses = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));
        let worker_restarts = Arc::new(AtomicU64::new(0));
        let latency = Arc::new(StageLatencies::new());
        // One pool-wide collector (the workers compete on one queue, so
        // there is no per-shard affinity to preserve in the trace ids).
        let traces = Arc::new(TraceCollector::new(0, config.trace));
        let mut workers = Vec::with_capacity(threads);
        for worker in 0..threads {
            let corpus = Arc::clone(&corpus);
            let registry = Arc::clone(&registry);
            let cache = cache.clone();
            let plans = Arc::clone(&plans);
            let executed = Arc::clone(&executed);
            let deadline_misses = Arc::clone(&deadline_misses);
            let failed = Arc::clone(&failed);
            let worker_restarts = Arc::clone(&worker_restarts);
            let latency = Arc::clone(&latency);
            let traces = Arc::clone(&traces);
            let rx = rx.clone();
            let planner = config.planner;
            let handle = std::thread::Builder::new()
                .name(format!("friends-direct-{worker}"))
                .spawn(move || {
                    // Rebuilt after a contained panic (shared cache and
                    // counters survive; only the executor's scratch does
                    // not).
                    let rebuild = || {
                        PlannedExecutor::new(
                            corpus.as_ref(),
                            cache.clone(),
                            Arc::clone(&registry),
                            planner,
                            Arc::clone(&plans),
                        )
                    };
                    direct_worker_loop(
                        &rebuild,
                        &rx,
                        &executed,
                        &deadline_misses,
                        &failed,
                        &worker_restarts,
                        &latency,
                        &traces,
                        worker,
                    );
                })
                .expect("spawn direct-client worker");
            workers.push(handle);
        }
        DirectClient {
            sender: Some(tx),
            workers,
            cache,
            plans,
            submitted: Arc::new(AtomicU64::new(0)),
            executed,
            deadline_misses,
            failed,
            worker_restarts,
            latency,
            traces,
            default_deadline: config.default_deadline,
        }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.workers.len()
    }

    /// A live snapshot of the pool's counters.
    pub fn stats(&self) -> ClientStats {
        ClientStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            traces_dropped: self.traces.dropped(),
            cache: self.cache.as_ref().map(|c| c.stats()).unwrap_or_default(),
            plans: self.plans.snapshot(),
        }
    }

    /// Drain-based shutdown: closes the queue, lets workers finish what is
    /// already enqueued, joins them, and returns the final stats.
    pub fn shutdown(mut self) -> ClientStats {
        self.sender = None; // disconnects; workers drain then exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats()
    }
}

impl Drop for DirectClient {
    fn drop(&mut self) {
        self.sender = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl SearchClient for DirectClient {
    fn submit(&self, request: QueryRequest) -> Ticket {
        let (tx, rx) = channel::bounded(1);
        let now = Instant::now();
        let deadline = request.deadline.resolve(now, self.default_deadline);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            query: request.query,
            strategy: request.strategy,
            model: Some(request.model),
            processor: request.processor,
            bounds: request.bounds,
            deadline,
            submitted: now,
            reply: tx.clone(),
            tag: request.tag,
            trace: request.trace,
        };
        let dead = match &self.sender {
            Some(sender) => sender.send(job).is_err(),
            None => true,
        };
        if dead {
            self.failed.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(Reply {
                outcome: Outcome::Failed,
                shard: 0,
                queue_wait: Duration::ZERO,
                coalesced: false,
                result_cached: false,
                degraded: false,
                residual: 0.0,
                tag: request.tag,
                trace: None,
            });
        }
        Ticket {
            shard: 0,
            rx,
            deadline,
            tag: request.tag,
            stash: None,
        }
    }

    fn latencies(&self) -> StageSnapshot {
        self.latency.snapshot()
    }

    fn traces(&self) -> Vec<Arc<QueryTrace>> {
        self.traces.drain_sampled()
    }

    fn slow_queries(&self) -> Vec<Arc<QueryTrace>> {
        self.traces.drain_retained()
    }

    fn metrics(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        self.stats().register_into(&mut registry);
        self.latency.snapshot().register_into(&mut registry);
        registry
    }
}

/// The direct pool's cold-path trace guard: build and retain the trace
/// only when the collector wants one (see `broker::maybe_trace` for the
/// serving-tier twin).
fn direct_trace(
    traces: &TraceCollector,
    worker: usize,
    job: &Job,
    sampled: bool,
    outcome: TraceOutcome,
    queue_wait: Duration,
    fill: impl FnOnce(&mut TraceRecord),
) -> Option<Arc<QueryTrace>> {
    let e2e = job.submitted.elapsed();
    let missed = outcome == TraceOutcome::DeadlineMissed;
    if !traces.wants(job.trace, sampled, e2e, missed) {
        return None;
    }
    let mut rec = TraceRecord::new(worker, &job.query, job.tag, job.trace);
    rec.sampled = sampled;
    rec.outcome = outcome;
    rec.e2e = e2e;
    rec.queue_wait = queue_wait;
    fill(&mut rec);
    Some(traces.retain(rec))
}

#[allow(clippy::too_many_arguments)]
fn direct_worker_loop<'c, R>(
    rebuild: &R,
    rx: &channel::Receiver<Job>,
    executed: &AtomicU64,
    deadline_misses: &AtomicU64,
    failed: &AtomicU64,
    worker_restarts: &AtomicU64,
    latency: &StageLatencies,
    traces: &TraceCollector,
    worker: usize,
) where
    R: Fn() -> PlannedExecutor<'c>,
{
    let mut executor = rebuild();
    loop {
        let job = match rx.recv() {
            Ok(job) => job,
            Err(channel::RecvError) => return, // queue fully drained
        };
        // The head-sampling decision — tracing's only hot-path cost.
        let sampled = traces.should_sample();
        let started = Instant::now();
        latency.record(Stage::QueueWait, started - job.submitted);
        if job.deadline.is_some_and(|d| started > d) {
            deadline_misses.fetch_add(1, Ordering::Relaxed);
            let trace = direct_trace(
                traces,
                worker,
                &job,
                sampled,
                TraceOutcome::DeadlineMissed,
                started - job.submitted,
                |rec| rec.shed = true,
            );
            let _ = job.reply.send(Reply {
                outcome: Outcome::DeadlineMissed,
                shard: worker,
                queue_wait: started - job.submitted,
                coalesced: false,
                result_cached: false,
                degraded: false,
                residual: 0.0,
                tag: job.tag,
                trace,
            });
            continue;
        }
        let model = job.model.unwrap_or(ProximityModel::Global);
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
            executor.execute(&job.query, model, job.strategy, job.processor, job.bounds)
        }));
        let result = match run {
            Ok(result) => result,
            Err(_) => {
                // Contained panic: fail only the in-flight request, rebuild
                // the executor, keep draining the queue.
                worker_restarts.fetch_add(1, Ordering::Relaxed);
                executor = rebuild();
                failed.fetch_add(1, Ordering::Relaxed);
                let trace = direct_trace(
                    traces,
                    worker,
                    &job,
                    sampled,
                    TraceOutcome::Failed,
                    started - job.submitted,
                    |_| {},
                );
                let _ = job.reply.send(Reply {
                    outcome: Outcome::Failed,
                    shard: worker,
                    queue_wait: started - job.submitted,
                    coalesced: false,
                    result_cached: false,
                    degraded: false,
                    residual: 0.0,
                    tag: job.tag,
                    trace,
                });
                continue;
            }
        };
        executed.fetch_add(1, Ordering::Relaxed);
        latency.record_ns(Stage::Sigma, result.stats.sigma_ns);
        latency.record_ns(Stage::Scoring, result.stats.scoring_ns);
        latency.record(Stage::EndToEnd, job.submitted.elapsed());
        let degraded = !job.bounds.is_exact();
        let residual = result.residual;
        let trace = direct_trace(
            traces,
            worker,
            &job,
            sampled,
            TraceOutcome::Done {
                items: result.items.len(),
            },
            started - job.submitted,
            |rec| {
                rec.fill_execution(&result.stats);
                let plan =
                    executor.plan(&job.query, model, job.strategy, job.processor, job.bounds);
                rec.plan = Some((
                    plan.processor_name,
                    STRATEGY_LABELS[strategy_index(plan.strategy)],
                ));
                if degraded {
                    rec.degraded = Some((job.bounds.max_radius, job.bounds.min_mass));
                    rec.residual = residual;
                }
            },
        );
        let _ = job.reply.send(Reply {
            outcome: Outcome::Done(result),
            shard: worker,
            queue_wait: started - job.submitted,
            coalesced: false,
            result_cached: false,
            degraded,
            residual,
            tag: job.tag,
            trace,
        });
    }
}

/// [`SearchClient`] over the serving tier: a planner-backed
/// [`FriendsService`] (seeker affinity, batched dispatch, coalescing,
/// shard-private caches, optional result memoization) behind the same
/// request surface as [`DirectClient`].
pub struct ServedClient {
    service: FriendsService,
}

impl ServedClient {
    /// Starts a planner-backed service with the standard registry.
    pub fn start(corpus: Arc<Corpus>, config: ServiceConfig) -> Self {
        Self::with_registry(
            corpus,
            config,
            Arc::new(ProcessorRegistry::standard()),
            Planner::default(),
        )
    }

    /// Starts a planner-backed service over a custom registry and planner.
    pub fn with_registry(
        corpus: Arc<Corpus>,
        config: ServiceConfig,
        registry: Arc<ProcessorRegistry>,
        planner: Planner,
    ) -> Self {
        ServedClient {
            service: FriendsService::start_planned(corpus, config, registry, planner),
        }
    }

    /// The underlying service, for its broker-level API (shard routing,
    /// raw [`Request`] submission).
    pub fn service(&self) -> &FriendsService {
        &self.service
    }

    /// A live snapshot of every shard's counters.
    pub fn stats(&self) -> ServiceStats {
        self.service.stats()
    }

    /// Invalidates all memoized rankings (see
    /// [`FriendsService::invalidate_results`]).
    pub fn invalidate_results(&self) {
        self.service.invalidate_results();
    }

    /// Applies a live-graph mutation batch across every shard with
    /// incremental cache invalidation — see
    /// [`FriendsService::apply_mutations`].
    pub fn apply_mutations(
        &self,
        batch: &MutationBatch,
        horizon: Option<u32>,
    ) -> crate::MutationReport {
        self.service.apply_mutations(batch, horizon)
    }

    /// [`ServedClient::apply_mutations`] with the durability error
    /// surfaced instead of panicking — see
    /// [`FriendsService::try_apply_mutations`]. On a durable service,
    /// `Ok` means the batch is on the WAL (fsynced per its sync policy)
    /// before any shard acknowledged it.
    pub fn try_apply_mutations(
        &self,
        batch: &MutationBatch,
        horizon: Option<u32>,
    ) -> std::io::Result<crate::MutationReport> {
        self.service.try_apply_mutations(batch, horizon)
    }

    /// The startup recovery report of a durable service — see
    /// [`FriendsService::recovery_report`]. `None` when the service runs
    /// memory-only.
    pub fn recovery_report(&self) -> Option<&friends_core::live::RecoveryReport> {
        self.service.recovery_report()
    }

    /// The service's published corpus epoch (0 = frozen seed).
    pub fn epoch(&self) -> u64 {
        self.service.epoch()
    }

    /// Drain-based shutdown; returns the final stats.
    pub fn shutdown(self) -> ServiceStats {
        self.service.shutdown()
    }
}

impl SearchClient for ServedClient {
    fn submit(&self, request: QueryRequest) -> Ticket {
        self.service.submit(Request::from(request))
    }

    fn latencies(&self) -> StageSnapshot {
        self.service.stats().totals().latency
    }

    fn traces(&self) -> Vec<Arc<QueryTrace>> {
        self.service.traces()
    }

    fn slow_queries(&self) -> Vec<Arc<QueryTrace>> {
        self.service.slow_queries()
    }

    fn metrics(&self) -> MetricsRegistry {
        self.service.stats().registry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use friends_core::plan::GLOBAL_BOUND_TA;
    use friends_core::processors::{ExactOnline, GlobalBoundTA, Processor};
    use friends_data::datasets::{DatasetSpec, Scale};
    use friends_data::queries::{QueryParams, QueryWorkload};

    fn fixture() -> (Arc<Corpus>, QueryWorkload) {
        let ds = DatasetSpec::delicious_like(Scale::Tiny).build(8);
        let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
        let w = QueryWorkload::generate(
            &corpus.graph,
            &corpus.store,
            &QueryParams {
                count: 29,
                ..QueryParams::default()
            },
            4,
        );
        (corpus, w)
    }

    const MODEL: ProximityModel = ProximityModel::WeightedDecay { alpha: 0.5 };

    fn clients(corpus: &Arc<Corpus>) -> (DirectClient, ServedClient) {
        (
            DirectClient::start(
                Arc::clone(corpus),
                DirectConfig {
                    threads: 3,
                    ..DirectConfig::default()
                },
            ),
            ServedClient::start(
                Arc::clone(corpus),
                ServiceConfig {
                    shards: 3,
                    ..ServiceConfig::default()
                },
            ),
        )
    }

    #[test]
    fn both_clients_agree_with_direct_execution() {
        let (corpus, w) = fixture();
        let mut reference = ExactOnline::new(&corpus, MODEL);
        let want: Vec<_> = w.queries.iter().map(|q| reference.query(q).items).collect();
        let (direct, served) = clients(&corpus);
        for (client, name) in [
            (&direct as &dyn SearchClient, "direct"),
            (&served as &dyn SearchClient, "served"),
        ] {
            let got = client.search(&w.queries, MODEL);
            assert_eq!(got.len(), want.len());
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a, &b.items, "{name} diverged");
            }
        }
        let ds = direct.shutdown();
        assert_eq!(ds.submitted, w.len() as u64);
        assert_eq!(ds.executed, w.len() as u64);
        assert!(ds.plans.total() >= w.len() as u64);
        served.shutdown();
    }

    #[test]
    fn per_request_models_do_not_interfere() {
        let (corpus, w) = fixture();
        let (direct, served) = clients(&corpus);
        let models = [
            ProximityModel::Global,
            ProximityModel::FriendsOnly,
            MODEL,
            ProximityModel::AdamicAdar,
        ];
        // Interleave models within one in-flight burst on each client.
        for client in [&direct as &dyn SearchClient, &served as &dyn SearchClient] {
            let tickets: Vec<Ticket> = w
                .queries
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    client.submit(
                        QueryRequest::from_query(q.clone())
                            .with_model(models[i % models.len()])
                            .without_deadline(),
                    )
                })
                .collect();
            for (i, t) in tickets.into_iter().enumerate() {
                let model = models[i % models.len()];
                let mut reference = ExactOnline::new(&corpus, model);
                let want = reference.query(&w.queries[i]).items;
                let got = t.wait().outcome.expect_done("interleaved");
                assert_eq!(want, got.items, "query {i} under {}", model.name());
            }
        }
        direct.shutdown();
        served.shutdown();
    }

    #[test]
    fn processor_override_routes_to_the_named_entry() {
        let (corpus, w) = fixture();
        let (direct, served) = clients(&corpus);
        let mut reference = GlobalBoundTA::new(&corpus, ProximityModel::FriendsOnly);
        for q in w.queries.iter().take(6) {
            let want = reference.query(q).items;
            for client in [&direct as &dyn SearchClient, &served as &dyn SearchClient] {
                let reply = client.run(
                    QueryRequest::from_query(q.clone())
                        .with_model(ProximityModel::FriendsOnly)
                        .with_processor(GLOBAL_BOUND_TA)
                        .without_deadline(),
                );
                assert_eq!(reply.outcome.result().expect("done").items, want);
            }
        }
        let stats = direct.shutdown();
        assert_eq!(stats.plans.processors[1], 6, "{:?}", stats.plans);
        served.shutdown();
    }

    #[test]
    fn direct_client_sheds_expired_requests() {
        let (corpus, w) = fixture();
        let client = DirectClient::start(
            Arc::clone(&corpus),
            DirectConfig {
                threads: 1,
                ..DirectConfig::default()
            },
        );
        // Park the single worker, then submit a zero-budget request.
        let parked: Vec<Ticket> = w
            .queries
            .iter()
            .map(|q| client.submit(QueryRequest::from_query(q.clone()).without_deadline()))
            .collect();
        let doomed = client.submit(
            QueryRequest::new(5, vec![1], 5)
                .with_model(MODEL)
                .with_deadline(Duration::ZERO),
        );
        let reply = doomed.wait_deadline();
        assert!(matches!(reply.outcome, Outcome::DeadlineMissed));
        for t in parked {
            assert!(t.wait().outcome.result().is_some());
        }
        let stats = client.shutdown();
        assert!(stats.deadline_misses <= 1); // shed in queue, or missed at the ticket
        assert_eq!(
            stats.executed + stats.deadline_misses,
            stats.submitted,
            "{stats:?}"
        );
    }

    #[test]
    fn direct_client_shares_its_cache_across_workers() {
        let (corpus, w) = fixture();
        let client = DirectClient::start(
            Arc::clone(&corpus),
            DirectConfig {
                threads: 4,
                ..DirectConfig::default()
            },
        );
        client.search(&w.queries, MODEL);
        client.search(&w.queries, MODEL); // repeat pass: seekers hit
        let stats = client.shutdown();
        assert!(stats.cache.insertions > 0, "{stats:?}");
        assert!(stats.cache.hits > 0, "{stats:?}");
    }

    #[test]
    fn cacheless_direct_client_still_answers_exactly() {
        let (corpus, w) = fixture();
        let client = DirectClient::start(
            Arc::clone(&corpus),
            DirectConfig {
                threads: 2,
                cache_capacity: 0,
                ..DirectConfig::default()
            },
        );
        let mut reference = ExactOnline::new(&corpus, MODEL);
        let got = client.search(&w.queries, MODEL);
        for (q, b) in w.queries.iter().zip(&got) {
            assert_eq!(reference.query(q).items, b.items);
        }
        let stats = client.shutdown();
        assert_eq!(stats.cache, CacheStats::default(), "cache must be unused");
    }

    #[test]
    fn run_batch_preserves_input_order_and_tags() {
        let (corpus, w) = fixture();
        let (direct, _served) = clients(&corpus);
        let requests: Vec<QueryRequest> = w
            .queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                QueryRequest::from_query(q.clone())
                    .with_model(MODEL)
                    .with_tag(i as u64)
                    .without_deadline()
            })
            .collect();
        let replies = direct.run_batch(requests);
        assert_eq!(replies.len(), w.len());
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.tag, i as u64, "input order lost");
            assert!(r.outcome.result().is_some());
        }
        direct.shutdown();
    }
}
