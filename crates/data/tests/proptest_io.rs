//! Failure injection for the binary dataset format: random corruption must
//! never panic, loop, or silently yield a different dataset — it must fail
//! with a structured error or (for byte-identical content) round-trip.

use friends_data::datasets::{DatasetSpec, Scale};
use friends_data::io;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One small serialized dataset, shared across cases.
fn golden() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let ds = DatasetSpec::flickr_like(Scale::Tiny).build(2);
        let path = std::env::temp_dir().join(format!("friends-golden-{}.bin", std::process::id()));
        io::save(&path, &ds.graph, &ds.store).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        bytes
    })
}

fn load_bytes(bytes: &[u8], tag: &str) -> Result<(), String> {
    let path =
        std::env::temp_dir().join(format!("friends-corrupt-{}-{tag}.bin", std::process::id()));
    std::fs::write(&path, bytes).unwrap();
    let r = io::load(&path);
    std::fs::remove_file(&path).ok();
    r.map(|_| ()).map_err(|e| e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating at any point either still parses (only possible for the
    /// full length) or returns a structured error — never a panic.
    #[test]
    fn truncation_never_panics(cut in 0usize..=1usize << 16) {
        let bytes = golden();
        let cut = cut.min(bytes.len());
        let r = load_bytes(&bytes[..cut], "trunc");
        if cut == bytes.len() {
            prop_assert!(r.is_ok());
        } else {
            prop_assert!(r.is_err(), "truncated at {cut} parsed successfully");
        }
    }

    /// Flipping bytes anywhere never panics; it either errors or yields a
    /// dataset (bit flips inside float payloads can be value-preservingly
    /// harmless, which is acceptable — the guarantee is no UB/panic).
    #[test]
    fn byte_flips_never_panic(
        pos in 0usize..1usize << 16,
        val in any::<u8>(),
    ) {
        let mut bytes = golden().clone();
        let pos = pos % bytes.len();
        bytes[pos] = val;
        // Must not panic; outcome may be Ok or Err.
        let _ = load_bytes(&bytes, "flip");
    }

    /// Appending garbage is always rejected.
    #[test]
    fn trailing_garbage_rejected(extra in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut bytes = golden().clone();
        bytes.extend(extra);
        prop_assert!(load_bytes(&bytes, "trail").is_err());
    }

    /// Random prefixes of random bytes never panic the loader.
    #[test]
    fn random_blobs_never_panic(blob in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = load_bytes(&blob, "blob");
    }
}
