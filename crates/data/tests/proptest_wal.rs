//! Serialization properties of the WAL record codec: arbitrary mutation
//! batches must round-trip byte-identically, and *every* single-bit flip
//! anywhere in a record — length, CRC, epoch, or payload — must be
//! detected, never decoded into a different batch.

use friends_data::mutations::{Mutation, MutationBatch};
use friends_data::wal::{decode_batch, decode_record, encode_batch, encode_record, RecordError};
use friends_data::Tagging;
use proptest::prelude::*;

fn mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (0u32..10_000, 0u32..10_000, 0.01f32..10.0)
            .prop_map(|(u, v, weight)| Mutation::InsertEdge { u, v, weight }),
        (0u32..10_000, 0u32..10_000).prop_map(|(u, v)| Mutation::RemoveEdge { u, v }),
        (0u32..10_000, 0u32..5_000, 0u32..2_000, 0.01f32..5.0).prop_map(
            |(user, item, tag, weight)| Mutation::AddTagging(Tagging {
                user,
                item,
                tag,
                weight,
            })
        ),
    ]
}

fn batch() -> impl Strategy<Value = MutationBatch> {
    proptest::collection::vec(mutation(), 0..40).prop_map(MutationBatch::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// encode → decode is the identity, and re-encoding the decoded batch
    /// reproduces the original bytes exactly.
    #[test]
    fn batch_round_trips_byte_identically(b in batch()) {
        let bytes = encode_batch(&b);
        let decoded = decode_batch(&bytes).expect("clean payload must decode");
        prop_assert_eq!(&decoded, &b);
        prop_assert_eq!(encode_batch(&decoded), bytes);
    }

    /// Full records round-trip with their epoch stamp and report the exact
    /// byte count consumed.
    #[test]
    fn record_round_trips(b in batch(), epoch in 1u64..u64::MAX) {
        let mut buf = Vec::new();
        let n = encode_record(epoch, &b, &mut buf);
        prop_assert_eq!(n, buf.len());
        let (e, decoded, consumed) = decode_record(&buf, Some(epoch - 1))
            .expect("clean record must decode");
        prop_assert_eq!(e, epoch);
        prop_assert_eq!(decoded, b);
        prop_assert_eq!(consumed, buf.len());
    }

    /// Any single-bit flip anywhere in a record is detected: decode fails —
    /// it never yields a batch different from what was written.
    #[test]
    fn single_bit_flip_is_always_detected(
        b in batch(),
        epoch in 1u64..1 << 40,
        pos in 0usize..1 << 16,
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        encode_record(epoch, &b, &mut buf);
        let pos = pos % buf.len();
        buf[pos] ^= 1 << bit;
        prop_assert!(
            decode_record(&buf, None).is_err(),
            "flip at byte {} bit {} went undetected", pos, bit
        );
    }

    /// A record cut anywhere before its end is reported as torn (the
    /// crash-tail signature), never decoded and never mislabeled corrupt.
    #[test]
    fn any_truncation_is_torn(b in batch(), epoch in 1u64..1 << 40, cut in 0usize..1 << 16) {
        let mut buf = Vec::new();
        encode_record(epoch, &b, &mut buf);
        let cut = cut % buf.len(); // strictly shorter than the record
        match decode_record(&buf[..cut], None) {
            Err(RecordError::Torn) => {}
            other => return Err(TestCaseError::fail(format!(
                "cut at {cut} yielded {other:?}, expected Torn"
            ))),
        }
    }
}

/// Exhaustive field coverage on a representative record: every byte × every
/// bit — length prefix, CRC, epoch stamp, mutation count, and each field of
/// each mutation variant — must fail decoding when flipped.
#[test]
fn every_field_bit_flip_is_detected_exhaustively() {
    let b = MutationBatch::new(vec![
        Mutation::InsertEdge {
            u: 17,
            v: 42,
            weight: 0.75,
        },
        Mutation::RemoveEdge { u: 3, v: 99 },
        Mutation::AddTagging(Tagging {
            user: 5,
            item: 1_000,
            tag: 31,
            weight: 2.5,
        }),
    ]);
    let mut clean = Vec::new();
    encode_record(0xABCD_EF01, &b, &mut clean);
    for pos in 0..clean.len() {
        for bit in 0..8 {
            let mut buf = clean.clone();
            buf[pos] ^= 1 << bit;
            assert!(
                decode_record(&buf, None).is_err(),
                "flip at byte {pos} bit {bit} went undetected"
            );
        }
    }
}
