//! Property-based tests for the data substrate: store invariants under
//! arbitrary tagging multisets and generator/workload contracts.

use friends_data::queries::{QueryParams, QueryWorkload};
use friends_data::store::TagStore;
use friends_data::zipf::Zipf;
use friends_data::Tagging;
use friends_graph::generators;
use proptest::prelude::*;

fn arb_store() -> impl Strategy<Value = TagStore> {
    (
        1u32..20,
        1u32..30,
        1u32..8,
        proptest::collection::vec((0u32..20, 0u32..30, 0u32..8, 0.01f32..3.0), 0..150),
    )
        .prop_map(|(users, items, tags, raw)| {
            let taggings: Vec<Tagging> = raw
                .into_iter()
                .map(|(u, i, t, w)| Tagging {
                    user: u % users,
                    item: i % items,
                    tag: t % tags,
                    weight: w,
                })
                .collect();
            TagStore::build(users, items, tags, taggings)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The two sort orders of the store hold the same multiset: total mass,
    /// counts and per-(user, tag) slices are consistent.
    #[test]
    fn store_views_are_consistent(store in arb_store()) {
        let total_by_user: f64 = (0..store.num_users())
            .flat_map(|u| store.user_taggings(u))
            .map(|t| t.weight as f64)
            .sum();
        let total_by_tag: f64 = (0..store.num_tags())
            .flat_map(|t| store.tag_taggings(t))
            .map(|t| t.weight as f64)
            .sum();
        prop_assert!((total_by_user - total_by_tag).abs() < 1e-3);

        let count_by_user: usize = (0..store.num_users())
            .map(|u| store.user_taggings(u).len())
            .sum();
        prop_assert_eq!(count_by_user, store.num_taggings());

        for u in 0..store.num_users() {
            for t in 0..store.num_tags() {
                let slice = store.user_tag_taggings(u, t);
                prop_assert!(slice.iter().all(|x| x.user == u && x.tag == t));
                // Cross-check against the tag view.
                let via_tag = store
                    .tag_taggings(t)
                    .iter()
                    .filter(|x| x.user == u)
                    .count();
                prop_assert_eq!(slice.len(), via_tag);
            }
        }
    }

    /// Global aggregates match a naive recomputation.
    #[test]
    fn global_scores_match_naive(store in arb_store()) {
        for t in 0..store.num_tags() {
            let mut naive: std::collections::BTreeMap<u32, f32> =
                std::collections::BTreeMap::new();
            for x in store.tag_taggings(t) {
                *naive.entry(x.item).or_insert(0.0) += x.weight;
            }
            let got = store.global_item_scores(t);
            prop_assert_eq!(got.len(), naive.len());
            for (g, (item, mass)) in got.iter().zip(naive.iter()) {
                prop_assert_eq!(g.0, *item);
                prop_assert!((g.1 - mass).abs() < 1e-4);
            }
            // Max per-item mass is the max of the aggregates.
            let mx = naive.values().fold(0.0f32, |a, &b| a.max(b));
            let items_max = store
                .global_item_scores(t)
                .into_iter()
                .map(|(_, m)| m)
                .fold(0.0f32, f32::max);
            prop_assert!((mx - items_max).abs() < 1e-4);
        }
    }

    /// Zipf PMF sums to 1 and is non-increasing in rank.
    #[test]
    fn zipf_pmf_contract(n in 1usize..200, theta in 0.0f64..2.0) {
        let z = Zipf::new(n, theta);
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for r in 1..n {
            prop_assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
    }

    /// Zipf samples stay in range for arbitrary seeds.
    #[test]
    fn zipf_samples_in_range(n in 1usize..100, theta in 0.0f64..2.0, seed in any::<u64>()) {
        use rand::SeedableRng;
        let z = Zipf::new(n, theta);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Query workloads are well-formed for arbitrary seeds.
    #[test]
    fn workload_contract(seed in any::<u64>(), k in 1usize..20) {
        let g = generators::watts_strogatz(60, 4, 0.2, 1);
        let store = {
            let taggings: Vec<Tagging> = (0..60u32)
                .map(|u| Tagging::unit(u, u % 10, u % 5))
                .collect();
            TagStore::build(60, 10, 5, taggings)
        };
        let w = QueryWorkload::generate(
            &g,
            &store,
            &QueryParams { count: 15, min_tags: 1, max_tags: 3, k },
            seed,
        );
        prop_assert_eq!(w.len(), 15);
        for q in &w.queries {
            prop_assert!(q.seeker < 60);
            prop_assert!(!q.tags.is_empty() && q.tags.len() <= 3);
            prop_assert!(q.tags.windows(2).all(|t| t[0] < t[1]));
            prop_assert_eq!(q.k, k);
        }
    }
}
