//! Query-workload generation.
//!
//! A query is a seeker plus a small set of tags. To mirror real search
//! traffic, seekers are sampled proportionally to activity and tags are
//! drawn from the seeker's *neighborhood vocabulary* (tags used by the
//! seeker or their friends) — queries about things one's circle actually
//! annotates, which is the regime where network-aware search matters.

use crate::store::TagStore;
use crate::{TagId, UserId};
use friends_graph::CsrGraph;
use rand::prelude::*;
use rand::rngs::StdRng;

/// A top-k query: seeker + conjunction-free tag bag + k. `Hash`/`Eq` make
/// the query usable as a request-coalescing key in the service layer.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Query {
    pub seeker: UserId,
    pub tags: Vec<TagId>,
    pub k: usize,
}

/// Parameters for [`QueryWorkload::generate`].
#[derive(Clone, Debug)]
pub struct QueryParams {
    /// Number of queries.
    pub count: usize,
    /// Tags per query are drawn uniformly from `min_tags..=max_tags`.
    pub min_tags: usize,
    pub max_tags: usize,
    /// Result size.
    pub k: usize,
}

impl Default for QueryParams {
    fn default() -> Self {
        QueryParams {
            count: 100,
            min_tags: 1,
            max_tags: 3,
            k: 10,
        }
    }
}

/// A reproducible batch of queries.
#[derive(Clone, Debug)]
pub struct QueryWorkload {
    pub queries: Vec<Query>,
}

impl QueryWorkload {
    /// Generates a workload. Skips users with no usable neighborhood
    /// vocabulary (possible on tiny or disconnected graphs).
    pub fn generate(graph: &CsrGraph, store: &TagStore, params: &QueryParams, seed: u64) -> Self {
        assert!(params.min_tags >= 1 && params.min_tags <= params.max_tags);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = graph.num_nodes();
        let mut queries = Vec::with_capacity(params.count);
        if n == 0 {
            return QueryWorkload { queries };
        }
        let mut guard = 0usize;
        while queries.len() < params.count && guard < params.count * 50 {
            guard += 1;
            let seeker = rng.gen_range(0..n) as UserId;
            if graph.degree(seeker) == 0 {
                continue;
            }
            // Neighborhood vocabulary: own tags + friends' tags.
            let mut vocab: Vec<TagId> = store.user_taggings(seeker).iter().map(|t| t.tag).collect();
            for &f in graph.neighbors(seeker) {
                vocab.extend(store.user_taggings(f).iter().map(|t| t.tag));
            }
            vocab.sort_unstable();
            vocab.dedup();
            if vocab.is_empty() {
                continue;
            }
            let want = rng.gen_range(params.min_tags..=params.max_tags);
            let want = want.min(vocab.len());
            vocab.shuffle(&mut rng);
            vocab.truncate(want);
            vocab.sort_unstable();
            queries.push(Query {
                seeker,
                tags: vocab,
                k: params.k,
            });
        }
        QueryWorkload { queries }
    }

    /// Number of queries in the workload.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{DatasetSpec, Scale};

    fn fixture() -> (CsrGraph, TagStore) {
        let ds = DatasetSpec::delicious_like(Scale::Tiny).build(5);
        (ds.graph, ds.store)
    }

    #[test]
    fn generates_requested_count() {
        let (g, s) = fixture();
        let w = QueryWorkload::generate(&g, &s, &QueryParams::default(), 1);
        assert_eq!(w.len(), 100);
        assert!(!w.is_empty());
    }

    #[test]
    fn queries_are_well_formed() {
        let (g, s) = fixture();
        let p = QueryParams {
            count: 50,
            min_tags: 2,
            max_tags: 4,
            k: 7,
        };
        let w = QueryWorkload::generate(&g, &s, &p, 2);
        for q in &w.queries {
            assert!((q.seeker as usize) < g.num_nodes());
            assert!(!q.tags.is_empty() && q.tags.len() <= 4);
            assert_eq!(q.k, 7);
            // Tags sorted and unique.
            assert!(q.tags.windows(2).all(|t| t[0] < t[1]));
            // Every tag is in range.
            assert!(q.tags.iter().all(|&t| t < s.num_tags()));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, s) = fixture();
        let a = QueryWorkload::generate(&g, &s, &QueryParams::default(), 42);
        let b = QueryWorkload::generate(&g, &s, &QueryParams::default(), 42);
        assert_eq!(a.queries, b.queries);
        let c = QueryWorkload::generate(&g, &s, &QueryParams::default(), 43);
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    fn empty_graph_yields_empty_workload() {
        let g = CsrGraph::empty(0);
        let s = TagStore::build(0, 1, 1, vec![]);
        let w = QueryWorkload::generate(&g, &s, &QueryParams::default(), 1);
        assert!(w.is_empty());
    }

    #[test]
    fn tags_come_from_neighborhood_vocabulary() {
        let (g, s) = fixture();
        let w = QueryWorkload::generate(
            &g,
            &s,
            &QueryParams {
                count: 20,
                ..QueryParams::default()
            },
            9,
        );
        for q in &w.queries {
            let mut vocab: Vec<TagId> = s.user_taggings(q.seeker).iter().map(|t| t.tag).collect();
            for &f in g.neighbors(q.seeker) {
                vocab.extend(s.user_taggings(f).iter().map(|t| t.tag));
            }
            for t in &q.tags {
                assert!(vocab.contains(t), "tag {t} not in neighborhood vocab");
            }
        }
    }
}
