//! Serving-workload generation: timed request streams.
//!
//! [`crate::queries::QueryWorkload`] models an *offline* batch — every query
//! independent, seekers near-uniform. A serving tier sees something quite
//! different: seekers arrive Zipf-skewed (a head of heavy users dominates),
//! a given user **re-issues a small set of personal queries** (their
//! searches track their standing interests, so exact repeats are common),
//! and requests are spaced by think time rather than delivered as one flat
//! slab. This module generates that shape deterministically, for driving
//! the `friends_service` broker: the seeker skew is what affinity routing
//! exploits, the repeats are what request coalescing and the admission-
//! controlled caches exploit, and the think times turn a batch into a
//! stream.

use crate::queries::Query;
use crate::store::TagStore;
use crate::zipf::Zipf;
use crate::{TagId, UserId};
use friends_graph::CsrGraph;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::time::Duration;

/// One request of a stream: the query plus the client's think time *before*
/// issuing it (the gap to the previous request of the stream).
#[derive(Clone, Debug, PartialEq)]
pub struct TimedRequest {
    pub query: Query,
    pub think_time: Duration,
}

/// Parameters for [`RequestStream::generate`].
#[derive(Clone, Debug)]
pub struct RequestParams {
    /// Number of requests in the stream.
    pub count: usize,
    /// Zipf exponent of the seeker popularity ranking (rank = user id).
    /// 1.0–1.4 matches measured social-search traffic skew.
    pub seeker_theta: f64,
    /// How many distinct personal queries a seeker rotates between. Each
    /// request draws one of the seeker's profiles Zipf(1.0)-skewed, so the
    /// first profile dominates — exact repeats are common, as in real
    /// traffic.
    pub profiles_per_seeker: usize,
    /// Tags per profile are drawn uniformly from `1..=max_tags` out of the
    /// seeker's neighborhood vocabulary.
    pub max_tags: usize,
    /// Result size carried by every query.
    pub k: usize,
    /// Mean think time between consecutive requests (exponentially
    /// distributed). `Duration::ZERO` produces a flood — the closed-loop
    /// throughput shape the fig11 gate measures.
    pub mean_think_time: Duration,
}

impl Default for RequestParams {
    fn default() -> Self {
        RequestParams {
            count: 1_000,
            seeker_theta: 1.1,
            profiles_per_seeker: 3,
            max_tags: 3,
            k: 10,
            mean_think_time: Duration::ZERO,
        }
    }
}

/// A reproducible timed request stream. See the module docs for the traffic
/// shape.
#[derive(Clone, Debug)]
pub struct RequestStream {
    pub requests: Vec<TimedRequest>,
}

impl RequestStream {
    /// Generates a stream over `graph`/`store`. Seekers with no usable
    /// neighborhood vocabulary are skipped (they cannot form a query), so
    /// tiny or disconnected corpora may yield fewer than `count` requests.
    pub fn generate(graph: &CsrGraph, store: &TagStore, params: &RequestParams, seed: u64) -> Self {
        assert!(params.max_tags >= 1 && params.profiles_per_seeker >= 1);
        let n = graph.num_nodes();
        let mut requests = Vec::with_capacity(params.count);
        if n == 0 {
            return RequestStream { requests };
        }
        let seeker_z = Zipf::new(n, params.seeker_theta);
        let profile_z = Zipf::new(params.profiles_per_seeker, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        // Per-seeker query profiles, built lazily on first appearance.
        let mut profiles: HashMap<UserId, Vec<Vec<TagId>>> = HashMap::new();
        let mut guard = 0usize;
        while requests.len() < params.count && guard < params.count * 50 {
            guard += 1;
            let seeker = seeker_z.sample(&mut rng) as UserId;
            let entry = profiles
                .entry(seeker)
                .or_insert_with(|| build_profiles(graph, store, seeker, params, &mut rng));
            if entry.is_empty() {
                continue;
            }
            let tags = entry[profile_z.sample(&mut rng).min(entry.len() - 1)].clone();
            let think_time = sample_exponential(params.mean_think_time, &mut rng);
            requests.push(TimedRequest {
                query: Query {
                    seeker,
                    tags,
                    k: params.k,
                },
                think_time,
            });
        }
        RequestStream { requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The bare queries, in stream order (think times dropped) — the form
    /// batch APIs accept.
    pub fn queries(&self) -> Vec<Query> {
        self.requests.iter().map(|r| r.query.clone()).collect()
    }
}

/// Parameters for [`OpenLoopStream::generate`].
///
/// A *closed-loop* stream ([`RequestStream`]) spaces requests by think time
/// measured from the previous **completion** — the offered load adapts to
/// the service, so a slow service can never be overloaded by it. An
/// *open-loop* stream fixes the **arrival** schedule up front, independent
/// of completions: when the arrival rate exceeds capacity, the queue grows
/// without bound and the service must shed or degrade. That is the regime
/// the fig13 overload experiment measures.
#[derive(Clone, Debug)]
pub struct OpenLoopParams {
    /// Arrival rate in requests per second (> 0).
    pub rate: f64,
    /// `true` draws exponential inter-arrival gaps (a Poisson process,
    /// bursty like real traffic); `false` spaces arrivals uniformly at
    /// `1/rate` (a deterministic pacing useful for capacity bisection).
    pub poisson: bool,
    /// The query-shape parameters ([`RequestParams::mean_think_time`] is
    /// ignored — arrivals replace think times).
    pub shape: RequestParams,
}

impl Default for OpenLoopParams {
    fn default() -> Self {
        OpenLoopParams {
            rate: 1_000.0,
            poisson: true,
            shape: RequestParams::default(),
        }
    }
}

/// One open-loop request: the query plus its **absolute arrival offset**
/// from the stream's start. Offsets are non-decreasing.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenLoopRequest {
    pub query: Query,
    pub arrival: Duration,
}

/// A reproducible open-loop (fixed-arrival-schedule) request stream. The
/// queries carry the same serving shape as [`RequestStream`] (Zipf seekers,
/// repeated personal profiles); only the timing model differs.
#[derive(Clone, Debug)]
pub struct OpenLoopStream {
    pub requests: Vec<OpenLoopRequest>,
}

impl OpenLoopStream {
    /// Generates a stream over `graph`/`store` at `params.rate` arrivals
    /// per second. Deterministic in `seed` (queries and schedule both).
    pub fn generate(
        graph: &CsrGraph,
        store: &TagStore,
        params: &OpenLoopParams,
        seed: u64,
    ) -> Self {
        assert!(
            params.rate.is_finite() && params.rate > 0.0,
            "arrival rate must be positive"
        );
        let shape = RequestParams {
            mean_think_time: Duration::ZERO,
            ..params.shape.clone()
        };
        let base = RequestStream::generate(graph, store, &shape, seed);
        let gap = Duration::from_secs_f64(1.0 / params.rate);
        // A distinct RNG domain: the schedule must not perturb the query
        // sequence (same seed ⇒ same queries at any rate).
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4F50_454E_4C4F_4F50);
        let mut clock = Duration::ZERO;
        let requests = base
            .requests
            .into_iter()
            .map(|r| {
                let arrival = clock;
                clock += if params.poisson {
                    sample_exponential(gap, &mut rng)
                } else {
                    gap
                };
                OpenLoopRequest {
                    query: r.query,
                    arrival,
                }
            })
            .collect();
        OpenLoopStream { requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The offered arrival rate actually realized by the schedule, in
    /// requests per second (0.0 for streams shorter than two requests).
    pub fn realized_rate(&self) -> f64 {
        match (self.requests.first(), self.requests.last()) {
            (Some(first), Some(last)) if self.len() > 1 => {
                let span = (last.arrival - first.arrival).as_secs_f64();
                if span > 0.0 {
                    (self.len() - 1) as f64 / span
                } else {
                    0.0
                }
            }
            _ => 0.0,
        }
    }

    /// The bare queries, in arrival order.
    pub fn queries(&self) -> Vec<Query> {
        self.requests.iter().map(|r| r.query.clone()).collect()
    }
}

/// The seeker's standing queries: distinct sorted tag bags over their
/// neighborhood vocabulary (own tags + friends' tags — the regime where
/// network-aware search matters). Empty when the seeker has no vocabulary.
fn build_profiles(
    graph: &CsrGraph,
    store: &TagStore,
    seeker: UserId,
    params: &RequestParams,
    rng: &mut StdRng,
) -> Vec<Vec<TagId>> {
    let mut vocab: Vec<TagId> = store.user_taggings(seeker).iter().map(|t| t.tag).collect();
    for &f in graph.neighbors(seeker) {
        vocab.extend(store.user_taggings(f).iter().map(|t| t.tag));
    }
    vocab.sort_unstable();
    vocab.dedup();
    if vocab.is_empty() {
        return Vec::new();
    }
    let mut out: Vec<Vec<TagId>> = Vec::with_capacity(params.profiles_per_seeker);
    for _ in 0..params.profiles_per_seeker {
        let want = rng.gen_range(1..=params.max_tags).min(vocab.len());
        vocab.shuffle(rng);
        let mut tags: Vec<TagId> = vocab[..want].to_vec();
        tags.sort_unstable();
        if !out.contains(&tags) {
            out.push(tags);
        }
    }
    out
}

/// Exponentially distributed think time with the given mean (`ZERO` → zero).
fn sample_exponential(mean: Duration, rng: &mut StdRng) -> Duration {
    if mean.is_zero() {
        return Duration::ZERO;
    }
    let u: f64 = rng.gen_range(0.0..1.0);
    Duration::from_secs_f64(mean.as_secs_f64() * -(1.0 - u).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{DatasetSpec, Scale};

    fn fixture() -> (CsrGraph, TagStore) {
        let ds = DatasetSpec::delicious_like(Scale::Tiny).build(5);
        (ds.graph, ds.store)
    }

    #[test]
    fn stream_is_well_formed_and_deterministic() {
        let (g, s) = fixture();
        let p = RequestParams {
            count: 300,
            ..RequestParams::default()
        };
        let a = RequestStream::generate(&g, &s, &p, 11);
        let b = RequestStream::generate(&g, &s, &p, 11);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.len(), 300);
        for r in &a.requests {
            assert!((r.query.seeker as usize) < g.num_nodes());
            assert!(!r.query.tags.is_empty() && r.query.tags.len() <= 3);
            assert!(r.query.tags.windows(2).all(|t| t[0] < t[1]));
            assert!(r.query.tags.iter().all(|&t| t < s.num_tags()));
            assert_eq!(r.query.k, 10);
            assert_eq!(r.think_time, Duration::ZERO);
        }
        let c = RequestStream::generate(&g, &s, &p, 12);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn stream_repeats_queries_exactly() {
        // The serving shape: Zipf seekers × few profiles each ⇒ many exact
        // duplicate queries — what coalescing and caching exploit.
        let (g, s) = fixture();
        let p = RequestParams {
            count: 400,
            seeker_theta: 1.2,
            ..RequestParams::default()
        };
        let w = RequestStream::generate(&g, &s, &p, 3);
        let distinct: std::collections::HashSet<&Query> =
            w.requests.iter().map(|r| &r.query).collect();
        assert!(
            distinct.len() * 2 < w.len(),
            "only {} distinct queries over {} requests — no repeat traffic",
            distinct.len(),
            w.len()
        );
        // Seeker skew: far fewer distinct seekers than requests.
        let seekers: std::collections::HashSet<UserId> =
            w.requests.iter().map(|r| r.query.seeker).collect();
        assert!(seekers.len() * 2 < w.len());
    }

    #[test]
    fn think_times_follow_the_requested_mean() {
        let (g, s) = fixture();
        let p = RequestParams {
            count: 500,
            mean_think_time: Duration::from_millis(10),
            ..RequestParams::default()
        };
        let w = RequestStream::generate(&g, &s, &p, 7);
        let mean_ms = w
            .requests
            .iter()
            .map(|r| r.think_time.as_secs_f64() * 1e3)
            .sum::<f64>()
            / w.len() as f64;
        assert!(
            (5.0..20.0).contains(&mean_ms),
            "mean think time {mean_ms:.2} ms far from 10 ms"
        );
        assert!(w.requests.iter().any(|r| !r.think_time.is_zero()));
    }

    #[test]
    fn empty_graph_yields_empty_stream() {
        let g = CsrGraph::empty(0);
        let s = TagStore::build(0, 1, 1, vec![]);
        let w = RequestStream::generate(&g, &s, &RequestParams::default(), 1);
        assert!(w.is_empty());
        assert!(w.queries().is_empty());
    }

    #[test]
    fn open_loop_schedule_is_deterministic_and_monotone() {
        let (g, s) = fixture();
        let p = OpenLoopParams {
            rate: 2_000.0,
            poisson: true,
            shape: RequestParams {
                count: 300,
                ..RequestParams::default()
            },
        };
        let a = OpenLoopStream::generate(&g, &s, &p, 11);
        let b = OpenLoopStream::generate(&g, &s, &p, 11);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.len(), 300);
        assert_eq!(a.requests[0].arrival, Duration::ZERO);
        for w in a.requests.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "arrivals must be monotone");
        }
        // The realized rate tracks the requested one (Poisson noise allowed).
        let rate = a.realized_rate();
        assert!(
            (1_000.0..4_000.0).contains(&rate),
            "realized rate {rate:.0}/s far from 2000/s"
        );
    }

    #[test]
    fn open_loop_rate_changes_schedule_not_queries() {
        let (g, s) = fixture();
        let shape = RequestParams {
            count: 120,
            ..RequestParams::default()
        };
        let slow = OpenLoopStream::generate(
            &g,
            &s,
            &OpenLoopParams {
                rate: 100.0,
                poisson: false,
                shape: shape.clone(),
            },
            9,
        );
        let fast = OpenLoopStream::generate(
            &g,
            &s,
            &OpenLoopParams {
                rate: 10_000.0,
                poisson: false,
                shape,
            },
            9,
        );
        assert_eq!(
            slow.queries(),
            fast.queries(),
            "rate must not perturb queries"
        );
        // Uniform pacing: exact 1/rate gaps.
        let gap = slow.requests[1].arrival - slow.requests[0].arrival;
        assert_eq!(gap, Duration::from_secs_f64(1.0 / 100.0));
        assert!(slow.realized_rate() < fast.realized_rate());
        // The closed-loop generator at the same seed produces the same
        // query sequence too: the timing model is orthogonal.
        let closed = RequestStream::generate(
            &g,
            &s,
            &RequestParams {
                count: 120,
                ..RequestParams::default()
            },
            9,
        );
        assert_eq!(closed.queries(), fast.queries());
    }

    #[test]
    fn queries_projection_preserves_order() {
        let (g, s) = fixture();
        let p = RequestParams {
            count: 50,
            ..RequestParams::default()
        };
        let w = RequestStream::generate(&g, &s, &p, 2);
        let qs = w.queries();
        assert_eq!(qs.len(), w.len());
        for (q, r) in qs.iter().zip(&w.requests) {
            assert_eq!(q, &r.query);
        }
    }
}
