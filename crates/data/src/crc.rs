//! CRC32 (IEEE 802.3, the zlib/gzip polynomial) for on-disk integrity
//! checks.
//!
//! Every persistent byte this workspace writes — WAL records
//! ([`crate::wal`]) and dataset/snapshot sections ([`crate::io`]) — carries
//! a CRC32 so a torn write or a flipped bit is *detected*, never parsed.
//! The implementation is the classic reflected table-driven one-byte-at-a-
//! time loop: ~1 GB/s, far faster than the disk writes it guards, and the
//! table is computed at compile time so there is no init path to race.

/// The reflected CRC-32 polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC32 of `bytes` in one call. Matches zlib's `crc32(0, ...)`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// Streaming CRC32: feed chunks with [`Crc32::update`], read the digest
/// with [`Crc32::finish`] (non-destructive — more updates may follow).
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher (equivalent to `crc32(&[])` so far).
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The digest over everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let data = b"durability is proven, not assumed".to_vec();
        let base = crc32(&data);
        for pos in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[pos] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {pos} bit {bit}");
            }
        }
    }
}
