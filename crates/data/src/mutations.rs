//! Write-workload generation: timed mutation streams for the live graph.
//!
//! The query-side generators ([`crate::requests`]) model the read traffic of
//! a social-search tier; this module models the *write* traffic that arrives
//! interleaved with it — friend edges forming and dissolving, and new tag
//! annotations being posted. The same principles apply: everything is
//! deterministic in the seed, endpoints are Zipf-skewed (active users both
//! query and mutate more), and arrivals follow a fixed open-loop schedule so
//! a write stream can be replayed against a serving tier at a controlled
//! fraction of the query rate (the fig14 regime).

use crate::store::TagStore;
use crate::zipf::Zipf;
use crate::{Tagging, UserId};
use friends_graph::{CsrGraph, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Duration;

/// One corpus mutation. Edge mutations target the friendship graph; tagging
/// appends target the posting store. Removing an absent edge is a no-op,
/// and inserting an existing edge replaces its weight (see
/// [`CsrGraph::with_edits`]).
#[derive(Clone, Debug, PartialEq)]
pub enum Mutation {
    /// Insert (or re-weight) the undirected friend edge `{u, v}`.
    InsertEdge { u: NodeId, v: NodeId, weight: f32 },
    /// Remove the undirected friend edge `{u, v}` if present.
    RemoveEdge { u: NodeId, v: NodeId },
    /// Append one tagging to the posting store.
    AddTagging(Tagging),
}

impl Mutation {
    /// The endpoints of an edge mutation, `None` for tagging appends.
    pub fn edge_endpoints(&self) -> Option<(NodeId, NodeId)> {
        match *self {
            Mutation::InsertEdge { u, v, .. } | Mutation::RemoveEdge { u, v } => Some((u, v)),
            Mutation::AddTagging(_) => None,
        }
    }
}

/// A group of mutations applied atomically as one epoch step: readers see
/// either none or all of a batch, never a prefix.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MutationBatch {
    pub mutations: Vec<Mutation>,
}

impl MutationBatch {
    /// A batch over the given mutations.
    pub fn new(mutations: Vec<Mutation>) -> Self {
        MutationBatch { mutations }
    }

    /// Number of mutations in the batch.
    pub fn len(&self) -> usize {
        self.mutations.len()
    }

    /// Whether the batch is empty (applying it is a no-op that still
    /// publishes a new epoch).
    pub fn is_empty(&self) -> bool {
        self.mutations.is_empty()
    }

    /// Splits the batch into the shapes the corpus edit path consumes:
    /// `(edge inserts, edge removals, tagging appends)`.
    #[allow(clippy::type_complexity)]
    pub fn split(
        &self,
    ) -> (
        Vec<(NodeId, NodeId, f32)>,
        Vec<(NodeId, NodeId)>,
        Vec<Tagging>,
    ) {
        let mut inserts = Vec::new();
        let mut removals = Vec::new();
        let mut taggings = Vec::new();
        for m in &self.mutations {
            match *m {
                Mutation::InsertEdge { u, v, weight } => inserts.push((u, v, weight)),
                Mutation::RemoveEdge { u, v } => removals.push((u, v)),
                Mutation::AddTagging(t) => taggings.push(t),
            }
        }
        (inserts, removals, taggings)
    }

    /// Every distinct edge endpoint touched by the batch, sorted — the
    /// node set invalidation sweeps test σ reach against.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .mutations
            .iter()
            .filter_map(Mutation::edge_endpoints)
            .flat_map(|(u, v)| [u, v])
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Every distinct tag appended by the batch, sorted — what per-tag
    /// result invalidation sweeps against.
    pub fn touched_tags(&self) -> Vec<crate::TagId> {
        let mut tags: Vec<crate::TagId> = self
            .mutations
            .iter()
            .filter_map(|m| match m {
                Mutation::AddTagging(t) => Some(t.tag),
                _ => None,
            })
            .collect();
        tags.sort_unstable();
        tags.dedup();
        tags
    }
}

/// One mutation of a stream with its absolute arrival offset from the
/// stream's start (open-loop, like [`crate::requests::OpenLoopRequest`]).
#[derive(Clone, Debug, PartialEq)]
pub struct TimedMutation {
    pub mutation: Mutation,
    pub arrival: Duration,
}

/// Parameters for [`MutationStream::generate`].
#[derive(Clone, Debug)]
pub struct MutationParams {
    /// Number of mutations in the stream.
    pub count: usize,
    /// Arrival rate in mutations per second (> 0). Drive this at ~10% of
    /// the query rate for the fig14 regime.
    pub rate: f64,
    /// Zipf exponent of the acting-user ranking (rank = user id), matching
    /// the seeker skew of the read side.
    pub user_theta: f64,
    /// Fraction of mutations that remove an existing edge (the rest split
    /// between inserts and tagging appends).
    pub remove_fraction: f64,
    /// Fraction of mutations that append a tagging.
    pub tagging_fraction: f64,
}

impl Default for MutationParams {
    fn default() -> Self {
        MutationParams {
            count: 100,
            rate: 100.0,
            user_theta: 1.1,
            remove_fraction: 0.2,
            tagging_fraction: 0.3,
        }
    }
}

/// A reproducible open-loop mutation stream over an existing corpus:
/// edge inserts between Zipf-skewed users, removals of edges present in the
/// *seed* graph, and tagging appends drawn from the store's vocabulary.
#[derive(Clone, Debug)]
pub struct MutationStream {
    pub mutations: Vec<TimedMutation>,
}

impl MutationStream {
    /// Generates a stream shaped for `graph`/`store`. Deterministic in
    /// `seed` (mutations and schedule both, on distinct RNG domains so the
    /// rate never perturbs the mutation sequence). Removals target edges of
    /// the seed graph, so replaying the stream against the evolving corpus
    /// mixes hits and no-ops — both are legal.
    pub fn generate(
        graph: &CsrGraph,
        store: &TagStore,
        params: &MutationParams,
        seed: u64,
    ) -> Self {
        assert!(
            params.rate.is_finite() && params.rate > 0.0,
            "mutation rate must be positive"
        );
        assert!(
            params.remove_fraction >= 0.0
                && params.tagging_fraction >= 0.0
                && params.remove_fraction + params.tagging_fraction <= 1.0,
            "mutation mix fractions must form a distribution"
        );
        let n = graph.num_nodes();
        let mut mutations = Vec::with_capacity(params.count);
        if n < 2 {
            return MutationStream { mutations };
        }
        let user_z = Zipf::new(n, params.user_theta);
        let mut rng = StdRng::seed_from_u64(seed);
        while mutations.len() < params.count {
            let roll: f64 = rng.gen_range(0.0..1.0);
            let user = user_z.sample(&mut rng) as UserId;
            let m = if roll < params.remove_fraction {
                // Remove one of the acting user's seed-graph edges; users
                // with no friends fall back to an insert below.
                let deg = graph.degree(user);
                if deg > 0 {
                    let v = graph.neighbors(user)[rng.gen_range(0..deg)];
                    Mutation::RemoveEdge { u: user, v }
                } else {
                    random_insert(user, n, &mut rng)
                }
            } else if roll < params.remove_fraction + params.tagging_fraction
                && store.num_items() > 0
                && store.num_tags() > 0
            {
                Mutation::AddTagging(Tagging {
                    user,
                    item: rng.gen_range(0..store.num_items()),
                    tag: rng.gen_range(0..store.num_tags()),
                    weight: 1.0,
                })
            } else {
                random_insert(user, n, &mut rng)
            };
            mutations.push(TimedMutation {
                mutation: m,
                arrival: Duration::ZERO,
            });
        }
        // A distinct RNG domain for the schedule (same idiom as
        // `OpenLoopStream`): the rate must not perturb the mutations.
        let mut clock_rng = StdRng::seed_from_u64(seed ^ 0x4D55_5441_5445_u64);
        let gap = Duration::from_secs_f64(1.0 / params.rate);
        let mut clock = Duration::ZERO;
        for tm in &mut mutations {
            tm.arrival = clock;
            let u: f64 = clock_rng.gen_range(0.0..1.0);
            clock += Duration::from_secs_f64(gap.as_secs_f64() * -(1.0 - u).ln());
        }
        MutationStream { mutations }
    }

    /// Number of mutations.
    pub fn len(&self) -> usize {
        self.mutations.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.mutations.is_empty()
    }

    /// Chunks the stream, in arrival order, into batches of at most
    /// `batch_size` mutations (the granularity a broker applies per epoch
    /// step). Timing is dropped.
    pub fn batches(&self, batch_size: usize) -> Vec<MutationBatch> {
        assert!(batch_size > 0, "batch size must be positive");
        self.mutations
            .chunks(batch_size)
            .map(|c| MutationBatch::new(c.iter().map(|tm| tm.mutation.clone()).collect()))
            .collect()
    }
}

/// An edge insert from `user` to a distinct uniform endpoint, weighted in
/// `(0, 1]` — new friendships start at arbitrary strength.
fn random_insert(user: UserId, n: usize, rng: &mut StdRng) -> Mutation {
    let mut v = rng.gen_range(0..n as NodeId);
    if v == user {
        v = (v + 1) % n as NodeId;
    }
    Mutation::InsertEdge {
        u: user,
        v,
        weight: rng.gen_range(0.05..=1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{DatasetSpec, Scale};

    fn fixture() -> (CsrGraph, TagStore) {
        let ds = DatasetSpec::delicious_like(Scale::Tiny).build(5);
        (ds.graph, ds.store)
    }

    #[test]
    fn stream_is_deterministic_and_well_formed() {
        let (g, s) = fixture();
        let p = MutationParams {
            count: 200,
            ..MutationParams::default()
        };
        let a = MutationStream::generate(&g, &s, &p, 11);
        let b = MutationStream::generate(&g, &s, &p, 11);
        assert_eq!(a.mutations, b.mutations);
        assert_eq!(a.len(), 200);
        let n = g.num_nodes() as NodeId;
        for tm in &a.mutations {
            match &tm.mutation {
                Mutation::InsertEdge { u, v, weight } => {
                    assert!(*u < n && *v < n && u != v);
                    assert!(weight.is_finite() && *weight > 0.0);
                }
                Mutation::RemoveEdge { u, v } => {
                    assert!(*u < n && *v < n);
                    assert!(g.has_edge(*u, *v), "removals target seed-graph edges");
                }
                Mutation::AddTagging(t) => {
                    assert!((t.user) < s.num_users());
                    assert!(t.item < s.num_items() && t.tag < s.num_tags());
                }
            }
        }
        let c = MutationStream::generate(&g, &s, &p, 12);
        assert_ne!(a.mutations, c.mutations);
    }

    #[test]
    fn mix_fractions_shape_the_stream() {
        let (g, s) = fixture();
        let p = MutationParams {
            count: 400,
            remove_fraction: 0.25,
            tagging_fraction: 0.25,
            ..MutationParams::default()
        };
        let w = MutationStream::generate(&g, &s, &p, 3);
        let removes = w
            .mutations
            .iter()
            .filter(|tm| matches!(tm.mutation, Mutation::RemoveEdge { .. }))
            .count();
        let tags = w
            .mutations
            .iter()
            .filter(|tm| matches!(tm.mutation, Mutation::AddTagging(_)))
            .count();
        let inserts = w.len() - removes - tags;
        assert!(
            inserts > 0 && removes > 0 && tags > 0,
            "{inserts}/{removes}/{tags}"
        );
    }

    #[test]
    fn arrivals_are_monotone_and_track_the_rate() {
        let (g, s) = fixture();
        let p = MutationParams {
            count: 300,
            rate: 1_000.0,
            ..MutationParams::default()
        };
        let w = MutationStream::generate(&g, &s, &p, 7);
        assert_eq!(w.mutations[0].arrival, Duration::ZERO);
        for pair in w.mutations.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        let span = w.mutations.last().unwrap().arrival.as_secs_f64();
        let rate = (w.len() - 1) as f64 / span;
        assert!(
            (300.0..4_000.0).contains(&rate),
            "realized rate {rate:.0}/s far from 1000/s"
        );
    }

    #[test]
    fn rate_changes_schedule_not_mutations() {
        let (g, s) = fixture();
        let slow = MutationStream::generate(
            &g,
            &s,
            &MutationParams {
                count: 80,
                rate: 10.0,
                ..MutationParams::default()
            },
            9,
        );
        let fast = MutationStream::generate(
            &g,
            &s,
            &MutationParams {
                count: 80,
                rate: 10_000.0,
                ..MutationParams::default()
            },
            9,
        );
        let a: Vec<&Mutation> = slow.mutations.iter().map(|tm| &tm.mutation).collect();
        let b: Vec<&Mutation> = fast.mutations.iter().map(|tm| &tm.mutation).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn batches_chunk_in_order() {
        let (g, s) = fixture();
        let w = MutationStream::generate(
            &g,
            &s,
            &MutationParams {
                count: 25,
                ..MutationParams::default()
            },
            2,
        );
        let batches = w.batches(10);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 10);
        assert_eq!(batches[2].len(), 5);
        let flat: Vec<&Mutation> = batches.iter().flat_map(|b| b.mutations.iter()).collect();
        let orig: Vec<&Mutation> = w.mutations.iter().map(|tm| &tm.mutation).collect();
        assert_eq!(flat, orig);
    }

    #[test]
    fn batch_split_and_touch_sets() {
        let b = MutationBatch::new(vec![
            Mutation::InsertEdge {
                u: 1,
                v: 2,
                weight: 0.5,
            },
            Mutation::RemoveEdge { u: 4, v: 2 },
            Mutation::AddTagging(Tagging::unit(3, 0, 7)),
            Mutation::AddTagging(Tagging::unit(3, 1, 7)),
        ]);
        let (ins, rem, tg) = b.split();
        assert_eq!(ins, vec![(1, 2, 0.5)]);
        assert_eq!(rem, vec![(4, 2)]);
        assert_eq!(tg.len(), 2);
        assert_eq!(b.touched_nodes(), vec![1, 2, 4]);
        assert_eq!(b.touched_tags(), vec![7]);
    }

    #[test]
    fn tiny_graph_yields_empty_stream() {
        let g = CsrGraph::empty(1);
        let s = TagStore::build(1, 1, 1, vec![]);
        let w = MutationStream::generate(&g, &s, &MutationParams::default(), 1);
        assert!(w.is_empty());
    }
}
