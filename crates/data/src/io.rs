//! Binary persistence for datasets and live-corpus snapshots.
//!
//! Generating the Medium/Large synthetic datasets takes seconds to minutes;
//! experiments that sweep processors over the same dataset want to pay that
//! once. This module writes a `(graph, store)` pair to a compact
//! little-endian binary file and reads it back. The format is versioned and
//! self-describing enough to fail loudly on corruption — not a public
//! interchange format.
//!
//! ## Format v2
//!
//! v2 is the durable-snapshot format the WAL recovery path
//! (`friends_core::live`) builds on:
//!
//! ```text
//!   [magic u32le] [version=2 u32le] [epoch u64le] [header crc u32le]
//!   [graph section:  len u32le | crc u32le | payload]
//!   [store section:  len u32le | crc u32le | payload]
//! ```
//!
//! Each section's payload carries its own CRC32 ([`crate::crc`]) so a torn
//! write or a flipped bit is detected *before* any value is parsed, and the
//! header records the epoch the snapshot captures. Writes go through a
//! temp file + atomic rename, so a crash mid-save never leaves a truncated
//! file at the target path — the old file (if any) survives intact.
//! [`load`] still reads v1 files (no CRCs, epoch 0).
//!
//! Every [`IoError::Corrupt`] carries the absolute byte offset where
//! validation failed, so corruption reports are actionable (`dd` straight
//! to the bad record).

use crate::crc::crc32;
use crate::store::TagStore;
use crate::Tagging;
use friends_graph::{CsrGraph, GraphBuilder};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

const MAGIC: u32 = 0x46524E44; // "FRND"
const VERSION_V1: u32 = 1;
const VERSION: u32 = 2;
/// Smallest legal record in either section (edge: 12 B, tagging: 16 B) —
/// bounds the counts a decoder will believe from a length field.
const MIN_RECORD: usize = 12;

/// Errors raised by [`save`] / [`load`].
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file is not a dataset file or is a different version.
    BadHeader,
    /// The payload ended early or contained out-of-range values; `offset`
    /// is the absolute byte position where validation failed.
    Corrupt { what: &'static str, offset: u64 },
}

impl IoError {
    fn corrupt(what: &'static str, offset: u64) -> Self {
        IoError::Corrupt { what, offset }
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::BadHeader => write!(f, "not a friends dataset file (bad magic/version)"),
            IoError::Corrupt { what, offset } => {
                write!(f, "corrupt dataset file: {what} at byte {offset}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Offset-tracking little-endian reader; every failure names the absolute
/// byte position it happened at.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Absolute file offset of `buf[0]`.
    base: u64,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], base: u64) -> Self {
        Reader { buf, pos: 0, base }
    }

    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], IoError> {
        if self.remaining() < n {
            return Err(IoError::corrupt(what, self.offset()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, IoError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, IoError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f32(&mut self, what: &'static str) -> Result<f32, IoError> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
}

fn put_u32_le(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32_le(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_graph(graph: &CsrGraph) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + graph.num_edges() * 12);
    put_u32_le(&mut buf, graph.num_nodes() as u32);
    put_u32_le(&mut buf, graph.num_edges() as u32);
    for (u, v, w) in graph.undirected_edges() {
        put_u32_le(&mut buf, u);
        put_u32_le(&mut buf, v);
        put_f32_le(&mut buf, w);
    }
    buf
}

fn encode_store(store: &TagStore) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + store.num_taggings() * 16);
    put_u32_le(&mut buf, store.num_users());
    put_u32_le(&mut buf, store.num_items());
    put_u32_le(&mut buf, store.num_tags());
    put_u32_le(&mut buf, store.num_taggings() as u32);
    for t in store.iter() {
        put_u32_le(&mut buf, t.user);
        put_u32_le(&mut buf, t.item);
        put_u32_le(&mut buf, t.tag);
        put_f32_le(&mut buf, t.weight);
    }
    buf
}

fn decode_graph(r: &mut Reader<'_>) -> Result<CsrGraph, IoError> {
    let n = r.u32("truncated graph header")? as usize;
    let m = r.u32("truncated graph header")? as usize;
    if m > r.remaining() / MIN_RECORD + 1 {
        return Err(IoError::corrupt("edge count exceeds payload", r.offset()));
    }
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        let at = r.offset();
        let u = r.u32("truncated edge")?;
        let v = r.u32("truncated edge")?;
        let w = r.f32("truncated edge")?;
        if u as usize >= n || v as usize >= n || !w.is_finite() || w < 0.0 {
            return Err(IoError::corrupt("edge out of range", at));
        }
        b.add_edge(u, v, w);
    }
    Ok(b.build())
}

fn decode_store(r: &mut Reader<'_>) -> Result<TagStore, IoError> {
    let users = r.u32("truncated store header")?;
    let items = r.u32("truncated store header")?;
    let tags = r.u32("truncated store header")?;
    let count = r.u32("truncated store header")? as usize;
    if count > r.remaining() / 16 + 1 {
        return Err(IoError::corrupt(
            "tagging count exceeds payload",
            r.offset(),
        ));
    }
    let mut taggings = Vec::with_capacity(count);
    for _ in 0..count {
        let at = r.offset();
        let t = Tagging {
            user: r.u32("truncated tagging")?,
            item: r.u32("truncated tagging")?,
            tag: r.u32("truncated tagging")?,
            weight: r.f32("truncated tagging")?,
        };
        if t.user >= users || t.item >= items || t.tag >= tags {
            return Err(IoError::corrupt("tagging out of range", at));
        }
        if !t.weight.is_finite() || t.weight < 0.0 {
            return Err(IoError::corrupt("bad weight", at));
        }
        taggings.push(t);
    }
    Ok(TagStore::build(users, items, tags, taggings))
}

/// Writes `payload` as a checksummed v2 section: `len | crc | payload`.
fn put_section(out: &mut Vec<u8>, payload: &[u8]) {
    put_u32_le(out, payload.len() as u32);
    put_u32_le(out, crc32(payload));
    out.extend_from_slice(payload);
}

/// Reads one v2 section, verifying its CRC before yielding the payload.
fn take_section<'a>(r: &mut Reader<'a>, what: &'static str) -> Result<Reader<'a>, IoError> {
    let len = r.u32(what)? as usize;
    let crc = r.u32(what)?;
    let at = r.offset();
    let payload = r.take(len, what)?;
    if crc32(payload) != crc {
        return Err(IoError::corrupt("section crc mismatch", at));
    }
    Ok(Reader::new(payload, at))
}

/// Serializes a graph + store pair to `path` (v2, epoch 0). The write is
/// atomic: data lands in a temp file in the same directory, is fsynced,
/// and then renamed over the target — a crash mid-save never leaves a
/// truncated file where a good one was expected.
pub fn save(path: &Path, graph: &CsrGraph, store: &TagStore) -> Result<(), IoError> {
    save_with_epoch(path, graph, store, 0)
}

/// [`save`] stamping the snapshot's epoch into the v2 header.
pub fn save_with_epoch(
    path: &Path,
    graph: &CsrGraph,
    store: &TagStore,
    epoch: u64,
) -> Result<(), IoError> {
    let mut buf: Vec<u8> =
        Vec::with_capacity(32 + graph.num_edges() * 12 + store.num_taggings() * 16);
    put_u32_le(&mut buf, MAGIC);
    put_u32_le(&mut buf, VERSION);
    buf.extend_from_slice(&epoch.to_le_bytes());
    // Header CRC over magic‖version‖epoch: the epoch drives recovery
    // decisions, so it must not be trusted unchecked.
    let header_crc = crc32(&buf[..16]);
    put_u32_le(&mut buf, header_crc);
    put_section(&mut buf, &encode_graph(graph));
    put_section(&mut buf, &encode_store(store));
    write_atomic(path, &buf)?;
    Ok(())
}

/// Writes `bytes` to `path` via temp-file + fsync + rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    let res = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
        std::fs::rename(&tmp, path)?;
        // Make the rename itself durable where the platform allows it.
        if let Some(dir) = dir {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if res.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    res
}

/// Reads back a pair written by [`save`] (either format version).
pub fn load(path: &Path) -> Result<(CsrGraph, TagStore), IoError> {
    let (graph, store, _) = load_with_epoch(path)?;
    Ok((graph, store))
}

/// [`load`] that also yields the snapshot epoch (0 for v1 files, which
/// predate epochs).
pub fn load_with_epoch(path: &Path) -> Result<(CsrGraph, TagStore, u64), IoError> {
    let mut raw = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut raw)?;
    let mut r = Reader::new(&raw, 0);
    if r.remaining() < 8 {
        return Err(IoError::BadHeader);
    }
    let magic = r.u32("header")?;
    let version = r.u32("header")?;
    if magic != MAGIC {
        return Err(IoError::BadHeader);
    }
    match version {
        VERSION_V1 => {
            // Legacy: unsectioned, no CRCs, no epoch.
            let graph = decode_graph(&mut r)?;
            let store = decode_store(&mut r)?;
            if r.remaining() != 0 {
                return Err(IoError::corrupt("trailing bytes", r.offset()));
            }
            Ok((graph, store, 0))
        }
        VERSION => {
            let epoch = r.u64("truncated epoch header")?;
            let at = r.offset();
            let header_crc = r.u32("truncated header crc")?;
            if crc32(&raw[..16]) != header_crc {
                return Err(IoError::corrupt("header crc mismatch", at));
            }
            let mut gs = take_section(&mut r, "truncated graph section")?;
            let graph = decode_graph(&mut gs)?;
            if gs.remaining() != 0 {
                return Err(IoError::corrupt(
                    "trailing graph section bytes",
                    gs.offset(),
                ));
            }
            let mut ss = take_section(&mut r, "truncated store section")?;
            let store = decode_store(&mut ss)?;
            if ss.remaining() != 0 {
                return Err(IoError::corrupt(
                    "trailing store section bytes",
                    ss.offset(),
                ));
            }
            if r.remaining() != 0 {
                return Err(IoError::corrupt("trailing bytes", r.offset()));
            }
            Ok((graph, store, epoch))
        }
        _ => Err(IoError::BadHeader),
    }
}

/// Snapshot path for an epoch: `dir/snap-{epoch:016x}.snap` — hex-padded
/// so lexicographic order is epoch order.
pub fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snap-{epoch:016x}.snap"))
}

/// Snapshot files under `dir` as `(epoch, path)`, ascending by epoch.
/// Epochs come from the file *names*; validity is only known after a
/// [`load_with_epoch`]. Non-snapshot files are ignored; a missing
/// directory is an empty list.
pub fn list_snapshots(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut snaps = Vec::new();
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            for e in entries {
                let path = e?.path();
                let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                if let Some(hex) = name
                    .strip_prefix("snap-")
                    .and_then(|s| s.strip_suffix(".snap"))
                {
                    if let Ok(epoch) = u64::from_str_radix(hex, 16) {
                        snaps.push((epoch, path));
                    }
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    snaps.sort_unstable();
    Ok(snaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{DatasetSpec, Scale};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("friends-io-{}-{name}.bin", std::process::id()));
        p
    }

    #[test]
    fn round_trip() {
        let ds = DatasetSpec::flickr_like(Scale::Tiny).build(3);
        let path = tmp("roundtrip");
        save(&path, &ds.graph, &ds.store).unwrap();
        let (g, s) = load(&path).unwrap();
        assert_eq!(g.num_nodes(), ds.graph.num_nodes());
        assert_eq!(g.num_edges(), ds.graph.num_edges());
        for u in g.nodes() {
            assert_eq!(g.neighbors(u), ds.graph.neighbors(u));
        }
        assert_eq!(s.num_taggings(), ds.store.num_taggings());
        assert_eq!(s.num_items(), ds.store.num_items());
        // Spot-check a user slice.
        assert_eq!(s.user_taggings(7), ds.store.user_taggings(7));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn epoch_round_trips_in_the_header() {
        let ds = DatasetSpec::delicious_like(Scale::Tiny).build(4);
        let path = tmp("epoch");
        save_with_epoch(&path, &ds.graph, &ds.store, 0xDEAD_BEEF).unwrap();
        let (_, _, epoch) = load_with_epoch(&path).unwrap();
        assert_eq!(epoch, 0xDEAD_BEEF);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn still_reads_v1_files() {
        let ds = DatasetSpec::citeulike_like(Scale::Tiny).build(2);
        let path = tmp("v1compat");
        // Hand-roll a v1 file: unsectioned, no CRCs.
        let mut buf = Vec::new();
        put_u32_le(&mut buf, MAGIC);
        put_u32_le(&mut buf, VERSION_V1);
        buf.extend_from_slice(&encode_graph(&ds.graph));
        buf.extend_from_slice(&encode_store(&ds.store));
        std::fs::write(&path, &buf).unwrap();
        let (g, s, epoch) = load_with_epoch(&path).unwrap();
        assert_eq!(epoch, 0, "v1 files predate epochs");
        assert_eq!(g.num_edges(), ds.graph.num_edges());
        assert_eq!(s.num_taggings(), ds.store.num_taggings());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"not a dataset at all").unwrap();
        match load(&path) {
            Err(IoError::BadHeader) | Err(IoError::Corrupt { .. }) => {}
            other => panic!("expected header error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncation() {
        let ds = DatasetSpec::citeulike_like(Scale::Tiny).build(1);
        let path = tmp("trunc");
        save(&path, &ds.graph, &ds.store).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(load(&path), Err(IoError::Corrupt { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_trailing_garbage() {
        let ds = DatasetSpec::delicious_like(Scale::Tiny).build(1);
        let path = tmp("trailing");
        save(&path, &ds.graph, &ds.store).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[1, 2, 3]);
        std::fs::write(&path, &bytes).unwrap();
        match load(&path) {
            Err(IoError::Corrupt { what, offset }) => {
                assert_eq!(what, "trailing bytes");
                assert_eq!(offset as usize, bytes.len() - 3);
            }
            other => panic!("expected trailing-bytes error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn section_crc_catches_payload_flips() {
        let ds = DatasetSpec::flickr_like(Scale::Tiny).build(6);
        let path = tmp("crcflip");
        save(&path, &ds.graph, &ds.store).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip one bit in every byte past the fixed header; the section
        // CRCs (or framing checks) must reject all of them.
        let mut rejected = 0;
        for pos in (16..clean.len()).step_by(7) {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            if load(&path).is_err() {
                rejected += 1;
            }
        }
        let tried = (16..clean.len()).step_by(7).count();
        assert_eq!(rejected, tried, "every payload flip must be detected");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_offset_is_actionable() {
        let ds = DatasetSpec::delicious_like(Scale::Tiny).build(3);
        let path = tmp("offset");
        save(&path, &ds.graph, &ds.store).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = bytes.len() / 2;
        bytes[pos] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match load(&path) {
            Err(IoError::Corrupt { offset, .. }) => {
                // The CRC blames the section payload containing the flip.
                assert!(offset as usize <= pos, "offset {offset} past flip {pos}");
                assert!(offset > 0);
            }
            other => panic!("expected corrupt error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_no_temp_residue() {
        let ds = DatasetSpec::delicious_like(Scale::Tiny).build(8);
        let dir = std::env::temp_dir().join(format!("friends-io-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        save(&path, &ds.graph, &ds.store).unwrap();
        // Overwrite must go through rename as well.
        save_with_epoch(&path, &ds.graph, &ds.store, 9).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["data.bin".to_string()], "no temp files left");
        let (_, _, epoch) = load_with_epoch(&path).unwrap();
        assert_eq!(epoch, 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_listing_orders_by_epoch() {
        let dir = std::env::temp_dir().join(format!("friends-io-snaps-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for e in [7u64, 1, 300] {
            std::fs::write(snapshot_path(&dir, e), b"x").unwrap();
        }
        std::fs::write(dir.join("unrelated.txt"), b"y").unwrap();
        let snaps = list_snapshots(&dir).unwrap();
        let epochs: Vec<u64> = snaps.iter().map(|&(e, _)| e).collect();
        assert_eq!(epochs, vec![1, 7, 300]);
        assert!(list_snapshots(&dir.join("missing")).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", IoError::BadHeader).contains("magic"));
        let e = IoError::corrupt("x", 42);
        let msg = format!("{e}");
        assert!(msg.contains('x') && msg.contains("42"));
    }
}
