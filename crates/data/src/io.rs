//! Binary persistence for datasets.
//!
//! Generating the Medium/Large synthetic datasets takes seconds to minutes;
//! experiments that sweep processors over the same dataset want to pay that
//! once. This module writes a `(graph, store)` pair to a compact
//! little-endian binary file and reads it back. The format is versioned and
//! self-describing enough to fail loudly on corruption — not a public
//! interchange format.

use crate::store::TagStore;
use crate::Tagging;
use bytes::{Buf, BufMut};
use friends_graph::{CsrGraph, GraphBuilder};
use std::io::{Read as _, Write as _};
use std::path::Path;

const MAGIC: u32 = 0x46524E44; // "FRND"
const VERSION: u32 = 1;

/// Errors raised by [`save`] / [`load`].
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file is not a dataset file or is a different version.
    BadHeader,
    /// The payload ended early or contained out-of-range values.
    Corrupt(&'static str),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::BadHeader => write!(f, "not a friends dataset file (bad magic/version)"),
            IoError::Corrupt(what) => write!(f, "corrupt dataset file: {what}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Serializes a graph + store pair to `path`.
pub fn save(path: &Path, graph: &CsrGraph, store: &TagStore) -> Result<(), IoError> {
    let mut buf: Vec<u8> =
        Vec::with_capacity(16 + graph.num_edges() * 12 + store.num_taggings() * 16);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    // Graph section.
    buf.put_u32_le(graph.num_nodes() as u32);
    buf.put_u32_le(graph.num_edges() as u32);
    for (u, v, w) in graph.undirected_edges() {
        buf.put_u32_le(u);
        buf.put_u32_le(v);
        buf.put_f32_le(w);
    }
    // Store section.
    buf.put_u32_le(store.num_users());
    buf.put_u32_le(store.num_items());
    buf.put_u32_le(store.num_tags());
    buf.put_u32_le(store.num_taggings() as u32);
    for t in store.iter() {
        buf.put_u32_le(t.user);
        buf.put_u32_le(t.item);
        buf.put_u32_le(t.tag);
        buf.put_f32_le(t.weight);
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(&buf)?;
    Ok(())
}

/// Reads back a pair written by [`save`].
pub fn load(path: &Path) -> Result<(CsrGraph, TagStore), IoError> {
    let mut raw = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut raw)?;
    let mut buf = raw.as_slice();
    let need = |buf: &&[u8], n: usize| -> Result<(), IoError> {
        if buf.remaining() < n {
            Err(IoError::Corrupt("truncated"))
        } else {
            Ok(())
        }
    };
    need(&buf, 8)?;
    if buf.get_u32_le() != MAGIC || buf.get_u32_le() != VERSION {
        return Err(IoError::BadHeader);
    }
    need(&buf, 8)?;
    let n = buf.get_u32_le() as usize;
    let m = buf.get_u32_le() as usize;
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        need(&buf, 12)?;
        let u = buf.get_u32_le();
        let v = buf.get_u32_le();
        let w = buf.get_f32_le();
        if u as usize >= n || v as usize >= n || !w.is_finite() || w < 0.0 {
            return Err(IoError::Corrupt("edge out of range"));
        }
        b.add_edge(u, v, w);
    }
    let graph = b.build();
    need(&buf, 16)?;
    let users = buf.get_u32_le();
    let items = buf.get_u32_le();
    let tags = buf.get_u32_le();
    let count = buf.get_u32_le() as usize;
    let mut taggings = Vec::with_capacity(count);
    for _ in 0..count {
        need(&buf, 16)?;
        let t = Tagging {
            user: buf.get_u32_le(),
            item: buf.get_u32_le(),
            tag: buf.get_u32_le(),
            weight: buf.get_f32_le(),
        };
        if t.user >= users || t.item >= items || t.tag >= tags {
            return Err(IoError::Corrupt("tagging out of range"));
        }
        if !t.weight.is_finite() || t.weight < 0.0 {
            return Err(IoError::Corrupt("bad weight"));
        }
        taggings.push(t);
    }
    if buf.has_remaining() {
        return Err(IoError::Corrupt("trailing bytes"));
    }
    Ok((graph, TagStore::build(users, items, tags, taggings)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{DatasetSpec, Scale};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("friends-io-{}-{name}.bin", std::process::id()));
        p
    }

    #[test]
    fn round_trip() {
        let ds = DatasetSpec::flickr_like(Scale::Tiny).build(3);
        let path = tmp("roundtrip");
        save(&path, &ds.graph, &ds.store).unwrap();
        let (g, s) = load(&path).unwrap();
        assert_eq!(g.num_nodes(), ds.graph.num_nodes());
        assert_eq!(g.num_edges(), ds.graph.num_edges());
        for u in g.nodes() {
            assert_eq!(g.neighbors(u), ds.graph.neighbors(u));
        }
        assert_eq!(s.num_taggings(), ds.store.num_taggings());
        assert_eq!(s.num_items(), ds.store.num_items());
        // Spot-check a user slice.
        assert_eq!(s.user_taggings(7), ds.store.user_taggings(7));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"not a dataset at all").unwrap();
        match load(&path) {
            Err(IoError::BadHeader) | Err(IoError::Corrupt(_)) => {}
            other => panic!("expected header error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncation() {
        let ds = DatasetSpec::citeulike_like(Scale::Tiny).build(1);
        let path = tmp("trunc");
        save(&path, &ds.graph, &ds.store).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(load(&path), Err(IoError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_trailing_garbage() {
        let ds = DatasetSpec::delicious_like(Scale::Tiny).build(1);
        let path = tmp("trailing");
        save(&path, &ds.graph, &ds.store).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[1, 2, 3]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load(&path),
            Err(IoError::Corrupt("trailing bytes"))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", IoError::BadHeader).contains("magic"));
        assert!(format!("{}", IoError::Corrupt("x")).contains("x"));
    }
}
