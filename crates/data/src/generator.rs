//! Homophilous synthetic tagging-workload generator.
//!
//! The generator is the heart of the data substitution (DESIGN.md §3): it
//! produces taggings whose *popularity skew* (Zipf over items and tags),
//! *volume skew* (per-user activity heavy tail) and *homophily* (friends tag
//! the same things) are all controllable.
//!
//! Homophily drives the entire premise of network-aware search: when `h = 0`
//! your friends' annotations are no more relevant than strangers', and the
//! personalized processors degrade to the global one; as `h → 1` the signal
//! concentrates in the seeker's neighborhood and friend expansion terminates
//! after a handful of visits. Fig 5 and Fig 8 sweep exactly this axis.

use crate::store::TagStore;
use crate::zipf::Zipf;
use crate::{Tagging, UserId};
use friends_graph::CsrGraph;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Parameters for [`generate`].
#[derive(Clone, Debug)]
pub struct WorkloadParams {
    /// Number of items in the universe.
    pub num_items: u32,
    /// Number of tags in the universe.
    pub num_tags: u32,
    /// Mean annotations per user (actual volume is heavy-tailed around it).
    pub mean_taggings_per_user: f64,
    /// Zipf exponent of item popularity.
    pub item_theta: f64,
    /// Zipf exponent of tag popularity.
    pub tag_theta: f64,
    /// Probability that a tagging *copies* a uniformly random existing
    /// tagging of a random friend instead of sampling fresh. In `[0, 1]`.
    pub homophily: f64,
    /// Weight model: annotations get weight 1.0 when false, else
    /// `Uniform(0.5, 1.5)` (rating-like noise).
    pub weighted: bool,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            num_items: 10_000,
            num_tags: 500,
            mean_taggings_per_user: 20.0,
            item_theta: 1.0,
            tag_theta: 1.0,
            homophily: 0.5,
            weighted: false,
        }
    }
}

/// Generates a [`TagStore`] over the users of `graph`.
///
/// Users are processed in random order; each performs a heavy-tailed number
/// of annotations. With probability `homophily` an annotation copies a
/// random friend's existing annotation (falling back to fresh sampling when
/// the friend has none yet), otherwise it samples `item ~ Zipf(item_theta)`
/// and `tag ~ Zipf(tag_theta)` independently.
pub fn generate(graph: &CsrGraph, params: &WorkloadParams, seed: u64) -> TagStore {
    assert!((0.0..=1.0).contains(&params.homophily), "bad homophily");
    assert!(params.num_items >= 1 && params.num_tags >= 1);
    let n = graph.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let item_z = Zipf::new(params.num_items as usize, params.item_theta);
    let tag_z = Zipf::new(params.num_tags as usize, params.tag_theta);

    // Heavy-tailed per-user activity: volume ∝ a Zipf rank sample, scaled so
    // the mean matches `mean_taggings_per_user`.
    let activity = Zipf::new(50, 0.8);
    let mean_rank: f64 = (0..50).map(|r| (r + 1) as f64 * activity.pmf(r)).sum();
    let scale = params.mean_taggings_per_user / mean_rank;

    // Per-user tagging lists, so homophilous copies can reference them.
    let mut per_user: Vec<Vec<Tagging>> = vec![Vec::new(); n];
    let mut order: Vec<UserId> = (0..n as UserId).collect();
    order.shuffle(&mut rng);

    // Two passes: the first seeds everyone with some fresh annotations so
    // early homophilous copies have material to copy; the second adds the
    // remainder with the homophily mixture.
    for pass in 0..2 {
        for &u in &order {
            let volume = ((activity.sample(&mut rng) + 1) as f64 * scale).round() as usize;
            let volume = if pass == 0 {
                (volume / 2).max(1)
            } else {
                volume.saturating_sub(volume / 2)
            };
            for _ in 0..volume {
                let copied = if pass == 1 && rng.gen_bool(params.homophily) {
                    copy_from_friend(graph, &per_user, u, &mut rng)
                } else {
                    None
                };
                let (item, tag) = copied.unwrap_or_else(|| {
                    (
                        item_z.sample(&mut rng) as u32,
                        tag_z.sample(&mut rng) as u32,
                    )
                });
                let weight = if params.weighted {
                    rng.gen_range(0.5..1.5)
                } else {
                    1.0
                };
                per_user[u as usize].push(Tagging {
                    user: u,
                    item,
                    tag,
                    weight,
                });
            }
        }
    }
    let taggings: Vec<Tagging> = per_user.into_iter().flatten().collect();
    TagStore::build(n as u32, params.num_items, params.num_tags, taggings)
}

fn copy_from_friend(
    graph: &CsrGraph,
    per_user: &[Vec<Tagging>],
    u: UserId,
    rng: &mut StdRng,
) -> Option<(u32, u32)> {
    let nbrs = graph.neighbors(u);
    if nbrs.is_empty() {
        return None;
    }
    // Try a few friends; fall back to fresh sampling if none tagged yet.
    for _ in 0..4 {
        let f = nbrs[rng.gen_range(0..nbrs.len())];
        let fl = &per_user[f as usize];
        if !fl.is_empty() {
            let t = fl[rng.gen_range(0..fl.len())];
            return Some((t.item, t.tag));
        }
    }
    None
}

/// Fraction of annotations shared with at least one friend — an empirical
/// homophily measure used to validate the generator.
pub fn measured_homophily(graph: &CsrGraph, store: &TagStore) -> f64 {
    let mut shared = 0usize;
    let mut total = 0usize;
    for u in graph.nodes() {
        for t in store.user_taggings(u) {
            total += 1;
            let found = graph.neighbors(u).iter().any(|&f| {
                store
                    .user_tag_taggings(f, t.tag)
                    .iter()
                    .any(|ft| ft.item == t.item)
            });
            if found {
                shared += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        shared as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use friends_graph::generators;

    fn small_graph() -> CsrGraph {
        generators::watts_strogatz(200, 6, 0.1, 3)
    }

    #[test]
    fn generation_is_deterministic() {
        let g = small_graph();
        let p = WorkloadParams::default();
        let a = generate(&g, &p, 11);
        let b = generate(&g, &p, 11);
        assert_eq!(a.num_taggings(), b.num_taggings());
    }

    #[test]
    fn volume_tracks_mean() {
        let g = small_graph();
        let p = WorkloadParams {
            mean_taggings_per_user: 15.0,
            homophily: 0.0,
            ..WorkloadParams::default()
        };
        let s = generate(&g, &p, 5);
        let per_user = s.num_taggings() as f64 / 200.0;
        // Duplicate merging removes some volume; accept a broad band.
        assert!(
            per_user > 6.0 && per_user < 25.0,
            "taggings/user = {per_user}"
        );
    }

    #[test]
    fn homophily_increases_sharing() {
        let g = small_graph();
        let lo = generate(
            &g,
            &WorkloadParams {
                homophily: 0.0,
                ..WorkloadParams::default()
            },
            7,
        );
        let hi = generate(
            &g,
            &WorkloadParams {
                homophily: 0.9,
                ..WorkloadParams::default()
            },
            7,
        );
        let mh_lo = measured_homophily(&g, &lo);
        let mh_hi = measured_homophily(&g, &hi);
        assert!(
            mh_hi > mh_lo + 0.15,
            "homophily should increase sharing: {mh_lo} vs {mh_hi}"
        );
    }

    #[test]
    fn item_popularity_is_skewed() {
        let g = small_graph();
        let s = generate(
            &g,
            &WorkloadParams {
                item_theta: 1.2,
                homophily: 0.0,
                ..WorkloadParams::default()
            },
            9,
        );
        let mut counts = vec![0usize; s.num_items() as usize];
        for t in s.iter() {
            counts[t.item as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = counts[..10].iter().sum();
        let total: usize = counts.iter().sum();
        assert!(
            top10 as f64 > 0.2 * total as f64,
            "top-10 items hold {top10}/{total}"
        );
    }

    #[test]
    fn weighted_annotations_in_range() {
        let g = small_graph();
        let s = generate(
            &g,
            &WorkloadParams {
                weighted: true,
                ..WorkloadParams::default()
            },
            2,
        );
        // Merged duplicates may exceed 1.5, but no single weight is < 0.5.
        assert!(s.iter().all(|t| t.weight >= 0.5));
    }

    #[test]
    fn empty_graph_yields_empty_store() {
        let g = CsrGraph::empty(0);
        let s = generate(&g, &WorkloadParams::default(), 1);
        assert_eq!(s.num_taggings(), 0);
    }

    #[test]
    fn every_user_tags_at_least_once() {
        let g = small_graph();
        let s = generate(&g, &WorkloadParams::default(), 13);
        for u in 0..200u32 {
            assert!(
                !s.user_taggings(u).is_empty(),
                "user {u} has no annotations"
            );
        }
    }
}
