//! Segmented write-ahead log for live-graph mutation batches.
//!
//! PR 9 made the corpus mutable; this module makes those mutations
//! *durable*. Every applied [`MutationBatch`] is appended as one
//! length-prefixed, CRC32-checksummed record stamped with the epoch it
//! publishes, `fsync`ed per [`SyncPolicy`], before the batch is
//! acknowledged. After a crash, [`Wal::replay`] walks the segments in
//! epoch order and stops cleanly at the first torn or corrupt record —
//! everything durable before it survives, nothing after it is trusted.
//!
//! ## Record layout
//!
//! ```text
//!   ┌────────────┬────────────┬──────────────┬───────────────────┐
//!   │ len: u32le │ crc: u32le │ epoch: u64le │ payload (len B)   │
//!   └────────────┴────────────┴──────────────┴───────────────────┘
//!                     crc = CRC32(epoch_le ‖ payload)
//! ```
//!
//! The payload is the batch codec below ([`encode_batch`] /
//! [`decode_batch`]): a mutation count followed by one tagged entry per
//! mutation. A record is accepted only if its header fits, the declared
//! payload fits, the CRC matches, the payload decodes exactly, and its
//! epoch is strictly greater than the previous record's — anything else is
//! the stop point (tail truncation or a corrupt segment, reported, never
//! fatal).
//!
//! ## Group commit and segments
//!
//! One `apply` batch = one record = one `write` (+ one `fsync` under
//! [`SyncPolicy::Always`]) — the fsync amortizes over the whole batch,
//! which is what makes durable writes affordable at serving rates.
//! Segments are named `wal-{first_epoch:016x}.log` so their sort order is
//! replay order; [`Wal::rotate`] seals the active segment, and
//! [`Wal::retire_through`] deletes sealed segments made redundant by a
//! newer snapshot.
//!
//! ## Fault injection
//!
//! Appends go through the [`WalFs`]/[`WalFile`] traits. Production uses
//! [`StdFs`]; the [`fault`] module provides [`fault::FailingFs`] — a
//! writer that dies after N bytes, flips a bit in the stream, or silently
//! drops flushes — so crash-consistency is *proven* by killing the writer
//! at every byte offset (`crates/core/tests/proptest_recovery.rs`), not
//! assumed.

use crate::mutations::{Mutation, MutationBatch};
use crate::Tagging;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Record header: payload length, CRC, epoch.
const HEADER: usize = 4 + 4 + 8;
/// Smallest legal mutation encoding (`RemoveEdge`: tag byte + two u32s) —
/// bounds the mutation count a decoder will believe from a length field.
const MIN_MUTATION: usize = 9;

/// When the WAL `fsync`s. The crash-consistency contract per policy:
///
/// * `Always` — every acknowledged batch survives any crash (group commit:
///   one fsync per batch, amortized over its mutations).
/// * `EveryN(n)` — up to the last `n - 1` acknowledged batches may be lost
///   on power failure; recovery still lands on a clean batch prefix.
/// * `Never` — the OS flushes when it pleases; any suffix of acknowledged
///   batches may be lost. Recovery still never sees a partial batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every appended record.
    Always,
    /// `fsync` after every `n`th appended record (`n >= 1`; `EveryN(1)`
    /// behaves like `Always`).
    EveryN(u32),
    /// Never `fsync`; rely on the OS page cache.
    Never,
}

/// WAL tuning.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Fsync cadence — see [`SyncPolicy`].
    pub sync: SyncPolicy,
    /// Seal the active segment once it exceeds this many bytes (the next
    /// append starts a new one). Bounds per-segment replay memory and the
    /// blast radius of a corrupt segment.
    pub segment_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            sync: SyncPolicy::Always,
            segment_bytes: 8 << 20,
        }
    }
}

/// One append's receipt: how many bytes the record occupied and whether
/// this append `fsync`ed (under [`SyncPolicy::EveryN`] most appends ride
/// on a later sync).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalAppend {
    /// Total record bytes (header + payload).
    pub bytes: u64,
    /// Whether this append ended with an `fsync`.
    pub synced: bool,
}

/// Monotonic WAL counters, snapshotted by [`Wal::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended over this handle's lifetime.
    pub appends: u64,
    /// Bytes appended (headers + payloads).
    pub bytes: u64,
    /// `fsync`s issued.
    pub syncs: u64,
    /// Segment rotations (seals).
    pub rotations: u64,
    /// Sealed segments deleted by [`Wal::retire_through`].
    pub retired_segments: u64,
    /// Segments currently on disk (sealed + active).
    pub segments: u64,
}

/// What [`Wal::replay`] found: every decodable record in epoch order, plus
/// how the log ended.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// `(epoch, batch)` for every valid record, in log order (epochs
    /// strictly increasing).
    pub records: Vec<(u64, MutationBatch)>,
    /// The scan stopped at a torn or corrupt record in the **final**
    /// segment — the expected artifact of a crash mid-append.
    pub truncated_tail: bool,
    /// Segments wholly or partially discarded: a mid-log segment that
    /// failed validation, plus every segment after the stop point (their
    /// epochs can no longer chain).
    pub corrupt_segments: usize,
    /// Bytes of valid records scanned.
    pub valid_bytes: u64,
}

impl WalReplay {
    /// Epoch of the last valid record (`None` for an empty log).
    pub fn last_epoch(&self) -> Option<u64> {
        self.records.last().map(|&(e, _)| e)
    }
}

// ---------------------------------------------------------------------------
// Batch + record codec
// ---------------------------------------------------------------------------

fn put_u32_le(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64_le(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32_le(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes a batch into the WAL payload form (count + tagged entries).
pub fn encode_batch(batch: &MutationBatch) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + batch.len() * 17);
    put_u32_le(&mut out, batch.len() as u32);
    for m in &batch.mutations {
        match *m {
            Mutation::InsertEdge { u, v, weight } => {
                out.push(0);
                put_u32_le(&mut out, u);
                put_u32_le(&mut out, v);
                put_f32_le(&mut out, weight);
            }
            Mutation::RemoveEdge { u, v } => {
                out.push(1);
                put_u32_le(&mut out, u);
                put_u32_le(&mut out, v);
            }
            Mutation::AddTagging(t) => {
                out.push(2);
                put_u32_le(&mut out, t.user);
                put_u32_le(&mut out, t.item);
                put_u32_le(&mut out, t.tag);
                put_f32_le(&mut out, t.weight);
            }
        }
    }
    out
}

/// Decodes a payload written by [`encode_batch`]. The payload must be
/// consumed exactly; any structural mismatch is an error naming the field
/// that failed (the CRC normally rejects corruption first — this is the
/// second line of defense, and the decoder the round-trip proptests pin).
pub fn decode_batch(buf: &[u8]) -> Result<MutationBatch, &'static str> {
    let mut r = Cursor { buf, pos: 0 };
    let count = r.u32("mutation count")? as usize;
    if count > buf.len() / MIN_MUTATION + 1 {
        return Err("mutation count exceeds payload");
    }
    let mut mutations = Vec::with_capacity(count);
    for _ in 0..count {
        let kind = r.u8("mutation kind")?;
        let m = match kind {
            0 => {
                let u = r.u32("insert endpoint u")?;
                let v = r.u32("insert endpoint v")?;
                let weight = r.f32("insert weight")?;
                if !weight.is_finite() {
                    return Err("non-finite insert weight");
                }
                Mutation::InsertEdge { u, v, weight }
            }
            1 => Mutation::RemoveEdge {
                u: r.u32("remove endpoint u")?,
                v: r.u32("remove endpoint v")?,
            },
            2 => {
                let t = Tagging {
                    user: r.u32("tagging user")?,
                    item: r.u32("tagging item")?,
                    tag: r.u32("tagging tag")?,
                    weight: r.f32("tagging weight")?,
                };
                if !t.weight.is_finite() {
                    return Err("non-finite tagging weight");
                }
                Mutation::AddTagging(t)
            }
            _ => return Err("unknown mutation kind"),
        };
        mutations.push(m);
    }
    if r.pos != buf.len() {
        return Err("trailing payload bytes");
    }
    Ok(MutationBatch::new(mutations))
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&[u8], &'static str> {
        if self.buf.len() - self.pos < n {
            return Err(what);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self, what: &'static str) -> Result<u8, &'static str> {
        Ok(self.take(1, what)?[0])
    }
    fn u32(&mut self, what: &'static str) -> Result<u32, &'static str> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
    fn f32(&mut self, what: &'static str) -> Result<f32, &'static str> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
}

/// Serializes one full record (header + payload) into `out`, returning the
/// record's size in bytes.
pub fn encode_record(epoch: u64, batch: &MutationBatch, out: &mut Vec<u8>) -> usize {
    let payload = encode_batch(batch);
    let mut crc = crate::crc::Crc32::new();
    crc.update(&epoch.to_le_bytes());
    crc.update(&payload);
    put_u32_le(out, payload.len() as u32);
    put_u32_le(out, crc.finish());
    put_u64_le(out, epoch);
    out.extend_from_slice(&payload);
    HEADER + payload.len()
}

/// Why a record failed to decode — both variants mean "stop scanning
/// here"; the distinction is reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordError {
    /// The buffer ends before the record does (torn write).
    Torn,
    /// The record is structurally complete but invalid (CRC mismatch,
    /// undecodable payload, epoch regression).
    Corrupt(&'static str),
}

/// Decodes the record at the start of `buf`. `prev_epoch` enforces the
/// strictly-increasing epoch chain (`None` at the start of the log).
/// Returns `(epoch, batch, bytes_consumed)`.
pub fn decode_record(
    buf: &[u8],
    prev_epoch: Option<u64>,
) -> Result<(u64, MutationBatch, usize), RecordError> {
    if buf.len() < HEADER {
        return Err(RecordError::Torn);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if buf.len() - HEADER < len {
        // A corrupted length field is indistinguishable from a torn tail;
        // both stop the scan.
        return Err(RecordError::Torn);
    }
    let mut h = crate::crc::Crc32::new();
    h.update(&buf[8..HEADER + len]);
    if h.finish() != crc {
        return Err(RecordError::Corrupt("record crc mismatch"));
    }
    let epoch = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    if prev_epoch.is_some_and(|p| epoch <= p) {
        return Err(RecordError::Corrupt("epoch regression"));
    }
    let batch = decode_batch(&buf[HEADER..HEADER + len]).map_err(RecordError::Corrupt)?;
    Ok((epoch, batch, HEADER + len))
}

// ---------------------------------------------------------------------------
// Pluggable write path (fault injection)
// ---------------------------------------------------------------------------

/// One open WAL segment on the write path.
pub trait WalFile: Send {
    /// Appends `buf` (all-or-error, like `write_all`).
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Makes everything appended so far durable (`fsync`).
    fn sync(&mut self) -> io::Result<()>;
}

/// Opens WAL segments. Production is [`StdFs`]; tests inject
/// [`fault::FailingFs`].
pub trait WalFs: Send + Sync {
    /// Opens `path` for appending, creating it if absent.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn WalFile>>;
}

/// The real filesystem.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdFs;

struct StdFile(std::fs::File);

impl WalFile for StdFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl WalFs for StdFs {
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(StdFile(f)))
    }
}

// ---------------------------------------------------------------------------
// The log
// ---------------------------------------------------------------------------

/// A sealed-or-active segment the handle knows about.
#[derive(Clone, Debug)]
struct SegmentMeta {
    path: PathBuf,
    /// Epoch of the segment's last record (segments are never empty).
    last_epoch: u64,
}

/// The segmented write-ahead log. One instance is the single writer for a
/// directory; callers serialize appends (the live-corpus writer gate /
/// service mutation gate already do).
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    fs: Arc<dyn WalFs>,
    /// The open active segment, if any (`None` right after open/rotate —
    /// the next append creates one named by its epoch).
    active: Option<(Box<dyn WalFile>, SegmentMeta, u64)>, // (file, meta, bytes)
    sealed: Vec<SegmentMeta>,
    appends_since_sync: u32,
    stats: WalStats,
}

impl Wal {
    /// Segment path for a first-record epoch.
    pub fn segment_path(dir: &Path, first_epoch: u64) -> PathBuf {
        dir.join(format!("wal-{first_epoch:016x}.log"))
    }

    fn parse_segment(path: &Path) -> Option<u64> {
        let name = path.file_name()?.to_str()?;
        let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
        u64::from_str_radix(hex, 16).ok()
    }

    /// Segment paths in replay (epoch) order.
    fn segment_files(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut segs = Vec::new();
        match std::fs::read_dir(dir) {
            Ok(entries) => {
                for e in entries {
                    let path = e?.path();
                    if let Some(epoch) = Self::parse_segment(&path) {
                        segs.push((epoch, path));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        segs.sort_unstable();
        Ok(segs)
    }

    /// Scans one segment's bytes: valid records, the byte length of the
    /// valid prefix, and the error that stopped the scan (if any).
    fn scan_segment(
        bytes: &[u8],
        mut prev_epoch: Option<u64>,
    ) -> (Vec<(u64, MutationBatch)>, usize, Option<RecordError>) {
        let mut records = Vec::new();
        let mut pos = 0;
        while pos < bytes.len() {
            match decode_record(&bytes[pos..], prev_epoch) {
                Ok((epoch, batch, consumed)) => {
                    prev_epoch = Some(epoch);
                    records.push((epoch, batch));
                    pos += consumed;
                }
                Err(e) => return (records, pos, Some(e)),
            }
        }
        (records, pos, None)
    }

    /// Read-only scan of every segment under `dir`, stopping at the first
    /// torn or corrupt record. Never errors on corruption — only on an
    /// unreadable directory/file.
    pub fn replay(dir: &Path) -> io::Result<WalReplay> {
        let segs = Self::segment_files(dir)?;
        let mut out = WalReplay::default();
        let mut prev_epoch = None;
        let mut stopped = false;
        let last = segs.len().saturating_sub(1);
        for (i, (_, path)) in segs.iter().enumerate() {
            if stopped {
                out.corrupt_segments += 1;
                continue;
            }
            let mut bytes = Vec::new();
            std::fs::File::open(path)?.read_to_end(&mut bytes)?;
            let (records, valid_len, err) = Self::scan_segment(&bytes, prev_epoch);
            prev_epoch = records.last().map(|&(e, _)| e).or(prev_epoch);
            out.valid_bytes += valid_len as u64;
            out.records.extend(records);
            if let Some(e) = err {
                stopped = true;
                if i == last && e == RecordError::Torn {
                    out.truncated_tail = true;
                } else {
                    // Mid-log damage (or a CRC-invalid record even at the
                    // tail): the segment is corrupt, not merely torn.
                    out.corrupt_segments += 1;
                    out.truncated_tail = true;
                }
            }
        }
        Ok(out)
    }

    /// Opens (and repairs) the log for appending through the real
    /// filesystem.
    pub fn open(dir: &Path, config: WalConfig) -> io::Result<Wal> {
        Self::open_with(dir, config, Arc::new(StdFs))
    }

    /// [`Wal::open`] with an injected write path ([`fault::FailingFs`] in
    /// the crash harness). Repair — truncating the torn tail and deleting
    /// unusable later segments — always happens through the real
    /// filesystem: it mirrors what [`Wal::replay`] validated.
    pub fn open_with(dir: &Path, config: WalConfig, fs: Arc<dyn WalFs>) -> io::Result<Wal> {
        std::fs::create_dir_all(dir)?;
        let segs = Self::segment_files(dir)?;
        let mut sealed = Vec::new();
        let mut prev_epoch = None;
        let mut stopped = false;
        let mut retired = 0u64;
        let last = segs.len().saturating_sub(1);
        let mut active_tail: Option<(SegmentMeta, u64)> = None;
        for (i, (_, path)) in segs.iter().enumerate() {
            if stopped {
                // Epochs after the stop point can never chain; the
                // segment is unusable and appending past it would hide
                // the gap.
                std::fs::remove_file(path)?;
                retired += 1;
                continue;
            }
            let mut bytes = Vec::new();
            std::fs::File::open(path)?.read_to_end(&mut bytes)?;
            let (records, valid_len, err) = Self::scan_segment(&bytes, prev_epoch);
            if err.is_some() {
                stopped = true;
            }
            match records.last() {
                Some(&(e, _)) => {
                    prev_epoch = Some(e);
                    if valid_len < bytes.len() {
                        // Tail truncation: keep exactly the valid prefix.
                        let f = std::fs::OpenOptions::new().write(true).open(path)?;
                        f.set_len(valid_len as u64)?;
                        f.sync_data()?;
                    }
                    let meta = SegmentMeta {
                        path: path.clone(),
                        last_epoch: e,
                    };
                    if i == last && !stopped {
                        active_tail = Some((meta, valid_len as u64));
                    } else if i == last {
                        // Repaired tail segment: seal it — the next append
                        // starts a fresh segment after the repair point.
                        sealed.push(meta);
                    } else {
                        sealed.push(meta);
                    }
                }
                None => {
                    // No valid record at all — an empty or wholly corrupt
                    // file; appending to it would bury garbage mid-log.
                    std::fs::remove_file(path)?;
                    retired += 1;
                }
            }
        }
        // Reopen the clean tail segment for appending if it has room.
        let active = match active_tail {
            Some((meta, len)) if len < config.segment_bytes => {
                let file = fs.open_append(&meta.path)?;
                Some((file, meta, len))
            }
            Some((meta, _)) => {
                sealed.push(meta);
                None
            }
            None => None,
        };
        let segments = sealed.len() as u64 + active.is_some() as u64;
        Ok(Wal {
            dir: dir.to_path_buf(),
            config,
            fs,
            active,
            sealed,
            appends_since_sync: 0,
            stats: WalStats {
                retired_segments: retired,
                segments,
                ..WalStats::default()
            },
        })
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one batch as a single record and applies the sync policy.
    /// The record is on its way to disk when this returns; with
    /// [`SyncPolicy::Always`] (or when `synced` is set in the receipt) it
    /// is durable.
    pub fn append(&mut self, epoch: u64, batch: &MutationBatch) -> io::Result<WalAppend> {
        let mut buf = Vec::new();
        let bytes = encode_record(epoch, batch, &mut buf) as u64;
        if self.active.is_none() {
            let meta = SegmentMeta {
                path: Self::segment_path(&self.dir, epoch),
                last_epoch: epoch,
            };
            let file = self.fs.open_append(&meta.path)?;
            self.active = Some((file, meta, 0));
            self.stats.segments += 1;
        }
        let (file, meta, len) = self.active.as_mut().unwrap();
        file.append(&buf)?;
        meta.last_epoch = epoch;
        *len += bytes;
        self.stats.appends += 1;
        self.stats.bytes += bytes;
        self.appends_since_sync += 1;
        let synced = match self.config.sync {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => self.appends_since_sync >= n.max(1),
            SyncPolicy::Never => false,
        };
        if synced {
            file.sync()?;
            self.stats.syncs += 1;
            self.appends_since_sync = 0;
        }
        if *len >= self.config.segment_bytes {
            self.rotate()?;
        }
        Ok(WalAppend { bytes, synced })
    }

    /// Syncs the active segment regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some((file, _, _)) = self.active.as_mut() {
            file.sync()?;
            self.stats.syncs += 1;
            self.appends_since_sync = 0;
        }
        Ok(())
    }

    /// Seals the active segment (after a final sync); the next append
    /// starts a fresh one. No-op when nothing is active.
    pub fn rotate(&mut self) -> io::Result<()> {
        if let Some((mut file, meta, _)) = self.active.take() {
            file.sync()?;
            self.stats.syncs += 1;
            self.appends_since_sync = 0;
            self.sealed.push(meta);
            self.stats.rotations += 1;
        }
        Ok(())
    }

    /// Deletes sealed segments whose every record is `<= epoch` — called
    /// after a snapshot at `epoch` makes them redundant. The active
    /// segment is never deleted (call [`Wal::rotate`] first to seal it).
    /// Returns the number of segments deleted.
    pub fn retire_through(&mut self, epoch: u64) -> io::Result<usize> {
        let mut kept = Vec::with_capacity(self.sealed.len());
        let mut deleted = 0;
        for seg in self.sealed.drain(..) {
            if seg.last_epoch <= epoch {
                std::fs::remove_file(&seg.path)?;
                deleted += 1;
            } else {
                kept.push(seg);
            }
        }
        self.sealed = kept;
        self.stats.retired_segments += deleted as u64;
        self.stats.segments -= deleted as u64;
        Ok(deleted)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WalStats {
        self.stats
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort final flush so a clean shutdown under
        // `SyncPolicy::Never`/`EveryN` loses nothing.
        let _ = self.sync();
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Crash-point and corruption injection for the WAL write path — the
/// harness behind the recovery proptests. Not `cfg(test)`: the bench
/// harness and downstream crash drills use it too, like
/// `friends_service`'s `FaultPlan`.
pub mod fault {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// What the failing writer does to the byte stream. Offsets and
    /// budgets are *global* across every segment the [`FailingFs`] opens —
    /// the stream position is "bytes the writer believes it wrote so far".
    #[derive(Clone, Copy, Debug)]
    pub enum FailMode {
        /// Persist exactly the first `n` stream bytes, then fail every
        /// write (the process "died" mid-write; a partial record may land
        /// on disk).
        CrashAfter(u64),
        /// Flip bit `bit` of the stream byte at `offset`; writes succeed.
        /// Models silent media corruption the CRC must catch.
        FlipBit {
            /// Global stream offset of the byte to corrupt.
            offset: u64,
            /// Which bit (0–7) to flip.
            bit: u8,
        },
        /// Buffer writes; only a `sync` persists them — and syncs after
        /// the first `n` are silently *dropped* together with their
        /// buffered bytes (a lying disk / lost final flush). `n = 0`
        /// persists nothing.
        DropSyncsAfter(u64),
    }

    /// Shared stream state across the segments one run opens.
    #[derive(Default)]
    struct FailShared {
        written: AtomicU64,
        syncs: AtomicU64,
    }

    /// A [`WalFs`] that injects one [`FailMode`] into the write path.
    /// Clone-cheap; all clones share the stream position.
    #[derive(Clone)]
    pub struct FailingFs {
        mode: FailMode,
        shared: Arc<FailShared>,
    }

    impl FailingFs {
        /// A fresh injector (stream position 0).
        pub fn new(mode: FailMode) -> Self {
            FailingFs {
                mode,
                shared: Arc::new(FailShared::default()),
            }
        }

        /// Bytes the writer has pushed through so far (whether or not
        /// they were persisted).
        pub fn stream_position(&self) -> u64 {
            self.shared.written.load(Ordering::SeqCst)
        }
    }

    impl WalFs for FailingFs {
        fn open_append(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            Ok(Box::new(FailingFile {
                file,
                mode: self.mode,
                shared: Arc::clone(&self.shared),
                buffer: Mutex::new(Vec::new()),
            }))
        }
    }

    struct FailingFile {
        file: std::fs::File,
        mode: FailMode,
        shared: Arc<FailShared>,
        /// Unsynced bytes under [`FailMode::DropSyncsAfter`].
        buffer: Mutex<Vec<u8>>,
    }

    impl WalFile for FailingFile {
        fn append(&mut self, buf: &[u8]) -> io::Result<()> {
            let start = self
                .shared
                .written
                .fetch_add(buf.len() as u64, Ordering::SeqCst);
            match self.mode {
                FailMode::CrashAfter(n) => {
                    let room = n.saturating_sub(start).min(buf.len() as u64) as usize;
                    self.file.write_all(&buf[..room])?;
                    if room < buf.len() {
                        self.file.sync_data().ok();
                        return Err(io::Error::other("injected crash: write budget exhausted"));
                    }
                    Ok(())
                }
                FailMode::FlipBit { offset, bit } => {
                    if (start..start + buf.len() as u64).contains(&offset) {
                        let mut owned = buf.to_vec();
                        owned[(offset - start) as usize] ^= 1 << (bit & 7);
                        self.file.write_all(&owned)
                    } else {
                        self.file.write_all(buf)
                    }
                }
                FailMode::DropSyncsAfter(_) => {
                    self.buffer.lock().unwrap().extend_from_slice(buf);
                    Ok(())
                }
            }
        }

        fn sync(&mut self) -> io::Result<()> {
            match self.mode {
                FailMode::DropSyncsAfter(n) => {
                    let sync_no = self.shared.syncs.fetch_add(1, Ordering::SeqCst);
                    let mut buffer = self.buffer.lock().unwrap();
                    if sync_no < n {
                        self.file.write_all(&buffer)?;
                        buffer.clear();
                        self.file.sync_data()
                    } else {
                        // The lying flush: claim success, persist nothing.
                        buffer.clear();
                        Ok(())
                    }
                }
                _ => self.file.sync_data(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fault::{FailMode, FailingFs};
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "friends-wal-{}-{name}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch(seed: u32) -> MutationBatch {
        MutationBatch::new(vec![
            Mutation::InsertEdge {
                u: seed,
                v: seed + 1,
                weight: 0.5 + seed as f32 * 0.01,
            },
            Mutation::RemoveEdge {
                u: seed,
                v: seed + 2,
            },
            Mutation::AddTagging(Tagging::unit(seed, seed + 3, seed % 7)),
        ])
    }

    #[test]
    fn record_round_trip() {
        let b = batch(4);
        let mut buf = Vec::new();
        let n = encode_record(9, &b, &mut buf);
        assert_eq!(n, buf.len());
        let (epoch, decoded, consumed) = decode_record(&buf, Some(8)).unwrap();
        assert_eq!((epoch, consumed), (9, buf.len()));
        assert_eq!(decoded, b);
    }

    #[test]
    fn empty_batch_round_trips() {
        let mut buf = Vec::new();
        encode_record(1, &MutationBatch::default(), &mut buf);
        let (_, decoded, _) = decode_record(&buf, None).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn epoch_regression_is_corrupt() {
        let mut buf = Vec::new();
        encode_record(5, &batch(1), &mut buf);
        assert!(matches!(
            decode_record(&buf, Some(5)),
            Err(RecordError::Corrupt("epoch regression"))
        ));
    }

    #[test]
    fn truncation_is_torn_at_every_cut() {
        let mut buf = Vec::new();
        encode_record(3, &batch(2), &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(
                decode_record(&buf[..cut], None).unwrap_err(),
                RecordError::Torn,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn append_replay_round_trip_and_rotation() {
        let dir = tmp_dir("roundtrip");
        let mut wal = Wal::open(
            &dir,
            WalConfig {
                sync: SyncPolicy::Always,
                segment_bytes: 96, // force rotations
            },
        )
        .unwrap();
        let batches: Vec<MutationBatch> = (0..6).map(batch).collect();
        for (i, b) in batches.iter().enumerate() {
            let ack = wal.append(i as u64 + 1, b).unwrap();
            assert!(ack.synced && ack.bytes > 0);
        }
        let s = wal.stats();
        assert_eq!(s.appends, 6);
        assert!(s.rotations > 0, "tiny segment budget must rotate");
        assert!(s.segments > 1);
        drop(wal);
        let replay = Wal::replay(&dir).unwrap();
        assert!(!replay.truncated_tail);
        assert_eq!(replay.corrupt_segments, 0);
        assert_eq!(replay.records.len(), 6);
        for (i, (epoch, b)) in replay.records.iter().enumerate() {
            assert_eq!(*epoch, i as u64 + 1);
            assert_eq!(b, &batches[i]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_n_sync_cadence() {
        let dir = tmp_dir("everyn");
        let mut wal = Wal::open(
            &dir,
            WalConfig {
                sync: SyncPolicy::EveryN(3),
                ..WalConfig::default()
            },
        )
        .unwrap();
        let synced: Vec<bool> = (1..=7)
            .map(|e| wal.append(e, &batch(e as u32)).unwrap().synced)
            .collect();
        assert_eq!(synced, [false, false, true, false, false, true, false]);
        assert_eq!(wal.stats().syncs, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_continues_the_chain() {
        let dir = tmp_dir("reopen");
        let cfg = WalConfig::default();
        let mut wal = Wal::open(&dir, cfg.clone()).unwrap();
        wal.append(1, &batch(1)).unwrap();
        wal.append(2, &batch(2)).unwrap();
        drop(wal);
        let mut wal = Wal::open(&dir, cfg).unwrap();
        wal.append(3, &batch(3)).unwrap();
        drop(wal);
        let replay = Wal::replay(&dir).unwrap();
        assert_eq!(
            replay.records.iter().map(|&(e, _)| e).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(!replay.truncated_tail);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_truncates_a_torn_tail_and_appends_cleanly() {
        let dir = tmp_dir("torn");
        let mut wal = Wal::open(&dir, WalConfig::default()).unwrap();
        wal.append(1, &batch(1)).unwrap();
        wal.append(2, &batch(2)).unwrap();
        drop(wal);
        // Tear the tail mid-record.
        let seg = Wal::segment_path(&dir, 1);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 5]).unwrap();
        let replay = Wal::replay(&dir).unwrap();
        assert!(replay.truncated_tail);
        assert_eq!(replay.records.len(), 1);
        // Open repairs: the torn record is gone, new appends chain on.
        let mut wal = Wal::open(&dir, WalConfig::default()).unwrap();
        wal.append(2, &batch(9)).unwrap();
        drop(wal);
        let replay = Wal::replay(&dir).unwrap();
        assert!(!replay.truncated_tail);
        assert_eq!(
            replay.records.iter().map(|&(e, _)| e).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(replay.records[1].1, batch(9));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retire_through_deletes_only_covered_segments() {
        let dir = tmp_dir("retire");
        let mut wal = Wal::open(
            &dir,
            WalConfig {
                segment_bytes: 64,
                ..WalConfig::default()
            },
        )
        .unwrap();
        for e in 1..=8 {
            wal.append(e, &batch(e as u32)).unwrap();
        }
        wal.rotate().unwrap();
        let before = wal.stats().segments;
        assert!(before >= 2);
        let deleted = wal.retire_through(4).unwrap();
        assert!(deleted > 0);
        let replay = Wal::replay(&dir).unwrap();
        // Everything after epoch 4 must survive retirement.
        let epochs: Vec<u64> = replay.records.iter().map(|&(e, _)| e).collect();
        assert!(epochs.contains(&8) && epochs.iter().all(|&e| e > deleted as u64));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_after_budget_yields_a_clean_prefix() {
        let dir = tmp_dir("crash");
        let fs = Arc::new(FailingFs::new(FailMode::CrashAfter(100)));
        let mut wal = Wal::open_with(&dir, WalConfig::default(), fs).unwrap();
        let mut appended = 0;
        for e in 1..=10u64 {
            match wal.append(e, &batch(e as u32)) {
                Ok(_) => appended += 1,
                Err(_) => break,
            }
        }
        assert!(appended < 10, "the budget must kill the writer");
        drop(wal);
        let replay = Wal::replay(&dir).unwrap();
        assert!(replay.records.len() <= appended + 1);
        for (i, &(e, _)) in replay.records.iter().enumerate() {
            assert_eq!(e, i as u64 + 1, "replay must be a clean prefix");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_bit_is_detected_not_served() {
        let dir = tmp_dir("flip");
        // Corrupt one payload byte of the second record.
        let fs = Arc::new(FailingFs::new(FailMode::FlipBit { offset: 80, bit: 3 }));
        let mut wal = Wal::open_with(&dir, WalConfig::default(), fs).unwrap();
        for e in 1..=3u64 {
            wal.append(e, &batch(e as u32)).unwrap();
        }
        drop(wal);
        let replay = Wal::replay(&dir).unwrap();
        assert!(replay.records.len() < 3, "corruption must stop the scan");
        assert!(replay.truncated_tail || replay.corrupt_segments > 0);
        for (i, &(e, _)) in replay.records.iter().enumerate() {
            assert_eq!(e, i as u64 + 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropped_final_flush_loses_only_the_unsynced_suffix() {
        let dir = tmp_dir("dropflush");
        let fs = Arc::new(FailingFs::new(FailMode::DropSyncsAfter(2)));
        let mut wal = Wal::open_with(&dir, WalConfig::default(), fs).unwrap();
        for e in 1..=5u64 {
            let ack = wal.append(e, &batch(e as u32)).unwrap();
            assert!(ack.synced, "Always policy reports synced (the disk lies)");
        }
        drop(wal);
        let replay = Wal::replay(&dir).unwrap();
        assert_eq!(
            replay.records.iter().map(|&(e, _)| e).collect::<Vec<_>>(),
            vec![1, 2],
            "only the two honestly-flushed records survive"
        );
        assert!(!replay.truncated_tail, "lost flushes tear at record edges");
        std::fs::remove_dir_all(&dir).ok();
    }
}
