//! Zipf-distributed sampling.
//!
//! Tag and item popularity in social-tagging systems is famously heavy-
//! tailed; the evaluation sweeps the Zipf exponent θ (Fig 7) to show how
//! skew affects the processors. The sampler uses the Zipfian rejection-free
//! inverse-CDF over a precomputed cumulative table: exact, `O(log n)` per
//! sample, fine for the `n ≤ 10^7` universes used here.

use rand::Rng;

/// A Zipf(θ) sampler over ranks `0..n` (rank 0 is the most popular).
///
/// `P(rank = r) ∝ 1 / (r + 1)^θ`. `θ = 0` degenerates to uniform.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. `n` must be ≥ 1; `theta` must be finite and ≥ 0.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 1, "Zipf needs a non-empty universe");
        assert!(theta.is_finite() && theta >= 0.0, "bad theta {theta}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        // Guard against floating-point undershoot at the tail.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the universe is empty (never true — `new` requires `n ≥ 1`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(100), 0.0);
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12, "rank {r}");
        }
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let flat = Zipf::new(1000, 0.5);
        let steep = Zipf::new(1000, 1.5);
        assert!(steep.pmf(0) > flat.pmf(0));
        assert!(steep.pmf(999) < flat.pmf(999));
    }

    #[test]
    fn samples_match_pmf() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mut counts = vec![0usize; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in [0usize, 1, 5, 20] {
            let emp = counts[r] as f64 / n as f64;
            let exp = z.pmf(r);
            assert!(
                (emp - exp).abs() < 0.25 * exp + 0.002,
                "rank {r}: emp {emp} exp {exp}"
            );
        }
        // Ranks are always in range.
        assert_eq!(counts.iter().sum::<usize>(), n);
    }

    #[test]
    fn singleton_universe() {
        let z = Zipf::new(1, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty universe")]
    fn zero_universe_panics() {
        Zipf::new(0, 1.0);
    }
}
