//! The tagging store: a read-optimized column store over
//! `(user, item, tag, weight)` annotations with two sort orders.
//!
//! * **by user** — `(user, tag, item)` order, for friend-expansion: when the
//!   expansion visits user `v`, it scans `v`'s postings for the query tags.
//! * **by tag** — `(tag, item, user)` order, for building inverted indexes
//!   and the global baseline.
//!
//! Duplicate `(user, item, tag)` triples are merged at build time by summing
//! weights (repeated annotation = stronger signal).

use crate::{ItemId, TagId, Tagging, UserId};
use serde::{Deserialize, Serialize};

/// Immutable social-tagging dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TagStore {
    num_users: u32,
    num_items: u32,
    num_tags: u32,
    /// Sorted by `(user, tag, item)`.
    by_user: Vec<Tagging>,
    /// `user_offsets[u] .. user_offsets[u+1]` is `u`'s slice of `by_user`.
    user_offsets: Vec<usize>,
    /// Sorted by `(tag, item, user)`.
    by_tag: Vec<Tagging>,
    /// `tag_offsets[t] .. tag_offsets[t+1]` is `t`'s slice of `by_tag`.
    tag_offsets: Vec<usize>,
}

impl TagStore {
    /// Builds a store. Ids must satisfy `user < num_users`, `item <
    /// num_items`, `tag < num_tags`; duplicates are merged (weights summed).
    ///
    /// # Panics
    /// Panics on out-of-range ids or non-finite weights.
    pub fn build(
        num_users: u32,
        num_items: u32,
        num_tags: u32,
        mut taggings: Vec<Tagging>,
    ) -> Self {
        for t in &taggings {
            assert!(t.user < num_users, "user {} out of range", t.user);
            assert!(t.item < num_items, "item {} out of range", t.item);
            assert!(t.tag < num_tags, "tag {} out of range", t.tag);
            assert!(
                t.weight.is_finite() && t.weight >= 0.0,
                "bad weight {}",
                t.weight
            );
        }
        taggings.sort_unstable_by_key(|t| (t.user, t.tag, t.item));
        taggings.dedup_by(|next, kept| {
            if next.user == kept.user && next.tag == kept.tag && next.item == kept.item {
                kept.weight += next.weight;
                true
            } else {
                false
            }
        });
        let by_user = taggings;

        let mut user_offsets = vec![0usize; num_users as usize + 1];
        for t in &by_user {
            user_offsets[t.user as usize + 1] += 1;
        }
        for i in 1..user_offsets.len() {
            user_offsets[i] += user_offsets[i - 1];
        }

        let mut by_tag = by_user.clone();
        by_tag.sort_unstable_by_key(|t| (t.tag, t.item, t.user));
        let mut tag_offsets = vec![0usize; num_tags as usize + 1];
        for t in &by_tag {
            tag_offsets[t.tag as usize + 1] += 1;
        }
        for i in 1..tag_offsets.len() {
            tag_offsets[i] += tag_offsets[i - 1];
        }

        TagStore {
            num_users,
            num_items,
            num_tags,
            by_user,
            user_offsets,
            by_tag,
            tag_offsets,
        }
    }

    /// Returns a store with `appends` added — the live-graph posting path.
    /// Universe sizes are unchanged; duplicates of existing annotations
    /// merge by summing weights, exactly as [`TagStore::build`] would have
    /// merged them in one pass.
    ///
    /// # Panics
    /// Panics on out-of-range ids or non-finite weights (same contract as
    /// [`TagStore::build`]).
    pub fn with_appends(&self, appends: &[Tagging]) -> TagStore {
        let mut all = Vec::with_capacity(self.by_user.len() + appends.len());
        all.extend_from_slice(&self.by_user);
        all.extend_from_slice(appends);
        TagStore::build(self.num_users, self.num_items, self.num_tags, all)
    }

    /// Number of users in the universe.
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Number of items in the universe.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Number of tags in the universe.
    pub fn num_tags(&self) -> u32 {
        self.num_tags
    }

    /// Total distinct `(user, item, tag)` annotations.
    pub fn num_taggings(&self) -> usize {
        self.by_user.len()
    }

    /// All annotations by `user`, sorted by `(tag, item)`.
    pub fn user_taggings(&self, user: UserId) -> &[Tagging] {
        let u = user as usize;
        &self.by_user[self.user_offsets[u]..self.user_offsets[u + 1]]
    }

    /// `user`'s annotations carrying `tag`, sorted by item.
    pub fn user_tag_taggings(&self, user: UserId, tag: TagId) -> &[Tagging] {
        let all = self.user_taggings(user);
        let lo = all.partition_point(|t| t.tag < tag);
        let hi = all.partition_point(|t| t.tag <= tag);
        &all[lo..hi]
    }

    /// All annotations carrying `tag`, sorted by `(item, user)`.
    pub fn tag_taggings(&self, tag: TagId) -> &[Tagging] {
        let t = tag as usize;
        &self.by_tag[self.tag_offsets[t]..self.tag_offsets[t + 1]]
    }

    /// Aggregated global per-item score for `tag`: `Σ_user weight`, sorted
    /// by item id. This feeds the non-personalized baseline index.
    pub fn global_item_scores(&self, tag: TagId) -> Vec<(ItemId, f32)> {
        let mut out: Vec<(ItemId, f32)> = Vec::new();
        for t in self.tag_taggings(tag) {
            match out.last_mut() {
                Some(last) if last.0 == t.item => last.1 += t.weight,
                _ => out.push((t.item, t.weight)),
            }
        }
        out
    }

    /// Users who used `tag` at least once (sorted, deduplicated).
    pub fn tag_users(&self, tag: TagId) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.tag_taggings(tag).iter().map(|t| t.user).collect();
        users.sort_unstable();
        users.dedup();
        users
    }

    /// Largest single annotation weight for `tag` across all users — the
    /// per-user contribution bound used by FriendExpansion's terminator.
    pub fn tag_max_weight(&self, tag: TagId) -> f32 {
        self.tag_taggings(tag)
            .iter()
            .map(|t| t.weight)
            .fold(0.0, f32::max)
    }

    /// Largest **per-user total** weight for `tag`: `max_u Σ_{items} w`.
    /// A tighter per-visit bound than `tag_max_weight × items`.
    pub fn tag_max_user_mass(&self, tag: TagId) -> f32 {
        let mut per_user: std::collections::HashMap<UserId, f32> = std::collections::HashMap::new();
        for t in self.tag_taggings(tag) {
            *per_user.entry(t.user).or_insert(0.0) += t.weight;
        }
        per_user.into_values().fold(0.0f32, f32::max)
    }

    /// Distinct items annotated with `tag`.
    pub fn tag_num_items(&self, tag: TagId) -> usize {
        let mut n = 0usize;
        let mut last = u32::MAX;
        for t in self.tag_taggings(tag) {
            if t.item != last {
                n += 1;
                last = t.item;
            }
        }
        n
    }

    /// Iterates every stored annotation once (user order).
    pub fn iter(&self) -> impl Iterator<Item = &Tagging> {
        self.by_user.iter()
    }

    /// Approximate resident memory, in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.by_user.len() + self.by_tag.len()) * std::mem::size_of::<Tagging>()
            + (self.user_offsets.len() + self.tag_offsets.len()) * std::mem::size_of::<usize>()
    }
}

/// Dataset-level statistics (Table 1 rows).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoreStats {
    pub users: u32,
    pub items: u32,
    pub tags: u32,
    pub taggings: usize,
    pub taggings_per_user_mean: f64,
    pub taggings_per_user_max: usize,
    pub items_per_tag_mean: f64,
    pub items_per_tag_max: usize,
}

impl TagStore {
    /// Computes [`StoreStats`].
    pub fn stats(&self) -> StoreStats {
        let mut per_user_max = 0usize;
        for u in 0..self.num_users {
            per_user_max = per_user_max.max(self.user_taggings(u).len());
        }
        let mut per_tag_max = 0usize;
        let mut per_tag_total = 0usize;
        for t in 0..self.num_tags {
            let n = self.tag_num_items(t);
            per_tag_max = per_tag_max.max(n);
            per_tag_total += n;
        }
        StoreStats {
            users: self.num_users,
            items: self.num_items,
            tags: self.num_tags,
            taggings: self.num_taggings(),
            taggings_per_user_mean: self.num_taggings() as f64 / self.num_users.max(1) as f64,
            taggings_per_user_max: per_user_max,
            items_per_tag_mean: per_tag_total as f64 / self.num_tags.max(1) as f64,
            items_per_tag_max: per_tag_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store() -> TagStore {
        TagStore::build(
            3,
            5,
            4,
            vec![
                Tagging::unit(0, 0, 1),
                Tagging::unit(0, 1, 1),
                Tagging::unit(0, 1, 2),
                Tagging::unit(1, 1, 1),
                Tagging {
                    user: 2,
                    item: 4,
                    tag: 3,
                    weight: 2.5,
                },
                Tagging::unit(1, 1, 1), // duplicate: weights sum to 2.0
            ],
        )
    }

    #[test]
    fn build_merges_duplicates() {
        let s = small_store();
        assert_eq!(s.num_taggings(), 5);
        let t = s.user_tag_taggings(1, 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].weight, 2.0);
    }

    #[test]
    fn user_slices() {
        let s = small_store();
        assert_eq!(s.user_taggings(0).len(), 3);
        assert_eq!(s.user_taggings(1).len(), 1);
        assert_eq!(s.user_taggings(2).len(), 1);
        // Sorted by (tag, item).
        let u0 = s.user_taggings(0);
        assert!(u0
            .windows(2)
            .all(|w| (w[0].tag, w[0].item) <= (w[1].tag, w[1].item)));
    }

    #[test]
    fn user_tag_slices() {
        let s = small_store();
        let u0t1 = s.user_tag_taggings(0, 1);
        assert_eq!(u0t1.len(), 2);
        assert!(u0t1.iter().all(|t| t.tag == 1 && t.user == 0));
        assert!(s.user_tag_taggings(0, 3).is_empty());
        assert!(s.user_tag_taggings(2, 1).is_empty());
    }

    #[test]
    fn tag_slices_and_aggregates() {
        let s = small_store();
        let t1 = s.tag_taggings(1);
        assert_eq!(t1.len(), 3);
        let g = s.global_item_scores(1);
        assert_eq!(g, vec![(0, 1.0), (1, 3.0)]);
        assert_eq!(s.tag_users(1), vec![0, 1]);
        assert_eq!(s.tag_num_items(1), 2);
        assert_eq!(s.tag_max_weight(1), 2.0);
        assert_eq!(s.tag_max_user_mass(1), 2.0);
        // Tag 0 unused.
        assert!(s.tag_taggings(0).is_empty());
        assert_eq!(s.tag_max_weight(0), 0.0);
    }

    #[test]
    fn tag_max_user_mass_sums_within_user() {
        // User 0 tags two items with tag 1 (1.0 each): mass 2.0, while the
        // single max weight is also... make weights distinct to separate.
        let s = TagStore::build(
            2,
            3,
            2,
            vec![
                Tagging {
                    user: 0,
                    item: 0,
                    tag: 1,
                    weight: 0.6,
                },
                Tagging {
                    user: 0,
                    item: 1,
                    tag: 1,
                    weight: 0.6,
                },
                Tagging {
                    user: 1,
                    item: 2,
                    tag: 1,
                    weight: 0.9,
                },
            ],
        );
        assert!((s.tag_max_weight(1) - 0.9).abs() < 1e-6);
        assert!((s.tag_max_user_mass(1) - 1.2).abs() < 1e-6);
    }

    #[test]
    fn empty_store() {
        let s = TagStore::build(0, 0, 0, vec![]);
        assert_eq!(s.num_taggings(), 0);
        let stats = s.stats();
        assert_eq!(stats.taggings, 0);
    }

    #[test]
    fn stats_fields() {
        let s = small_store();
        let st = s.stats();
        assert_eq!(st.users, 3);
        assert_eq!(st.taggings, 5);
        assert_eq!(st.taggings_per_user_max, 3);
        assert_eq!(st.items_per_tag_max, 2);
        assert!(st.taggings_per_user_mean > 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_user_panics() {
        TagStore::build(1, 1, 1, vec![Tagging::unit(1, 0, 0)]);
    }

    #[test]
    fn memory_positive() {
        assert!(small_store().memory_bytes() > 0);
    }

    #[test]
    fn with_appends_matches_one_pass_build() {
        let s = small_store();
        let extra = vec![
            Tagging::unit(2, 3, 0),
            Tagging::unit(1, 1, 1), // merges into the existing (1,1,1)
        ];
        let appended = s.with_appends(&extra);
        let mut all: Vec<Tagging> = s.iter().copied().collect();
        all.extend_from_slice(&extra);
        let rebuilt = TagStore::build(3, 5, 4, all);
        assert_eq!(appended.num_taggings(), rebuilt.num_taggings());
        for u in 0..3 {
            assert_eq!(appended.user_taggings(u), rebuilt.user_taggings(u));
        }
        assert_eq!(appended.user_tag_taggings(1, 1)[0].weight, 3.0);
        // The original is untouched.
        assert_eq!(s.user_tag_taggings(1, 1)[0].weight, 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_appends_rejects_out_of_range() {
        small_store().with_appends(&[Tagging::unit(0, 9, 0)]);
    }
}
