//! String interning for tag and item vocabularies.
//!
//! Examples and the CLI work with human-readable tag names; the engine works
//! with dense `u32` ids. [`Vocab`] maps between the two.

use std::collections::HashMap;

/// A bidirectional `String ↔ u32` interner with dense, stable ids.
#[derive(Clone, Debug, Default)]
pub struct Vocab {
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

impl Vocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Id of `name` if already interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// Name of `id`, if assigned.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("rust");
        let b = v.intern("graphs");
        let a2 = v.intern("rust");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn lookup_both_directions() {
        let mut v = Vocab::new();
        let id = v.intern("databases");
        assert_eq!(v.get("databases"), Some(id));
        assert_eq!(v.name(id), Some("databases"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.name(999), None);
    }

    #[test]
    fn iteration_in_id_order() {
        let mut v = Vocab::new();
        v.intern("a");
        v.intern("b");
        v.intern("c");
        let names: Vec<&str> = v.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_vocab() {
        let v = Vocab::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }
}
