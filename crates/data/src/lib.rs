//! # friends-data
//!
//! Social-tagging data substrate: the user–item–tag store, Zipf samplers,
//! homophilous synthetic workload generators and the three dataset presets
//! (Delicious-like, Flickr-like, CiteULike-like) used throughout the
//! evaluation, plus query-workload generation.
//!
//! The real crawls evaluated by the paper family are proprietary; per the
//! substitution rule these generators reproduce the *distributional shape*
//! the algorithms are sensitive to (degree skew, tag skew, homophily) with
//! every axis exposed as a parameter. See `DESIGN.md` §3.
//!
//! ```
//! use friends_data::datasets::{DatasetSpec, Scale};
//!
//! let ds = DatasetSpec::delicious_like(Scale::Tiny).build(7);
//! assert!(ds.store.num_taggings() > 0);
//! assert_eq!(ds.graph.num_nodes() as u32, ds.store.num_users());
//! ```

pub mod crc;
pub mod datasets;
pub mod generator;
pub mod ids;
pub mod io;
pub mod mutations;
pub mod queries;
pub mod requests;
pub mod store;
pub mod wal;
pub mod zipf;

/// User identifier (also a graph [`friends_graph::NodeId`]).
pub type UserId = u32;

/// Item (document/photo/paper/URL) identifier.
pub type ItemId = u32;

/// Tag identifier.
pub type TagId = u32;

/// A single social annotation: `user` tagged `item` with `tag`, with an
/// application-level weight (rating, confidence, frequency).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tagging {
    pub user: UserId,
    pub item: ItemId,
    pub tag: TagId,
    pub weight: f32,
}

impl Tagging {
    /// Convenience constructor with weight 1.0.
    pub fn unit(user: UserId, item: ItemId, tag: TagId) -> Self {
        Tagging {
            user,
            item,
            tag,
            weight: 1.0,
        }
    }
}
