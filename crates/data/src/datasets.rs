//! Dataset presets: the three synthetic stand-ins for the crawls this paper
//! family evaluates on, each at several scales.
//!
//! | Preset | Models | Graph | Tagging shape |
//! |--------|--------|-------|---------------|
//! | Delicious-like | social bookmarking | Barabási–Albert (hubs) | many tags, strong tag reuse |
//! | Flickr-like | photo sharing | Watts–Strogatz (contacts cliques) | fewer tags/user, strong homophily |
//! | CiteULike-like | paper libraries | planted partition (research groups) | niche tags, community-correlated |

use crate::generator::{generate, WorkloadParams};
use crate::store::TagStore;
use friends_graph::generators::{self, WeightModel};
use friends_graph::CsrGraph;

/// Dataset scale knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// ~500 users — unit tests and doc examples.
    Tiny,
    /// ~5k users — integration tests and quick benches.
    Small,
    /// ~50k users — headline benchmarks.
    Medium,
    /// ~200k users — scalability points (Fig 4).
    Large,
    /// Exact user count — scalability sweeps.
    Custom(usize),
}

impl Scale {
    /// Number of users at this scale.
    pub fn users(self) -> usize {
        match self {
            Scale::Tiny => 500,
            Scale::Small => 5_000,
            Scale::Medium => 50_000,
            Scale::Large => 200_000,
            Scale::Custom(n) => n,
        }
    }
}

/// Which preset family to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    Delicious,
    Flickr,
    CiteULike,
}

/// A fully specified synthetic dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    pub family: Family,
    pub scale: Scale,
    pub workload: WorkloadParams,
}

impl DatasetSpec {
    /// Social bookmarking: scale-free graph, rich vocabulary, moderate
    /// homophily.
    pub fn delicious_like(scale: Scale) -> Self {
        let users = scale.users();
        DatasetSpec {
            family: Family::Delicious,
            scale,
            workload: WorkloadParams {
                num_items: (users * 20) as u32,
                num_tags: ((users / 4).max(64)) as u32,
                mean_taggings_per_user: 30.0,
                item_theta: 1.0,
                tag_theta: 1.1,
                homophily: 0.5,
                weighted: false,
            },
        }
    }

    /// Photo sharing: small-world contact graph, heavier homophily, smaller
    /// vocabulary, rating-like weights.
    pub fn flickr_like(scale: Scale) -> Self {
        let users = scale.users();
        DatasetSpec {
            family: Family::Flickr,
            scale,
            workload: WorkloadParams {
                num_items: (users * 40) as u32,
                num_tags: ((users / 10).max(32)) as u32,
                mean_taggings_per_user: 15.0,
                item_theta: 0.9,
                tag_theta: 1.2,
                homophily: 0.7,
                weighted: true,
            },
        }
    }

    /// Paper libraries: community graph (research groups), niche tags.
    pub fn citeulike_like(scale: Scale) -> Self {
        let users = scale.users();
        DatasetSpec {
            family: Family::CiteULike,
            scale,
            workload: WorkloadParams {
                num_items: (users * 10) as u32,
                num_tags: ((users / 2).max(128)) as u32,
                mean_taggings_per_user: 25.0,
                item_theta: 0.8,
                tag_theta: 0.9,
                homophily: 0.6,
                weighted: false,
            },
        }
    }

    /// Human-readable name, e.g. `"delicious-small"`.
    pub fn name(&self) -> String {
        let fam = match self.family {
            Family::Delicious => "delicious",
            Family::Flickr => "flickr",
            Family::CiteULike => "citeulike",
        };
        let sc = match self.scale {
            Scale::Tiny => "tiny".to_owned(),
            Scale::Small => "small".to_owned(),
            Scale::Medium => "medium".to_owned(),
            Scale::Large => "large".to_owned(),
            Scale::Custom(n) => format!("{n}u"),
        };
        format!("{fam}-{sc}")
    }

    /// Materializes the dataset (graph + tag store), deterministic in `seed`.
    pub fn build(&self, seed: u64) -> Dataset {
        let users = self.scale.users();
        let graph = match self.family {
            Family::Delicious => generators::barabasi_albert(users, 5, seed),
            Family::Flickr => generators::watts_strogatz(users, 10, 0.1, seed),
            Family::CiteULike => {
                let communities = (users / 50).max(2);
                let p_in = (8.0 / 50.0f64).min(1.0);
                let p_out = 2.0 / users as f64;
                generators::planted_partition(users, communities, p_in, p_out, seed).0
            }
        };
        // Tie strengths: shared-neighborhood weights make proximity
        // informative (pure topology would make all friends equidistant).
        let graph =
            generators::assign_weights(&graph, WeightModel::Jaccard { floor: 0.1 }, seed ^ 0xA5A5);
        let store = generate(&graph, &self.workload, seed ^ 0x5A5A);
        Dataset {
            name: self.name(),
            graph,
            store,
        }
    }
}

/// A materialized dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    pub name: String,
    pub graph: CsrGraph,
    pub store: TagStore,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_build_at_tiny_scale() {
        for spec in [
            DatasetSpec::delicious_like(Scale::Tiny),
            DatasetSpec::flickr_like(Scale::Tiny),
            DatasetSpec::citeulike_like(Scale::Tiny),
        ] {
            let ds = spec.build(3);
            assert_eq!(ds.graph.num_nodes(), 500, "{}", ds.name);
            assert_eq!(ds.store.num_users(), 500);
            assert!(ds.store.num_taggings() > 1_000, "{}", ds.name);
            assert!(ds.graph.num_edges() > 500, "{}", ds.name);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            DatasetSpec::delicious_like(Scale::Tiny).name(),
            "delicious-tiny"
        );
        assert_eq!(
            DatasetSpec::flickr_like(Scale::Small).name(),
            "flickr-small"
        );
        assert_eq!(
            DatasetSpec::citeulike_like(Scale::Medium).name(),
            "citeulike-medium"
        );
    }

    #[test]
    fn builds_are_deterministic() {
        let spec = DatasetSpec::delicious_like(Scale::Tiny);
        let a = spec.build(9);
        let b = spec.build(9);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.store.num_taggings(), b.store.num_taggings());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = DatasetSpec::flickr_like(Scale::Tiny);
        let a = spec.build(1);
        let b = spec.build(2);
        assert_ne!(
            (a.graph.num_edges(), a.store.num_taggings()),
            (b.graph.num_edges(), b.store.num_taggings())
        );
    }

    #[test]
    fn weights_are_informative() {
        let ds = DatasetSpec::delicious_like(Scale::Tiny).build(4);
        let mut distinct = std::collections::BTreeSet::new();
        for (_, _, w) in ds.graph.undirected_edges().take(200) {
            distinct.insert((w * 1000.0) as i64);
        }
        assert!(distinct.len() > 3, "weights should vary, got {distinct:?}");
    }
}
