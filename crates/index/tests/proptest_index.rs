//! Property-based tests for the IR substrate: codec round-trips, cursor
//! semantics against a naive reference, and agreement of all top-k
//! algorithms with brute force.

use friends_index::accumulate::{daat_topk, taat_topk};
use friends_index::postings::{Encoding, PostingConfig, PostingList};
use friends_index::topk::{brute_force_topk, nra_topk, ta_topk, wand_topk, ScoreSortedList};
use friends_index::varint;
use friends_index::{DocId, Score};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = PostingConfig> {
    (
        prop_oneof![Just(Encoding::Raw), Just(Encoding::DeltaVarint)],
        1usize..40,
        any::<bool>(),
    )
        .prop_map(|(encoding, block_len, skips_enabled)| PostingConfig {
            encoding,
            block_len,
            skips_enabled,
        })
}

fn arb_entries() -> impl Strategy<Value = Vec<(DocId, Score)>> {
    proptest::collection::vec((0u32..500, 0.01f32..5.0), 0..200)
}

/// Reference semantics: sorted by doc, duplicate scores summed.
fn reference(entries: &[(DocId, Score)]) -> Vec<(DocId, Score)> {
    let mut m: std::collections::BTreeMap<DocId, f32> = std::collections::BTreeMap::new();
    for &(d, s) in entries {
        *m.entry(d).or_insert(0.0) += s;
    }
    m.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn varint_u32_round_trip(v in any::<u32>()) {
        let mut buf = Vec::new();
        varint::write_u32(&mut buf, v);
        prop_assert_eq!(buf.len(), varint::len_u32(v));
        let mut s = buf.as_slice();
        prop_assert_eq!(varint::read_u32(&mut s), Some(v));
        prop_assert!(s.is_empty());
    }

    #[test]
    fn varint_u64_round_trip(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let mut s = buf.as_slice();
        prop_assert_eq!(varint::read_u64(&mut s), Some(v));
    }

    #[test]
    fn delta_coding_round_trip(mut ids in proptest::collection::btree_set(0u32..1_000_000, 0..300)) {
        let ids: Vec<u32> = std::mem::take(&mut ids).into_iter().collect();
        let mut buf = Vec::new();
        varint::encode_sorted(&ids, &mut buf);
        let mut s = buf.as_slice();
        prop_assert_eq!(varint::decode_sorted(&mut s, ids.len()), Some(ids));
    }

    /// Posting lists reproduce the reference under every configuration, and
    /// random access agrees with the decoded content.
    #[test]
    fn postings_round_trip(entries in arb_entries(), cfg in arb_config()) {
        let want = reference(&entries);
        let list = PostingList::build(entries, cfg);
        let got = list.to_vec();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.0, w.0);
            prop_assert!((g.1 - w.1).abs() < 1e-4);
        }
        for &(d, s) in &want {
            let q = list.score_of(d).expect("present doc");
            prop_assert!((q - s).abs() < 1e-4);
        }
        prop_assert_eq!(list.score_of(1_000_000), None);
    }

    /// `advance(target)` lands on the first doc >= target, matching a naive
    /// scan, from any starting position.
    #[test]
    fn cursor_advance_matches_naive(
        entries in arb_entries(),
        cfg in arb_config(),
        targets in proptest::collection::vec(0u32..600, 1..20),
    ) {
        let want = reference(&entries);
        let list = PostingList::build(entries, cfg);
        let mut cur = list.cursor();
        let mut sorted_targets = targets;
        sorted_targets.sort_unstable();
        for &t in &sorted_targets {
            cur.advance(t);
            let expect = want.iter().map(|&(d, _)| d).find(|&d| d >= t);
            prop_assert_eq!(cur.doc(), expect, "target {}", t);
            if let Some(d) = cur.doc() {
                let s = want.iter().find(|&&(x, _)| x == d).unwrap().1;
                prop_assert!((cur.score() - s).abs() < 1e-4);
            }
        }
    }

    /// TA, NRA, WAND, TAAT and DAAT all agree with brute force on the
    /// returned doc set (scores within tolerance; near-ties may permute).
    #[test]
    fn all_topk_algorithms_agree(
        lists_raw in proptest::collection::vec(arb_entries(), 1..4),
        k in 1usize..12,
    ) {
        let sorted: Vec<ScoreSortedList> =
            lists_raw.iter().cloned().map(ScoreSortedList::build).collect();
        let plists: Vec<PostingList> = lists_raw
            .iter()
            .cloned()
            .map(|e| PostingList::build(e, PostingConfig::default()))
            .collect();
        let prefs: Vec<&PostingList> = plists.iter().collect();

        let want = brute_force_topk(&sorted, k);
        let want_scores: std::collections::HashMap<DocId, f32> =
            want.iter().copied().collect();
        let check = |got: Vec<(DocId, Score)>, name: &str| -> Result<(), TestCaseError> {
            prop_assert_eq!(got.len(), want.len(), "{} length", name);
            for (d, s) in &got {
                match want_scores.get(d) {
                    Some(ws) => prop_assert!((*ws - *s).abs() < 1e-3,
                        "{}: doc {} score {} vs {}", name, d, s, ws),
                    None => {
                        // Tie at the boundary: the score must equal the
                        // k-th best within tolerance.
                        let kth = want.last().unwrap().1;
                        prop_assert!((kth - *s).abs() < 1e-3,
                            "{}: unexpected doc {} (score {})", name, d, s);
                    }
                }
            }
            Ok(())
        };
        check(ta_topk(&sorted, k).0, "TA")?;
        check(nra_topk(&sorted, k).0, "NRA")?;
        check(wand_topk(&prefs, k).0, "WAND")?;
        check(taat_topk(&prefs, k), "TAAT")?;
        check(daat_topk(&prefs, k), "DAAT")?;
    }

    /// The list-level max score really bounds every posting.
    #[test]
    fn max_score_is_sound(entries in arb_entries(), cfg in arb_config()) {
        let list = PostingList::build(entries, cfg);
        let mut cur = list.cursor();
        while let Some(_d) = cur.doc() {
            prop_assert!(cur.score() <= list.max_score() + 1e-6);
            prop_assert!(cur.score() <= cur.block_max() + 1e-6);
            cur.next();
        }
    }

    /// `decode_sorted_into` equals `decode_sorted` and reuses its buffer:
    /// repeated decodes into one scratch vector reproduce every sequence.
    #[test]
    fn decode_into_matches_decode(
        seqs in proptest::collection::vec(
            proptest::collection::btree_set(0u32..1_000_000, 0..120), 1..6),
    ) {
        let mut scratch = Vec::new();
        for ids in &seqs {
            let ids: Vec<u32> = ids.iter().copied().collect();
            let mut buf = Vec::new();
            varint::encode_sorted(&ids, &mut buf);
            let mut a = buf.as_slice();
            let mut b = buf.as_slice();
            let want = varint::decode_sorted(&mut a, ids.len());
            prop_assert_eq!(
                varint::decode_sorted_into(&mut b, ids.len(), &mut scratch),
                want.as_ref().map(|_| ())
            );
            prop_assert_eq!(Some(&scratch), want.as_ref());
            prop_assert!(a.is_empty() && b.is_empty());
        }
    }

    /// Block-boundary decode: starting a decode at any block's skip-pointer
    /// byte offset reproduces exactly that block's slice of the full-stream
    /// decode — the precondition for sound block skipping (and for any
    /// future SIMD group decode that processes one block at a time).
    #[test]
    fn block_offset_decode_equals_full_stream(
        entries in arb_entries(),
        block_len in 1usize..40,
    ) {
        let cfg = PostingConfig {
            encoding: Encoding::DeltaVarint,
            block_len,
            skips_enabled: true,
        };
        let list = PostingList::build(entries, cfg);
        let full: Vec<DocId> = list.to_vec().iter().map(|&(d, _)| d).collect();
        let mut scratch = Vec::new();
        for bi in 0..list.num_blocks() {
            let b = list.block(bi);
            // Decode from the raw skip-pointer bytes…
            let mut bytes = list.block_bytes(bi);
            let decoded = varint::decode_sorted(&mut bytes, b.count)
                .expect("block decode failed");
            prop_assert!(bytes.is_empty(), "block {} bytes not fully consumed", bi);
            prop_assert_eq!(&decoded, &full[b.elem_start..b.elem_start + b.count]);
            // …and through the block accessor used by the operator.
            list.block_docs_into(bi, &mut scratch);
            prop_assert_eq!(&scratch, &decoded);
            prop_assert_eq!(decoded.first().copied(), Some(b.first_doc));
            prop_assert_eq!(decoded.last().copied(), Some(b.last_doc));
        }
    }

    /// σ-aware builds agree with plain builds on the doc/score content for
    /// identical input, regardless of block geometry, and their per-block
    /// tagger ranges cover every group member.
    #[test]
    fn sigma_build_agrees_with_plain_build(
        triples in proptest::collection::vec((0u32..300, 0u32..40, 0.01f32..3.0), 0..150),
        block_len in 1usize..40,
        raw_encoding in any::<bool>(),
    ) {
        let cfg = PostingConfig {
            encoding: if raw_encoding { Encoding::Raw } else { Encoding::DeltaVarint },
            block_len,
            skips_enabled: true,
        };
        let sigma_list = PostingList::build_with_taggers(triples.clone(), cfg);
        // Reference masses: merge (doc, tagger) duplicates, then f32-sum per
        // doc in ascending tagger order — the documented accumulation order.
        let mut merged = triples;
        merged.sort_unstable_by_key(|&(d, u, _)| (d, u));
        merged.dedup_by(|n, kept| {
            if n.0 == kept.0 && n.1 == kept.1 {
                kept.2 += n.2;
                true
            } else {
                false
            }
        });
        let mut want: Vec<(DocId, f32)> = Vec::new();
        for &(d, _, w) in &merged {
            match want.last_mut() {
                Some(last) if last.0 == d => last.1 += w,
                _ => want.push((d, w)),
            }
        }
        let got = sigma_list.to_vec();
        prop_assert_eq!(got.len(), want.len());
        for ((da, sa), (db, sb)) in got.iter().zip(&want) {
            prop_assert_eq!(da, db);
            prop_assert_eq!(sa.to_bits(), sb.to_bits(), "doc {} mass bits", da);
        }
        for bi in 0..sigma_list.num_blocks() {
            let blk = sigma_list.block(bi);
            for i in blk.elem_start..blk.elem_start + blk.count {
                let group = sigma_list.taggers_of(i);
                prop_assert!(group.windows(2).all(|w| w[0].0 < w[1].0));
                for &(u, _) in group {
                    prop_assert!((blk.min_tagger..=blk.max_tagger).contains(&u));
                }
                prop_assert!(sigma_list.score_at(i) <= blk.sigma_base);
            }
        }
    }
}
