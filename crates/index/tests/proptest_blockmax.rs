//! Differential property suite for the block-max σ-aware WAND operator:
//! for random σ-aware posting lists, random block geometries and random σ
//! assignments (sparse supports and decay envelopes), [`BlockMaxWand`] must
//! return **byte-identical** rankings — same docs, same order, bit-equal
//! f32 scores — to a naive full-scan reference, under both accumulation
//! modes. Deterministic adversarial cases (all-ties corpora, single-block
//! lists, blocks straddling the support range) pin the edges the random
//! generator is unlikely to hit.

use friends_index::postings::{Encoding, PostingConfig, PostingList};
use friends_index::topk::{BlockMaxWand, SigmaAccum, SigmaBound, TopK, UnitSigma};
use friends_index::{DocId, Score};
use proptest::prelude::*;

/// Sorted sparse σ: exact range max by scan (mirrors the support-backed
/// bound in `friends-core`).
struct SparseSigma(Vec<(u32, f64)>);

impl SigmaBound for SparseSigma {
    fn sigma(&self, tagger: u32) -> f64 {
        match self.0.binary_search_by_key(&tagger, |&(u, _)| u) {
            Ok(i) => self.0[i].1,
            Err(_) => 0.0,
        }
    }
    fn max_in_range(&self, lo: u32, hi: u32) -> f64 {
        let start = self.0.partition_point(|&(u, _)| u < lo);
        self.0[start..]
            .iter()
            .take_while(|&&(u, _)| u <= hi)
            .map(|&(_, s)| s)
            .fold(0.0, f64::max)
    }
}

/// Dense decay-style σ: `1.0` for the seeker, `alpha · pseudo(u)` elsewhere,
/// with the envelope range bound the decay models use (`1.0` when the range
/// covers the seeker, `alpha` otherwise).
struct EnvelopeSigma {
    seeker: u32,
    alpha: f64,
}

impl EnvelopeSigma {
    fn pseudo(u: u32) -> f64 {
        // Deterministic value in [0, 1] with plenty of exact zeros.
        let h = u.wrapping_mul(2654435761) >> 16;
        if h.is_multiple_of(5) {
            0.0
        } else {
            (h % 1000) as f64 / 1000.0
        }
    }
}

impl SigmaBound for EnvelopeSigma {
    fn sigma(&self, tagger: u32) -> f64 {
        if tagger == self.seeker {
            1.0
        } else {
            self.alpha * Self::pseudo(tagger)
        }
    }
    fn max_in_range(&self, lo: u32, hi: u32) -> f64 {
        if (lo..=hi).contains(&self.seeker) {
            1.0
        } else {
            self.alpha
        }
    }
}

/// Naive reference: merge duplicate `(doc, tagger)` pairs per list, score
/// each doc list-major with ascending-tagger groups, in the requested
/// accumulation mode — exactly the operator's documented semantics.
fn reference(
    lists: &[Vec<(DocId, u32, Score)>],
    sigma: &dyn SigmaBound,
    k: usize,
    accum: SigmaAccum,
) -> Vec<(DocId, Score)> {
    let mut per_doc: std::collections::BTreeMap<DocId, (f32, f64, bool)> =
        std::collections::BTreeMap::new();
    for raw in lists {
        let mut sorted = raw.clone();
        sorted.sort_unstable_by_key(|&(d, u, _)| (d, u));
        sorted.dedup_by(|n, kept| {
            if n.0 == kept.0 && n.1 == kept.1 {
                kept.2 += n.2;
                true
            } else {
                false
            }
        });
        for (d, u, w) in sorted {
            let s = sigma.sigma(u);
            if s > 0.0 {
                let e = per_doc.entry(d).or_insert((0.0, 0.0, false));
                e.0 += (s * w as f64) as f32;
                e.1 += s * w as f64;
                e.2 = true;
            }
        }
    }
    let mut topk = TopK::new(k);
    for (d, (s32, s64, touched)) in per_doc {
        match accum {
            SigmaAccum::F32 => {
                if touched {
                    topk.offer(d, s32);
                }
            }
            SigmaAccum::F64 => {
                let sc = s64 as f32;
                if sc > 0.0 {
                    topk.offer(d, sc);
                }
            }
        }
    }
    topk.into_sorted_vec()
}

fn assert_byte_identical(
    want: &[(DocId, Score)],
    got: &[(DocId, Score)],
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(want.len(), got.len(), "{}: length", label);
    for (w, g) in want.iter().zip(got) {
        prop_assert_eq!(w.0, g.0, "{}: doc ids diverge", label);
        prop_assert_eq!(
            w.1.to_bits(),
            g.1.to_bits(),
            "{}: score bits diverge on doc {} ({} vs {})",
            label,
            w.0,
            w.1,
            g.1
        );
    }
    Ok(())
}

fn build_all(
    lists: &[Vec<(DocId, u32, Score)>],
    block_len: usize,
    encoding: Encoding,
) -> Vec<PostingList> {
    let cfg = PostingConfig {
        encoding,
        block_len,
        skips_enabled: true,
    };
    lists
        .iter()
        .map(|l| PostingList::build_with_taggers(l.clone(), cfg))
        .collect()
}

fn check_both_modes(
    lists_raw: &[Vec<(DocId, u32, Score)>],
    block_len: usize,
    encoding: Encoding,
    sigma: &dyn SigmaBound,
    k: usize,
    label: &str,
) -> Result<(), TestCaseError> {
    let plists = build_all(lists_raw, block_len, encoding);
    let refs: Vec<&PostingList> = plists.iter().collect();
    let mut bmw = BlockMaxWand::new();
    for accum in [SigmaAccum::F32, SigmaAccum::F64] {
        let want = reference(lists_raw, sigma, k, accum);
        // Twice per mode: the second run reuses warm cursors and buffers.
        bmw.search(&refs, sigma, k, accum);
        let (got, _) = bmw.search(&refs, sigma, k, accum);
        assert_byte_identical(&want, &got, &format!("{label} {accum:?}"))?;
    }
    Ok(())
}

fn arb_lists() -> impl Strategy<Value = Vec<Vec<(DocId, u32, Score)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..120, 0u32..48, 0.01f32..4.0), 0..140),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random sparse supports × random block geometry, both encodings.
    #[test]
    fn blockmax_matches_reference_sparse_sigma(
        lists_raw in arb_lists(),
        support_raw in proptest::collection::btree_set(0u32..48, 0..12),
        values in proptest::collection::vec(0.01f64..1.0, 12),
        block_len in 1usize..40,
        raw_encoding in any::<bool>(),
        k in 1usize..16,
    ) {
        let support: Vec<(u32, f64)> = support_raw
            .into_iter()
            .enumerate()
            .map(|(i, u)| (u, values[i % values.len()]))
            .collect();
        let sigma = SparseSigma(support);
        let encoding = if raw_encoding { Encoding::Raw } else { Encoding::DeltaVarint };
        check_both_modes(&lists_raw, block_len, encoding, &sigma, k, "sparse")?;
    }

    /// Decay-envelope σ (dense, nonzero almost everywhere) and the unit σ.
    #[test]
    fn blockmax_matches_reference_envelope_and_unit(
        lists_raw in arb_lists(),
        seeker in 0u32..48,
        alpha_m in 1u32..9,
        block_len in 1usize..40,
        k in 1usize..16,
    ) {
        let sigma = EnvelopeSigma { seeker, alpha: alpha_m as f64 / 10.0 };
        check_both_modes(&lists_raw, block_len, Encoding::DeltaVarint, &sigma, k, "envelope")?;
        check_both_modes(&lists_raw, block_len, Encoding::DeltaVarint, &UnitSigma, k, "unit")?;
    }

    /// All-ties corpora: every weight and every σ value identical, so every
    /// doc's score ties and the ranking is decided purely by the doc-id
    /// tie-break — the regime where an unsound "skip on equality" would
    /// silently reorder results.
    #[test]
    fn blockmax_all_ties_corpora(
        docs in proptest::collection::btree_set(0u32..100, 1..60),
        taggers in proptest::collection::btree_set(0u32..32, 1..6),
        block_len in 1usize..20,
        k in 1usize..12,
    ) {
        let lists_raw = vec![docs
            .iter()
            .flat_map(|&d| taggers.iter().map(move |&u| (d, u, 1.0f32)))
            .collect::<Vec<_>>()];
        let support: Vec<(u32, f64)> = taggers.iter().map(|&u| (u, 0.5)).collect();
        let sigma = SparseSigma(support);
        check_both_modes(&lists_raw, block_len, Encoding::DeltaVarint, &sigma, k, "ties")?;
    }
}

/// Single-block lists: `block_len` larger than the whole list, so shallow
/// seeks, skip targets and the support prune all act on one block.
#[test]
fn single_block_lists() {
    let lists_raw: Vec<Vec<(DocId, u32, Score)>> = vec![
        (0..50u32)
            .map(|d| (d, d % 7, 1.0 + (d % 3) as f32))
            .collect(),
        (10..40u32).map(|d| (d, 6 - (d % 7), 0.5)).collect(),
    ];
    let sigma = SparseSigma(vec![(2, 0.25), (5, 1.0)]);
    for accum in [SigmaAccum::F32, SigmaAccum::F64] {
        let plists = build_all(&lists_raw, 10_000, Encoding::DeltaVarint);
        let refs: Vec<&PostingList> = plists.iter().collect();
        assert_eq!(refs[0].num_blocks(), 1);
        let mut bmw = BlockMaxWand::new();
        let (got, _) = bmw.search(&refs, &sigma, 8, accum);
        let want = reference(&lists_raw, &sigma, 8, accum);
        assert_eq!(
            want.iter()
                .map(|&(d, s)| (d, s.to_bits()))
                .collect::<Vec<_>>(),
            got.iter()
                .map(|&(d, s)| (d, s.to_bits()))
                .collect::<Vec<_>>(),
            "{accum:?}"
        );
    }
}

/// Blocks straddling the seeker's support range: the support occupies a
/// narrow tagger-id band, tagger ids alternate in and out of it per block,
/// and block boundaries cut through the band. Blocks fully outside must be
/// support-pruned; straddling blocks must still be scored exactly.
#[test]
fn blocks_straddling_support_range() {
    // Tagger of doc d is d % 100: docs 0..1000 cycle through the band.
    let lists_raw: Vec<Vec<(DocId, u32, Score)>> =
        vec![(0..1000u32).map(|d| (d, d % 100, 1.0)).collect()];
    // Support band [40, 44]: only taggers 40..=44 matter.
    let support: Vec<(u32, f64)> = (40..=44u32).map(|u| (u, 0.9)).collect();
    let sigma = SparseSigma(support);
    for block_len in [3usize, 7, 32] {
        let plists = build_all(&lists_raw, block_len, Encoding::DeltaVarint);
        let refs: Vec<&PostingList> = plists.iter().collect();
        let mut bmw = BlockMaxWand::new();
        let (got, stats) = bmw.search(&refs, &sigma, 20, SigmaAccum::F32);
        let want = reference(&lists_raw, &sigma, 20, SigmaAccum::F32);
        assert_eq!(
            want.iter()
                .map(|&(d, s)| (d, s.to_bits()))
                .collect::<Vec<_>>(),
            got.iter()
                .map(|&(d, s)| (d, s.to_bits()))
                .collect::<Vec<_>>(),
            "block_len {block_len}"
        );
        assert_eq!(got.len(), 20);
        // 95% of taggings fall outside the band; a sound support prune must
        // have skipped at least some blocks without touching their groups.
        assert!(
            stats.blocks_skipped > 0,
            "block_len {block_len}: no blocks skipped ({stats:?})"
        );
    }
}

/// Forcing σ = 0 everywhere returns nothing, never touching a posting.
#[test]
fn zero_sigma_everywhere_returns_empty() {
    let lists_raw: Vec<Vec<(DocId, u32, Score)>> =
        vec![(0..300u32).map(|d| (d, d % 50, 2.0)).collect()];
    let plists = build_all(&lists_raw, 16, Encoding::DeltaVarint);
    let refs: Vec<&PostingList> = plists.iter().collect();
    let mut bmw = BlockMaxWand::new();
    let (got, stats) = bmw.search(&refs, &SparseSigma(Vec::new()), 10, SigmaAccum::F32);
    assert!(got.is_empty());
    assert_eq!(stats.sorted_accesses, 0);
}
