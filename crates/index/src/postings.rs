//! Posting lists: blocks of `(doc, score)` pairs sorted by document id, with
//! per-block skip metadata (first/last doc, max score) enabling `advance()`
//! seeks and WAND-style block-max pruning.
//!
//! Document ids can be stored raw (`u32` per entry) or delta-varint
//! compressed per block; scores are always raw `f32` (float compression is
//! out of scope — the Table 3 ablation measures doc-id compression only).

use crate::varint;
use crate::{DocId, Score};
use serde::{Deserialize, Serialize};

/// Default number of entries per block. 128 balances skip granularity
/// against decode overhead, matching common practice (e.g. Lucene).
pub const DEFAULT_BLOCK_LEN: usize = 128;

/// Document-id storage format.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Encoding {
    /// 4 bytes per doc id; fastest decode.
    Raw,
    /// Per-block delta varint; ~1 byte per id for dense lists.
    DeltaVarint,
}

/// Build-time options for a posting list.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PostingConfig {
    pub encoding: Encoding,
    /// Entries per block (must be ≥ 1).
    pub block_len: usize,
    /// When false, [`PostingCursor::advance`] scans linearly instead of
    /// binary-searching block metadata — the "no skip pointers" ablation.
    pub skips_enabled: bool,
}

impl Default for PostingConfig {
    fn default() -> Self {
        PostingConfig {
            encoding: Encoding::DeltaVarint,
            block_len: DEFAULT_BLOCK_LEN,
            skips_enabled: true,
        }
    }
}

/// Per-block skip entry.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct BlockMeta {
    first_doc: DocId,
    last_doc: DocId,
    max_score: Score,
    /// Byte offset into `data` (DeltaVarint) — unused for Raw.
    byte_start: u32,
    /// Element offset of the block start within the list.
    elem_start: u32,
    /// Entries in this block.
    count: u32,
}

/// An immutable posting list sorted by document id.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PostingList {
    config: PostingConfig,
    len: usize,
    max_score: Score,
    blocks: Vec<BlockMeta>,
    /// Raw doc ids (Raw encoding) — empty for DeltaVarint.
    docs: Vec<DocId>,
    /// Compressed doc ids (DeltaVarint) — empty for Raw.
    data: Vec<u8>,
    /// Scores for all entries, in doc order.
    scores: Vec<Score>,
}

impl PostingList {
    /// Builds a list from `(doc, score)` pairs. Pairs may be unsorted and may
    /// contain duplicate docs, whose scores are **summed** (a tag applied by
    /// several users accumulates weight).
    pub fn build(mut entries: Vec<(DocId, Score)>, config: PostingConfig) -> Self {
        assert!(config.block_len >= 1, "block_len must be >= 1");
        entries.sort_unstable_by_key(|&(d, _)| d);
        entries.dedup_by(|next, kept| {
            if next.0 == kept.0 {
                kept.1 += next.1;
                true
            } else {
                false
            }
        });
        let len = entries.len();
        let mut blocks = Vec::with_capacity(len.div_ceil(config.block_len));
        let mut docs = Vec::new();
        let mut data = Vec::new();
        let mut scores = Vec::with_capacity(len);
        let mut max_score = 0.0f32;
        for (bi, chunk) in entries.chunks(config.block_len).enumerate() {
            let ids: Vec<DocId> = chunk.iter().map(|&(d, _)| d).collect();
            let block_max = chunk
                .iter()
                .map(|&(_, s)| s)
                .fold(f32::NEG_INFINITY, f32::max);
            max_score = max_score.max(block_max);
            blocks.push(BlockMeta {
                first_doc: ids[0],
                last_doc: *ids.last().unwrap(),
                max_score: block_max,
                byte_start: data.len() as u32,
                elem_start: (bi * config.block_len) as u32,
                count: ids.len() as u32,
            });
            match config.encoding {
                Encoding::Raw => docs.extend_from_slice(&ids),
                Encoding::DeltaVarint => varint::encode_sorted(&ids, &mut data),
            }
            scores.extend(chunk.iter().map(|&(_, s)| s));
        }
        if len == 0 {
            max_score = 0.0;
        }
        PostingList {
            config,
            len,
            max_score,
            blocks,
            docs,
            data,
            scores,
        }
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest single score in the list (0.0 when empty) — the list-level
    /// upper bound used by TA/WAND.
    pub fn max_score(&self) -> Score {
        self.max_score
    }

    /// Build configuration.
    pub fn config(&self) -> PostingConfig {
        self.config
    }

    /// Approximate resident memory in bytes (payload + skip metadata).
    pub fn memory_bytes(&self) -> usize {
        self.docs.len() * 4
            + self.data.len()
            + self.scores.len() * 4
            + self.blocks.len() * std::mem::size_of::<BlockMeta>()
    }

    /// Opens a cursor positioned on the first posting.
    pub fn cursor(&self) -> PostingCursor<'_> {
        let mut c = PostingCursor {
            list: self,
            block: 0,
            decoded: Vec::new(),
            pos: 0,
            exhausted: self.len == 0,
        };
        if !c.exhausted {
            c.load_block(0);
        }
        c
    }

    /// Random-access score lookup by binary search over blocks then within
    /// the block. `O(log #blocks + block_len)` (decode) — used by TA.
    pub fn score_of(&self, doc: DocId) -> Option<Score> {
        if self.len == 0 {
            return None;
        }
        let bi = match self.blocks.binary_search_by(|b| {
            if doc < b.first_doc {
                std::cmp::Ordering::Greater
            } else if doc > b.last_doc {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => i,
            Err(_) => return None,
        };
        let b = &self.blocks[bi];
        match self.config.encoding {
            Encoding::Raw => {
                let start = b.elem_start as usize;
                let ids = &self.docs[start..start + b.count as usize];
                ids.binary_search(&doc).ok().map(|i| self.scores[start + i])
            }
            Encoding::DeltaVarint => {
                let mut buf = &self.data[b.byte_start as usize..];
                let ids = varint::decode_sorted(&mut buf, b.count as usize)
                    .expect("corrupt posting block");
                ids.binary_search(&doc)
                    .ok()
                    .map(|i| self.scores[b.elem_start as usize + i])
            }
        }
    }

    /// Decodes the whole list into `(doc, score)` pairs (tests/debugging).
    pub fn to_vec(&self) -> Vec<(DocId, Score)> {
        let mut c = self.cursor();
        let mut out = Vec::with_capacity(self.len);
        while let Some(d) = c.doc() {
            out.push((d, c.score()));
            c.next();
        }
        out
    }
}

/// Forward cursor over a [`PostingList`], in document-id order.
pub struct PostingCursor<'a> {
    list: &'a PostingList,
    block: usize,
    /// Decoded doc ids of the current block (DeltaVarint only).
    decoded: Vec<DocId>,
    /// Position within the current block.
    pos: usize,
    exhausted: bool,
}

impl<'a> PostingCursor<'a> {
    fn load_block(&mut self, bi: usize) {
        self.block = bi;
        self.pos = 0;
        let b = &self.list.blocks[bi];
        if self.list.config.encoding == Encoding::DeltaVarint {
            let mut buf = &self.list.data[b.byte_start as usize..];
            self.decoded =
                varint::decode_sorted(&mut buf, b.count as usize).expect("corrupt posting block");
        }
    }

    /// Current document id, or `None` when exhausted.
    #[inline]
    pub fn doc(&self) -> Option<DocId> {
        if self.exhausted {
            return None;
        }
        let b = &self.list.blocks[self.block];
        Some(match self.list.config.encoding {
            Encoding::Raw => self.list.docs[b.elem_start as usize + self.pos],
            Encoding::DeltaVarint => self.decoded[self.pos],
        })
    }

    /// Score of the current posting.
    ///
    /// # Panics
    /// Panics if the cursor is exhausted.
    #[inline]
    pub fn score(&self) -> Score {
        assert!(!self.exhausted, "cursor exhausted");
        let b = &self.list.blocks[self.block];
        self.list.scores[b.elem_start as usize + self.pos]
    }

    /// Max score of the current block (block-max pruning bound).
    pub fn block_max(&self) -> Score {
        if self.exhausted {
            0.0
        } else {
            self.list.blocks[self.block].max_score
        }
    }

    /// List-level max score.
    pub fn list_max(&self) -> Score {
        self.list.max_score()
    }

    /// Advances to the next posting.
    pub fn next(&mut self) {
        if self.exhausted {
            return;
        }
        self.pos += 1;
        if self.pos >= self.list.blocks[self.block].count as usize {
            if self.block + 1 < self.list.blocks.len() {
                let nb = self.block + 1;
                self.load_block(nb);
            } else {
                self.exhausted = true;
            }
        }
    }

    /// Advances to the first posting with `doc >= target` (no-op if already
    /// there). Uses skip metadata when enabled, linear scan otherwise.
    pub fn advance(&mut self, target: DocId) {
        if self.exhausted {
            return;
        }
        if let Some(d) = self.doc() {
            if d >= target {
                return;
            }
        }
        if self.list.config.skips_enabled {
            // Find first block whose last_doc >= target, at or after current.
            let blocks = &self.list.blocks;
            if blocks[self.block].last_doc < target {
                let rel = blocks[self.block + 1..].partition_point(|b| b.last_doc < target);
                let bi = self.block + 1 + rel;
                if bi >= blocks.len() {
                    self.exhausted = true;
                    return;
                }
                self.load_block(bi);
            }
            // Binary search inside the block.
            let b = &self.list.blocks[self.block];
            let idx = match self.list.config.encoding {
                Encoding::Raw => {
                    let start = b.elem_start as usize;
                    let ids = &self.list.docs[start..start + b.count as usize];
                    ids.partition_point(|&d| d < target)
                }
                Encoding::DeltaVarint => self.decoded.partition_point(|&d| d < target),
            };
            if idx >= b.count as usize {
                // target falls past this block (only possible when we didn't
                // move blocks); step into the next one.
                self.pos = b.count as usize - 1;
                self.next();
                self.advance(target);
            } else {
                self.pos = idx;
            }
        } else {
            while let Some(d) = self.doc() {
                if d >= target {
                    return;
                }
                self.next();
            }
        }
    }

    /// Whether the cursor has passed the last posting.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries(n: u32, stride: u32) -> Vec<(DocId, Score)> {
        (0..n)
            .map(|i| (i * stride + 1, (i % 17) as f32 + 0.5))
            .collect()
    }

    fn configs() -> Vec<PostingConfig> {
        vec![
            PostingConfig::default(),
            PostingConfig {
                encoding: Encoding::Raw,
                block_len: 128,
                skips_enabled: true,
            },
            PostingConfig {
                encoding: Encoding::DeltaVarint,
                block_len: 7,
                skips_enabled: true,
            },
            PostingConfig {
                encoding: Encoding::Raw,
                block_len: 3,
                skips_enabled: false,
            },
        ]
    }

    #[test]
    fn round_trip_all_configs() {
        let entries = sample_entries(500, 3);
        for cfg in configs() {
            let list = PostingList::build(entries.clone(), cfg);
            assert_eq!(list.len(), 500);
            assert_eq!(list.to_vec(), entries, "config {cfg:?}");
        }
    }

    #[test]
    fn empty_list() {
        let list = PostingList::build(vec![], PostingConfig::default());
        assert!(list.is_empty());
        assert_eq!(list.max_score(), 0.0);
        let mut c = list.cursor();
        assert_eq!(c.doc(), None);
        c.next();
        c.advance(10);
        assert!(c.is_exhausted());
        assert_eq!(list.score_of(5), None);
    }

    #[test]
    fn unsorted_input_with_duplicates_sums() {
        let list = PostingList::build(
            vec![(5, 1.0), (2, 2.0), (5, 0.5), (9, 1.0), (2, 1.0)],
            PostingConfig::default(),
        );
        assert_eq!(list.to_vec(), vec![(2, 3.0), (5, 1.5), (9, 1.0)]);
    }

    #[test]
    fn max_score_tracks_largest() {
        let list = PostingList::build(sample_entries(100, 2), PostingConfig::default());
        let expect = list
            .to_vec()
            .iter()
            .map(|&(_, s)| s)
            .fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(list.max_score(), expect);
    }

    #[test]
    fn score_of_random_access() {
        let entries = sample_entries(300, 5);
        for cfg in configs() {
            let list = PostingList::build(entries.clone(), cfg);
            for &(d, s) in &entries {
                assert_eq!(list.score_of(d), Some(s), "doc {d} cfg {cfg:?}");
            }
            assert_eq!(list.score_of(0), None);
            assert_eq!(list.score_of(2), None); // gap
            assert_eq!(list.score_of(10_000_000), None);
        }
    }

    #[test]
    fn advance_semantics() {
        let entries = sample_entries(200, 4); // docs 1, 5, 9, ...
        for cfg in configs() {
            let list = PostingList::build(entries.clone(), cfg);
            let mut c = list.cursor();
            c.advance(6);
            assert_eq!(c.doc(), Some(9), "cfg {cfg:?}");
            c.advance(9); // already there: no-op
            assert_eq!(c.doc(), Some(9));
            c.advance(700);
            assert_eq!(c.doc(), Some(701));
            c.advance(1_000_000);
            assert!(c.is_exhausted());
        }
    }

    #[test]
    fn advance_matches_linear_reference() {
        let entries = sample_entries(512, 3);
        let with_skips = PostingList::build(entries.clone(), PostingConfig::default());
        let without = PostingList::build(
            entries,
            PostingConfig {
                skips_enabled: false,
                ..PostingConfig::default()
            },
        );
        for target in [0u32, 1, 2, 100, 511, 512, 513, 1535, 1536, 9999] {
            let mut a = with_skips.cursor();
            let mut b = without.cursor();
            a.advance(target);
            b.advance(target);
            assert_eq!(a.doc(), b.doc(), "target {target}");
        }
    }

    #[test]
    fn interleaved_next_and_advance() {
        let entries = sample_entries(100, 7);
        let list = PostingList::build(
            entries.clone(),
            PostingConfig {
                block_len: 8,
                ..PostingConfig::default()
            },
        );
        let mut c = list.cursor();
        c.next();
        c.next();
        assert_eq!(c.doc(), Some(15));
        c.advance(16);
        assert_eq!(c.doc(), Some(22));
        c.next();
        assert_eq!(c.doc(), Some(29));
    }

    #[test]
    fn compression_shrinks_dense_lists() {
        let entries: Vec<(DocId, Score)> = (0..10_000).map(|i| (i, 1.0)).collect();
        let raw = PostingList::build(
            entries.clone(),
            PostingConfig {
                encoding: Encoding::Raw,
                ..PostingConfig::default()
            },
        );
        let packed = PostingList::build(entries, PostingConfig::default());
        assert!(
            (packed.memory_bytes() as f64) < 0.7 * raw.memory_bytes() as f64,
            "packed {} vs raw {}",
            packed.memory_bytes(),
            raw.memory_bytes()
        );
    }

    #[test]
    fn block_max_is_upper_bound_within_block() {
        let list = PostingList::build(
            sample_entries(300, 2),
            PostingConfig {
                block_len: 16,
                ..PostingConfig::default()
            },
        );
        let mut c = list.cursor();
        while let Some(_d) = c.doc() {
            assert!(c.score() <= c.block_max() + 1e-6);
            assert!(c.block_max() <= c.list_max() + 1e-6);
            c.next();
        }
    }

    #[test]
    fn single_entry_list() {
        let list = PostingList::build(vec![(7, 2.5)], PostingConfig::default());
        assert_eq!(list.len(), 1);
        assert_eq!(list.max_score(), 2.5);
        let mut c = list.cursor();
        assert_eq!(c.doc(), Some(7));
        assert_eq!(c.score(), 2.5);
        c.next();
        assert!(c.is_exhausted());
    }
}
