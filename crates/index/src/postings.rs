//! Posting lists: blocks of `(doc, score)` pairs sorted by document id, with
//! per-block skip metadata (first/last doc, max score) enabling `advance()`
//! seeks and WAND-style block-max pruning.
//!
//! Document ids can be stored raw (`u32` per entry) or delta-varint
//! compressed per block; scores are always raw `f32` (float compression is
//! out of scope — the Table 3 ablation measures doc-id compression only).

use crate::varint;
use crate::{DocId, Score};
use serde::{Deserialize, Serialize};

/// Default number of entries per block. 128 balances skip granularity
/// against decode overhead, matching common practice (e.g. Lucene).
pub const DEFAULT_BLOCK_LEN: usize = 128;

/// Document-id storage format.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Encoding {
    /// 4 bytes per doc id; fastest decode.
    Raw,
    /// Per-block delta varint; ~1 byte per id for dense lists.
    DeltaVarint,
}

/// Build-time options for a posting list.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PostingConfig {
    pub encoding: Encoding,
    /// Entries per block (must be ≥ 1).
    pub block_len: usize,
    /// When false, [`PostingCursor::advance`] scans linearly instead of
    /// binary-searching block metadata — the "no skip pointers" ablation.
    pub skips_enabled: bool,
}

impl Default for PostingConfig {
    fn default() -> Self {
        PostingConfig {
            encoding: Encoding::DeltaVarint,
            block_len: DEFAULT_BLOCK_LEN,
            skips_enabled: true,
        }
    }
}

/// Per-block skip entry.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct BlockMeta {
    first_doc: DocId,
    last_doc: DocId,
    max_score: Score,
    /// Byte offset into `data` (DeltaVarint) — unused for Raw.
    byte_start: u32,
    /// Element offset of the block start within the list.
    elem_start: u32,
    /// Entries in this block.
    count: u32,
    /// Smallest tagger id contributing to any entry of this block
    /// (`0` for lists built without tagger groups).
    min_tagger: u32,
    /// Largest tagger id contributing to any entry of this block
    /// (`u32::MAX` for lists built without tagger groups — an unconstrained
    /// range, so σ-aware bounds degrade soundly to the global bound).
    max_tagger: u32,
    /// Conservative upper bound on any single entry's score as *accumulated
    /// by a scorer* (see [`PostingList::build_with_taggers`]): the largest
    /// per-doc weight mass in the block, inflated to absorb f32 summation
    /// rounding. Equals `max_score` for lists built without tagger groups.
    sigma_base: Score,
}

/// An immutable posting list sorted by document id.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PostingList {
    config: PostingConfig,
    len: usize,
    max_score: Score,
    blocks: Vec<BlockMeta>,
    /// Raw doc ids (Raw encoding) — empty for DeltaVarint.
    docs: Vec<DocId>,
    /// Compressed doc ids (DeltaVarint) — empty for Raw.
    data: Vec<u8>,
    /// Scores for all entries, in doc order.
    scores: Vec<Score>,
    /// Per-entry tagger-group offsets into `taggers`
    /// (`tagger_offsets[i]..tagger_offsets[i+1]` is entry `i`'s group).
    /// Empty for lists built without tagger groups.
    tagger_offsets: Vec<u32>,
    /// `(tagger, weight)` pairs, ascending tagger id within each group.
    taggers: Vec<(u32, Score)>,
    /// List-level tagger range and σ-aware score bound, folded over the
    /// blocks at build time so per-query reads are O(1).
    list_min_tagger: u32,
    list_max_tagger: u32,
    list_sigma_base: Score,
}

/// Public snapshot of one block's skip metadata — what block-skipping
/// operators and the block-boundary fuzz tests consume.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockInfo {
    pub first_doc: DocId,
    pub last_doc: DocId,
    pub max_score: Score,
    /// See the `sigma_base` field docs on the block metadata: a rounding-safe
    /// upper bound on any entry's accumulated score in this block.
    pub sigma_base: Score,
    pub min_tagger: u32,
    pub max_tagger: u32,
    /// Element offset of the block start within the list.
    pub elem_start: usize,
    /// Entries in this block.
    pub count: usize,
    /// Byte offset of the block into the varint stream (0 for Raw).
    pub byte_start: usize,
}

impl PostingList {
    /// Builds a list from `(doc, score)` pairs. Pairs may be unsorted and may
    /// contain duplicate docs, whose scores are **summed** (a tag applied by
    /// several users accumulates weight).
    pub fn build(mut entries: Vec<(DocId, Score)>, config: PostingConfig) -> Self {
        assert!(config.block_len >= 1, "block_len must be >= 1");
        entries.sort_unstable_by_key(|&(d, _)| d);
        entries.dedup_by(|next, kept| {
            if next.0 == kept.0 {
                kept.1 += next.1;
                true
            } else {
                false
            }
        });
        let len = entries.len();
        let mut blocks = Vec::with_capacity(len.div_ceil(config.block_len));
        let mut docs = Vec::new();
        let mut data = Vec::new();
        let mut scores = Vec::with_capacity(len);
        let mut max_score = 0.0f32;
        for (bi, chunk) in entries.chunks(config.block_len).enumerate() {
            let ids: Vec<DocId> = chunk.iter().map(|&(d, _)| d).collect();
            let block_max = chunk
                .iter()
                .map(|&(_, s)| s)
                .fold(f32::NEG_INFINITY, f32::max);
            max_score = max_score.max(block_max);
            blocks.push(BlockMeta {
                first_doc: ids[0],
                last_doc: *ids.last().unwrap(),
                max_score: block_max,
                byte_start: data.len() as u32,
                elem_start: (bi * config.block_len) as u32,
                count: ids.len() as u32,
                min_tagger: 0,
                max_tagger: u32::MAX,
                sigma_base: block_max,
            });
            match config.encoding {
                Encoding::Raw => docs.extend_from_slice(&ids),
                Encoding::DeltaVarint => varint::encode_sorted(&ids, &mut data),
            }
            scores.extend(chunk.iter().map(|&(_, s)| s));
        }
        if len == 0 {
            max_score = 0.0;
        }
        PostingList {
            config,
            len,
            max_score,
            blocks,
            docs,
            data,
            scores,
            tagger_offsets: Vec::new(),
            taggers: Vec::new(),
            list_min_tagger: 0,
            list_max_tagger: u32::MAX,
            list_sigma_base: max_score,
        }
    }

    /// Builds a **σ-aware** list from `(doc, tagger, weight)` triples: one
    /// entry per doc whose *score* is the doc's total weight mass (the
    /// f32-accumulated `Σ_tagger weight`, ascending tagger order — bit-equal
    /// to a tag-slice scan), carrying the per-doc `(tagger, weight)` group so
    /// a scorer can evaluate `Σ_tagger σ(tagger) · weight` exactly. Duplicate
    /// `(doc, tagger)` pairs have their weights summed.
    ///
    /// Every block additionally records the min/max tagger id over the
    /// groups it covers and a rounding-safe `sigma_base` bound, enabling
    /// sound per-block upper bounds `sigma_base · max σ over [min, max]` for
    /// block-max pruning under seeker-dependent weights.
    ///
    /// # Panics
    /// Panics on non-finite or negative weights.
    pub fn build_with_taggers(
        mut entries: Vec<(DocId, u32, Score)>,
        config: PostingConfig,
    ) -> Self {
        assert!(config.block_len >= 1, "block_len must be >= 1");
        for &(_, _, w) in &entries {
            assert!(w.is_finite() && w >= 0.0, "bad weight {w}");
        }
        entries.sort_unstable_by_key(|&(d, u, _)| (d, u));
        entries.dedup_by(|next, kept| {
            if next.0 == kept.0 && next.1 == kept.1 {
                kept.2 += next.2;
                true
            } else {
                false
            }
        });
        // Collapse to per-doc entries, tracking each doc's group extent.
        // `docs_meta[i] = (doc, mass_f32, group_start, group_len)`.
        let mut taggers: Vec<(u32, Score)> = Vec::with_capacity(entries.len());
        let mut docs_meta: Vec<(DocId, Score, usize, usize)> = Vec::new();
        for (d, u, w) in entries {
            match docs_meta.last_mut() {
                Some(m) if m.0 == d => {
                    m.1 += w;
                    m.3 += 1;
                }
                _ => docs_meta.push((d, w, taggers.len(), 1)),
            }
            taggers.push((u, w));
        }
        let len = docs_meta.len();
        let mut blocks = Vec::with_capacity(len.div_ceil(config.block_len));
        let mut docs = Vec::new();
        let mut data = Vec::new();
        let mut scores = Vec::with_capacity(len);
        let mut tagger_offsets = Vec::with_capacity(len + 1);
        tagger_offsets.push(0u32);
        let mut max_score = 0.0f32;
        for (bi, chunk) in docs_meta.chunks(config.block_len).enumerate() {
            let ids: Vec<DocId> = chunk.iter().map(|&(d, ..)| d).collect();
            let mut block_max = f32::NEG_INFINITY;
            let mut sigma_base = 0.0f32;
            let mut min_tagger = u32::MAX;
            let mut max_tagger = 0u32;
            for &(_, mass, gs, gl) in chunk {
                block_max = block_max.max(mass);
                // Exact f64 mass inflated by a bound on the f32 accumulation
                // error of `gl` rounded nonnegative terms (≤ (m+1)·2⁻²³
                // relative, covering both the per-term f64→f32 casts and the
                // running-sum roundings), so `sigma_base · σmax` provably
                // dominates any σ-weighted f32 or f64 accumulation of the
                // dominated per-tagger terms.
                let exact: f64 = taggers[gs..gs + gl].iter().map(|&(_, w)| w as f64).sum();
                let inflated = exact * (1.0 + (gl as f64 + 2.0) * 2.0f64.powi(-23));
                sigma_base = sigma_base.max(inflated as f32);
                min_tagger = min_tagger.min(taggers[gs].0);
                max_tagger = max_tagger.max(taggers[gs + gl - 1].0);
            }
            max_score = max_score.max(block_max);
            blocks.push(BlockMeta {
                first_doc: ids[0],
                last_doc: *ids.last().unwrap(),
                max_score: block_max,
                byte_start: data.len() as u32,
                elem_start: (bi * config.block_len) as u32,
                count: ids.len() as u32,
                min_tagger,
                max_tagger,
                sigma_base,
            });
            match config.encoding {
                Encoding::Raw => docs.extend_from_slice(&ids),
                Encoding::DeltaVarint => varint::encode_sorted(&ids, &mut data),
            }
            scores.extend(chunk.iter().map(|&(_, mass, ..)| mass));
            tagger_offsets.extend(chunk.iter().map(|&(.., gs, gl)| (gs + gl) as u32));
        }
        if len == 0 {
            max_score = 0.0;
        }
        let mut list_min_tagger = u32::MAX;
        let mut list_max_tagger = 0u32;
        let mut list_sigma_base = 0.0f32;
        for b in &blocks {
            list_min_tagger = list_min_tagger.min(b.min_tagger);
            list_max_tagger = list_max_tagger.max(b.max_tagger);
            list_sigma_base = list_sigma_base.max(b.sigma_base);
        }
        PostingList {
            config,
            len,
            max_score,
            blocks,
            docs,
            data,
            scores,
            tagger_offsets,
            taggers,
            list_min_tagger,
            list_max_tagger,
            list_sigma_base,
        }
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest single score in the list (0.0 when empty) — the list-level
    /// upper bound used by TA/WAND.
    pub fn max_score(&self) -> Score {
        self.max_score
    }

    /// Build configuration.
    pub fn config(&self) -> PostingConfig {
        self.config
    }

    /// Approximate resident memory in bytes (payload + skip metadata).
    pub fn memory_bytes(&self) -> usize {
        self.docs.len() * 4
            + self.data.len()
            + self.scores.len() * 4
            + self.blocks.len() * std::mem::size_of::<BlockMeta>()
            + self.tagger_offsets.len() * 4
            + self.taggers.len() * std::mem::size_of::<(u32, Score)>()
    }

    /// Whether the list was built with per-entry tagger groups
    /// ([`PostingList::build_with_taggers`]).
    pub fn has_taggers(&self) -> bool {
        !self.tagger_offsets.is_empty()
    }

    /// The `(tagger, weight)` group of entry `idx` (element index within the
    /// list), ascending tagger id. Empty for lists built without taggers.
    #[inline]
    pub fn taggers_of(&self, idx: usize) -> &[(u32, Score)] {
        if self.tagger_offsets.is_empty() {
            return &[];
        }
        let lo = self.tagger_offsets[idx] as usize;
        let hi = self.tagger_offsets[idx + 1] as usize;
        &self.taggers[lo..hi]
    }

    /// Number of skip blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Skip metadata of block `bi`.
    pub fn block(&self, bi: usize) -> BlockInfo {
        let b = &self.blocks[bi];
        BlockInfo {
            first_doc: b.first_doc,
            last_doc: b.last_doc,
            max_score: b.max_score,
            sigma_base: b.sigma_base,
            min_tagger: b.min_tagger,
            max_tagger: b.max_tagger,
            elem_start: b.elem_start as usize,
            count: b.count as usize,
            byte_start: b.byte_start as usize,
        }
    }

    /// The varint byte range of block `bi` (empty for Raw encoding) — the
    /// skip-pointer target the block-boundary fuzz tests decode from.
    pub fn block_bytes(&self, bi: usize) -> &[u8] {
        if self.config.encoding != Encoding::DeltaVarint {
            return &[];
        }
        let start = self.blocks[bi].byte_start as usize;
        let end = self
            .blocks
            .get(bi + 1)
            .map_or(self.data.len(), |b| b.byte_start as usize);
        &self.data[start..end]
    }

    /// Decodes the doc ids of block `bi` into `out` (cleared first; capacity
    /// reused). Reads straight from the raw array for `Raw` encoding.
    pub fn block_docs_into(&self, bi: usize, out: &mut Vec<DocId>) {
        let b = &self.blocks[bi];
        match self.config.encoding {
            Encoding::Raw => {
                out.clear();
                let start = b.elem_start as usize;
                out.extend_from_slice(&self.docs[start..start + b.count as usize]);
            }
            Encoding::DeltaVarint => {
                let mut buf = &self.data[b.byte_start as usize..];
                varint::decode_sorted_into(&mut buf, b.count as usize, out)
                    .expect("corrupt posting block");
            }
        }
    }

    /// Score of entry `idx` (element index within the list).
    #[inline]
    pub fn score_at(&self, idx: usize) -> Score {
        self.scores[idx]
    }

    /// The min/max tagger id across the whole list — `(0, u32::MAX)` for
    /// lists without tagger groups (an unconstrained range), and
    /// `(u32::MAX, 0)` for empty tagger-built lists (an empty range).
    /// Precomputed at build time; O(1).
    pub fn tagger_range(&self) -> (u32, u32) {
        (self.list_min_tagger, self.list_max_tagger)
    }

    /// Largest per-block `sigma_base` — the list-level σ-aware score bound
    /// (0.0 when empty). Precomputed at build time; O(1).
    pub fn sigma_base(&self) -> Score {
        self.list_sigma_base
    }

    /// Opens a cursor positioned on the first posting.
    pub fn cursor(&self) -> PostingCursor<'_> {
        let mut c = PostingCursor {
            list: self,
            block: 0,
            decoded: Vec::new(),
            pos: 0,
            exhausted: self.len == 0,
        };
        if !c.exhausted {
            c.load_block(0);
        }
        c
    }

    /// Random-access score lookup by binary search over blocks then within
    /// the block. `O(log #blocks + block_len)` (decode) — used by TA.
    pub fn score_of(&self, doc: DocId) -> Option<Score> {
        if self.len == 0 {
            return None;
        }
        let bi = match self.blocks.binary_search_by(|b| {
            if doc < b.first_doc {
                std::cmp::Ordering::Greater
            } else if doc > b.last_doc {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => i,
            Err(_) => return None,
        };
        let b = &self.blocks[bi];
        match self.config.encoding {
            Encoding::Raw => {
                let start = b.elem_start as usize;
                let ids = &self.docs[start..start + b.count as usize];
                ids.binary_search(&doc).ok().map(|i| self.scores[start + i])
            }
            Encoding::DeltaVarint => {
                let mut buf = &self.data[b.byte_start as usize..];
                let ids = varint::decode_sorted(&mut buf, b.count as usize)
                    .expect("corrupt posting block");
                ids.binary_search(&doc)
                    .ok()
                    .map(|i| self.scores[b.elem_start as usize + i])
            }
        }
    }

    /// Decodes the whole list into `(doc, score)` pairs (tests/debugging).
    pub fn to_vec(&self) -> Vec<(DocId, Score)> {
        let mut c = self.cursor();
        let mut out = Vec::with_capacity(self.len);
        while let Some(d) = c.doc() {
            out.push((d, c.score()));
            c.next();
        }
        out
    }
}

/// Forward cursor over a [`PostingList`], in document-id order.
pub struct PostingCursor<'a> {
    list: &'a PostingList,
    block: usize,
    /// Decoded doc ids of the current block (DeltaVarint only).
    decoded: Vec<DocId>,
    /// Position within the current block.
    pos: usize,
    exhausted: bool,
}

impl<'a> PostingCursor<'a> {
    fn load_block(&mut self, bi: usize) {
        self.block = bi;
        self.pos = 0;
        let b = &self.list.blocks[bi];
        if self.list.config.encoding == Encoding::DeltaVarint {
            let mut buf = &self.list.data[b.byte_start as usize..];
            varint::decode_sorted_into(&mut buf, b.count as usize, &mut self.decoded)
                .expect("corrupt posting block");
        }
    }

    /// Index of the block the cursor currently sits in.
    pub fn block_index(&self) -> usize {
        self.block
    }

    /// The `(tagger, weight)` group of the current entry (empty for lists
    /// without tagger groups).
    ///
    /// # Panics
    /// Panics if the cursor is exhausted.
    pub fn taggers(&self) -> &[(u32, Score)] {
        assert!(!self.exhausted, "cursor exhausted");
        let b = &self.list.blocks[self.block];
        self.list.taggers_of(b.elem_start as usize + self.pos)
    }

    /// Current document id, or `None` when exhausted.
    #[inline]
    pub fn doc(&self) -> Option<DocId> {
        if self.exhausted {
            return None;
        }
        let b = &self.list.blocks[self.block];
        Some(match self.list.config.encoding {
            Encoding::Raw => self.list.docs[b.elem_start as usize + self.pos],
            Encoding::DeltaVarint => self.decoded[self.pos],
        })
    }

    /// Score of the current posting.
    ///
    /// # Panics
    /// Panics if the cursor is exhausted.
    #[inline]
    pub fn score(&self) -> Score {
        assert!(!self.exhausted, "cursor exhausted");
        let b = &self.list.blocks[self.block];
        self.list.scores[b.elem_start as usize + self.pos]
    }

    /// Max score of the current block (block-max pruning bound).
    pub fn block_max(&self) -> Score {
        if self.exhausted {
            0.0
        } else {
            self.list.blocks[self.block].max_score
        }
    }

    /// List-level max score.
    pub fn list_max(&self) -> Score {
        self.list.max_score()
    }

    /// Advances to the next posting.
    pub fn next(&mut self) {
        if self.exhausted {
            return;
        }
        self.pos += 1;
        if self.pos >= self.list.blocks[self.block].count as usize {
            if self.block + 1 < self.list.blocks.len() {
                let nb = self.block + 1;
                self.load_block(nb);
            } else {
                self.exhausted = true;
            }
        }
    }

    /// Advances to the first posting with `doc >= target` (no-op if already
    /// there). Uses skip metadata when enabled, linear scan otherwise.
    pub fn advance(&mut self, target: DocId) {
        if self.exhausted {
            return;
        }
        if let Some(d) = self.doc() {
            if d >= target {
                return;
            }
        }
        if self.list.config.skips_enabled {
            // Find first block whose last_doc >= target, at or after current.
            let blocks = &self.list.blocks;
            if blocks[self.block].last_doc < target {
                let rel = blocks[self.block + 1..].partition_point(|b| b.last_doc < target);
                let bi = self.block + 1 + rel;
                if bi >= blocks.len() {
                    self.exhausted = true;
                    return;
                }
                self.load_block(bi);
            }
            // Binary search inside the block.
            let b = &self.list.blocks[self.block];
            let idx = match self.list.config.encoding {
                Encoding::Raw => {
                    let start = b.elem_start as usize;
                    let ids = &self.list.docs[start..start + b.count as usize];
                    ids.partition_point(|&d| d < target)
                }
                Encoding::DeltaVarint => self.decoded.partition_point(|&d| d < target),
            };
            if idx >= b.count as usize {
                // target falls past this block (only possible when we didn't
                // move blocks); step into the next one.
                self.pos = b.count as usize - 1;
                self.next();
                self.advance(target);
            } else {
                self.pos = idx;
            }
        } else {
            while let Some(d) = self.doc() {
                if d >= target {
                    return;
                }
                self.next();
            }
        }
    }

    /// Whether the cursor has passed the last posting.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries(n: u32, stride: u32) -> Vec<(DocId, Score)> {
        (0..n)
            .map(|i| (i * stride + 1, (i % 17) as f32 + 0.5))
            .collect()
    }

    fn configs() -> Vec<PostingConfig> {
        vec![
            PostingConfig::default(),
            PostingConfig {
                encoding: Encoding::Raw,
                block_len: 128,
                skips_enabled: true,
            },
            PostingConfig {
                encoding: Encoding::DeltaVarint,
                block_len: 7,
                skips_enabled: true,
            },
            PostingConfig {
                encoding: Encoding::Raw,
                block_len: 3,
                skips_enabled: false,
            },
        ]
    }

    #[test]
    fn round_trip_all_configs() {
        let entries = sample_entries(500, 3);
        for cfg in configs() {
            let list = PostingList::build(entries.clone(), cfg);
            assert_eq!(list.len(), 500);
            assert_eq!(list.to_vec(), entries, "config {cfg:?}");
        }
    }

    #[test]
    fn empty_list() {
        let list = PostingList::build(vec![], PostingConfig::default());
        assert!(list.is_empty());
        assert_eq!(list.max_score(), 0.0);
        let mut c = list.cursor();
        assert_eq!(c.doc(), None);
        c.next();
        c.advance(10);
        assert!(c.is_exhausted());
        assert_eq!(list.score_of(5), None);
    }

    #[test]
    fn unsorted_input_with_duplicates_sums() {
        let list = PostingList::build(
            vec![(5, 1.0), (2, 2.0), (5, 0.5), (9, 1.0), (2, 1.0)],
            PostingConfig::default(),
        );
        assert_eq!(list.to_vec(), vec![(2, 3.0), (5, 1.5), (9, 1.0)]);
    }

    #[test]
    fn max_score_tracks_largest() {
        let list = PostingList::build(sample_entries(100, 2), PostingConfig::default());
        let expect = list
            .to_vec()
            .iter()
            .map(|&(_, s)| s)
            .fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(list.max_score(), expect);
    }

    #[test]
    fn score_of_random_access() {
        let entries = sample_entries(300, 5);
        for cfg in configs() {
            let list = PostingList::build(entries.clone(), cfg);
            for &(d, s) in &entries {
                assert_eq!(list.score_of(d), Some(s), "doc {d} cfg {cfg:?}");
            }
            assert_eq!(list.score_of(0), None);
            assert_eq!(list.score_of(2), None); // gap
            assert_eq!(list.score_of(10_000_000), None);
        }
    }

    #[test]
    fn advance_semantics() {
        let entries = sample_entries(200, 4); // docs 1, 5, 9, ...
        for cfg in configs() {
            let list = PostingList::build(entries.clone(), cfg);
            let mut c = list.cursor();
            c.advance(6);
            assert_eq!(c.doc(), Some(9), "cfg {cfg:?}");
            c.advance(9); // already there: no-op
            assert_eq!(c.doc(), Some(9));
            c.advance(700);
            assert_eq!(c.doc(), Some(701));
            c.advance(1_000_000);
            assert!(c.is_exhausted());
        }
    }

    #[test]
    fn advance_matches_linear_reference() {
        let entries = sample_entries(512, 3);
        let with_skips = PostingList::build(entries.clone(), PostingConfig::default());
        let without = PostingList::build(
            entries,
            PostingConfig {
                skips_enabled: false,
                ..PostingConfig::default()
            },
        );
        for target in [0u32, 1, 2, 100, 511, 512, 513, 1535, 1536, 9999] {
            let mut a = with_skips.cursor();
            let mut b = without.cursor();
            a.advance(target);
            b.advance(target);
            assert_eq!(a.doc(), b.doc(), "target {target}");
        }
    }

    #[test]
    fn interleaved_next_and_advance() {
        let entries = sample_entries(100, 7);
        let list = PostingList::build(
            entries.clone(),
            PostingConfig {
                block_len: 8,
                ..PostingConfig::default()
            },
        );
        let mut c = list.cursor();
        c.next();
        c.next();
        assert_eq!(c.doc(), Some(15));
        c.advance(16);
        assert_eq!(c.doc(), Some(22));
        c.next();
        assert_eq!(c.doc(), Some(29));
    }

    #[test]
    fn compression_shrinks_dense_lists() {
        let entries: Vec<(DocId, Score)> = (0..10_000).map(|i| (i, 1.0)).collect();
        let raw = PostingList::build(
            entries.clone(),
            PostingConfig {
                encoding: Encoding::Raw,
                ..PostingConfig::default()
            },
        );
        let packed = PostingList::build(entries, PostingConfig::default());
        assert!(
            (packed.memory_bytes() as f64) < 0.7 * raw.memory_bytes() as f64,
            "packed {} vs raw {}",
            packed.memory_bytes(),
            raw.memory_bytes()
        );
    }

    #[test]
    fn block_max_is_upper_bound_within_block() {
        let list = PostingList::build(
            sample_entries(300, 2),
            PostingConfig {
                block_len: 16,
                ..PostingConfig::default()
            },
        );
        let mut c = list.cursor();
        while let Some(_d) = c.doc() {
            assert!(c.score() <= c.block_max() + 1e-6);
            assert!(c.block_max() <= c.list_max() + 1e-6);
            c.next();
        }
    }

    #[test]
    fn tagger_build_groups_and_masses() {
        // doc 4 tagged by users 9 and 2 (dup (4, 2) merges), doc 1 by user 5.
        let list = PostingList::build_with_taggers(
            vec![(4, 9, 1.0), (1, 5, 2.0), (4, 2, 0.5), (4, 2, 0.25)],
            PostingConfig::default(),
        );
        assert!(list.has_taggers());
        assert_eq!(list.len(), 2);
        assert_eq!(list.to_vec(), vec![(1, 2.0), (4, 1.75)]);
        let mut c = list.cursor();
        assert_eq!(c.taggers(), &[(5, 2.0)]);
        c.next();
        assert_eq!(c.taggers(), &[(2, 0.75), (9, 1.0)]);
        assert_eq!(list.tagger_range(), (2, 9));
        assert!(list.sigma_base() >= list.max_score());
    }

    #[test]
    fn tagger_blocks_carry_sound_ranges_and_bounds() {
        // Many docs, 3 taggers each, small blocks: every block's tagger
        // range must cover its groups and sigma_base must dominate masses.
        let mut triples = Vec::new();
        for d in 0..200u32 {
            for t in 0..3u32 {
                triples.push((d, (d * 7 + t * 13) % 64, 0.1 + (t as f32) * 0.3));
            }
        }
        let list = PostingList::build_with_taggers(
            triples,
            PostingConfig {
                block_len: 9,
                ..PostingConfig::default()
            },
        );
        for bi in 0..list.num_blocks() {
            let b = list.block(bi);
            let mut mass_max = 0.0f32;
            for i in b.elem_start..b.elem_start + b.count {
                let group = list.taggers_of(i);
                assert!(!group.is_empty());
                assert!(group.windows(2).all(|w| w[0].0 < w[1].0), "unsorted group");
                for &(u, _) in group {
                    assert!((b.min_tagger..=b.max_tagger).contains(&u));
                }
                mass_max = mass_max.max(group.iter().map(|&(_, w)| w).sum());
            }
            assert!(b.sigma_base >= mass_max, "block {bi}");
            assert!(b.sigma_base >= b.max_score);
        }
    }

    #[test]
    fn taggerless_lists_have_unconstrained_ranges() {
        let list = PostingList::build(sample_entries(50, 2), PostingConfig::default());
        assert!(!list.has_taggers());
        assert_eq!(list.tagger_range(), (0, u32::MAX));
        assert_eq!(list.sigma_base(), list.max_score());
        assert!(list.taggers_of(0).is_empty());
    }

    #[test]
    fn block_docs_into_matches_cursor_walk() {
        let entries = sample_entries(300, 3);
        for cfg in configs() {
            let list = PostingList::build(entries.clone(), cfg);
            let want: Vec<DocId> = list.to_vec().iter().map(|&(d, _)| d).collect();
            let mut got = Vec::new();
            let mut buf = Vec::new();
            for bi in 0..list.num_blocks() {
                list.block_docs_into(bi, &mut buf);
                assert_eq!(buf.len(), list.block(bi).count);
                got.extend_from_slice(&buf);
            }
            assert_eq!(got, want, "cfg {cfg:?}");
        }
    }

    #[test]
    fn single_entry_list() {
        let list = PostingList::build(vec![(7, 2.5)], PostingConfig::default());
        assert_eq!(list.len(), 1);
        assert_eq!(list.max_score(), 2.5);
        let mut c = list.cursor();
        assert_eq!(c.doc(), Some(7));
        assert_eq!(c.score(), 2.5);
        c.next();
        assert!(c.is_exhausted());
    }
}
