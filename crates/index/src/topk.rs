//! Top-k machinery: a bounded result heap, score-sorted lists, Fagin's
//! Threshold Algorithm (TA), No-Random-Access (NRA) and a WAND-style
//! document-at-a-time traversal over doc-sorted posting lists.
//!
//! These are the classical, *non-personalized* algorithms; `friends-core`
//! re-derives their termination conditions under seeker-dependent scores.

use crate::postings::PostingList;
use crate::{DocId, Score};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A candidate result. Ordering: higher score first, then smaller doc id —
/// the canonical tie-break used across the workspace so all processors
/// return identical rankings.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hit {
    pub doc: DocId,
    pub score: Score,
}

impl Eq for Hit {}

impl PartialOrd for Hit {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Hit {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // "Greater" = better: higher score, then smaller doc id.
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.doc.cmp(&self.doc))
    }
}

/// Bounded min-heap keeping the `k` best [`Hit`]s seen so far.
#[derive(Clone, Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Reverse<Hit>>,
}

impl TopK {
    /// Creates a collector for the best `k` hits (`k == 0` collects nothing).
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers a candidate; keeps it only if it beats the current k-th best.
    pub fn offer(&mut self, doc: DocId, score: Score) {
        if self.k == 0 {
            return;
        }
        let hit = Hit { doc, score };
        if self.heap.len() < self.k {
            self.heap.push(Reverse(hit));
        } else if hit > self.heap.peek().unwrap().0 {
            self.heap.pop();
            self.heap.push(Reverse(hit));
        }
    }

    /// Current k-th best score: the bar a new candidate must clear. Returns
    /// `f32::NEG_INFINITY` while fewer than `k` hits are held (anything can
    /// still enter).
    pub fn threshold(&self) -> Score {
        if self.heap.len() < self.k {
            f32::NEG_INFINITY
        } else {
            self.heap.peek().map_or(f32::NEG_INFINITY, |h| h.0.score)
        }
    }

    /// Number of hits currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no hits are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the collector, returning hits best-first.
    pub fn into_sorted_vec(self) -> Vec<(DocId, Score)> {
        let mut v: Vec<Hit> = self.heap.into_iter().map(|r| r.0).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v.into_iter().map(|h| (h.doc, h.score)).collect()
    }
}

/// A posting list materialized in *descending score* order, with random
/// access by doc id — the access structure TA requires.
#[derive(Clone, Debug)]
pub struct ScoreSortedList {
    /// `(doc, score)` sorted by score desc, doc asc.
    by_score: Vec<(DocId, Score)>,
    /// `(doc, score)` sorted by doc for random access.
    by_doc: Vec<(DocId, Score)>,
}

impl ScoreSortedList {
    /// Builds from arbitrary `(doc, score)` pairs (duplicates summed).
    pub fn build(entries: Vec<(DocId, Score)>) -> Self {
        let mut by_doc = entries;
        by_doc.sort_unstable_by_key(|&(d, _)| d);
        by_doc.dedup_by(|next, kept| {
            if next.0 == kept.0 {
                kept.1 += next.1;
                true
            } else {
                false
            }
        });
        let mut by_score = by_doc.clone();
        by_score.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ScoreSortedList { by_score, by_doc }
    }

    /// Builds from an existing doc-sorted [`PostingList`].
    pub fn from_postings(list: &PostingList) -> Self {
        Self::build(list.to_vec())
    }

    /// Entry at `rank` in descending score order.
    pub fn at(&self, rank: usize) -> Option<(DocId, Score)> {
        self.by_score.get(rank).copied()
    }

    /// Random-access score of `doc` (0.0 if absent — the standard missing-
    /// entry convention for sum aggregation).
    pub fn score_of(&self, doc: DocId) -> Score {
        match self.by_doc.binary_search_by_key(&doc, |&(d, _)| d) {
            Ok(i) => self.by_doc[i].1,
            Err(_) => 0.0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.by_score.len()
    }

    /// Whether the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.by_score.is_empty()
    }
}

/// Statistics reported by the early-termination algorithms, used by Fig 8.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Postings read sequentially (sorted access).
    pub sorted_accesses: usize,
    /// Random-access score probes (for [`BlockMaxWand`]: σ-range bound
    /// evaluations).
    pub random_accesses: usize,
    /// Depth reached in the deepest list.
    pub max_depth: usize,
    /// Whole blocks skipped without decoding ([`BlockMaxWand`] only).
    pub blocks_skipped: usize,
}

/// Fagin's Threshold Algorithm over score-sorted lists with sum aggregation.
///
/// Reads all lists in lock-step depth order; for every newly seen doc it
/// probes the other lists by random access to complete the score; stops when
/// the k-th best completed score meets the threshold `Σ_j s_j(depth)`.
pub fn ta_topk(lists: &[ScoreSortedList], k: usize) -> (Vec<(DocId, Score)>, AccessStats) {
    let mut topk = TopK::new(k);
    let mut stats = AccessStats::default();
    if lists.is_empty() || k == 0 {
        return (topk.into_sorted_vec(), stats);
    }
    let max_len = lists.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut seen: HashMap<DocId, ()> = HashMap::new();
    for depth in 0..max_len {
        let mut threshold = 0.0f32;
        let mut any = false;
        for (li, list) in lists.iter().enumerate() {
            if let Some((doc, s)) = list.at(depth) {
                any = true;
                stats.sorted_accesses += 1;
                threshold += s;
                if seen.insert(doc, ()).is_none() {
                    // Complete the aggregate via random access elsewhere.
                    let mut total = s;
                    for (lj, other) in lists.iter().enumerate() {
                        if lj != li {
                            stats.random_accesses += 1;
                            total += other.score_of(doc);
                        }
                    }
                    topk.offer(doc, total);
                }
            }
        }
        stats.max_depth = depth + 1;
        if !any {
            break;
        }
        // TA stop test: k results held and none below the frontier can win.
        if topk.len() >= k && topk.threshold() >= threshold {
            break;
        }
    }
    (topk.into_sorted_vec(), stats)
}

/// No-Random-Access algorithm (NRA) with sum aggregation.
///
/// Maintains `[lower, upper]` score intervals per seen doc; terminates when
/// the k-th best lower bound dominates every other doc's upper bound and the
/// unseen-doc bound. Returns the exact top-k set (scores are the exact
/// aggregates, completed lazily at the end for reporting convenience).
pub fn nra_topk(lists: &[ScoreSortedList], k: usize) -> (Vec<(DocId, Score)>, AccessStats) {
    let mut stats = AccessStats::default();
    if lists.is_empty() || k == 0 {
        return (Vec::new(), stats);
    }
    #[derive(Clone, Copy, Default)]
    struct Interval {
        lower: f32,
        /// Bitmask of lists this doc has been seen in (≤ 64 lists supported,
        /// plenty for multi-tag queries).
        seen_mask: u64,
    }
    assert!(lists.len() <= 64, "NRA supports at most 64 lists");
    let mut cand: HashMap<DocId, Interval> = HashMap::new();
    let max_len = lists.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut frontier: Vec<f32> = lists.iter().map(|l| l.at(0).map_or(0.0, |e| e.1)).collect();
    let mut stop_depth = max_len;
    for depth in 0..max_len {
        for (li, list) in lists.iter().enumerate() {
            if let Some((doc, s)) = list.at(depth) {
                stats.sorted_accesses += 1;
                let e = cand.entry(doc).or_default();
                e.lower += s;
                e.seen_mask |= 1 << li;
            }
            frontier[li] = list.at(depth).map_or(0.0, |e| e.1);
        }
        stats.max_depth = depth + 1;
        // Upper bound for a doc = lower + Σ frontier over unseen lists.
        // k-th best lower bound:
        let mut lowers: Vec<f32> = cand.values().map(|i| i.lower).collect();
        if lowers.len() < k {
            continue;
        }
        lowers.sort_unstable_by(|a, b| b.total_cmp(a));
        let kth_lower = lowers[k - 1];
        let unseen_ub: f32 = frontier.iter().sum();
        let all_dominated = cand.values().all(|i| {
            let mut ub = i.lower;
            for (li, f) in frontier.iter().enumerate() {
                if i.seen_mask & (1 << li) == 0 {
                    ub += f;
                }
            }
            ub <= kth_lower || i.lower >= kth_lower
        });
        if all_dominated && unseen_ub <= kth_lower {
            stop_depth = depth + 1;
            break;
        }
    }
    let _ = stop_depth;
    // Complete exact scores for the final ranking (bounded extra work, keeps
    // the reported scores comparable across algorithms).
    let mut topk = TopK::new(k);
    for (&doc, _) in cand.iter() {
        let total: f32 = lists.iter().map(|l| l.score_of(doc)).sum();
        topk.offer(doc, total);
    }
    (topk.into_sorted_vec(), stats)
}

/// WAND-style document-at-a-time top-k over doc-sorted posting lists with
/// sum aggregation, using list max scores for pruning.
pub fn wand_topk(lists: &[&PostingList], k: usize) -> (Vec<(DocId, Score)>, AccessStats) {
    let mut stats = AccessStats::default();
    let mut topk = TopK::new(k);
    if lists.is_empty() || k == 0 {
        return (topk.into_sorted_vec(), stats);
    }
    let mut cursors: Vec<_> = lists.iter().map(|l| l.cursor()).collect();
    loop {
        // Order live cursors by current doc.
        let mut order: Vec<usize> = (0..cursors.len())
            .filter(|&i| !cursors[i].is_exhausted())
            .collect();
        if order.is_empty() {
            break;
        }
        order.sort_unstable_by_key(|&i| cursors[i].doc().unwrap());
        // Find pivot: smallest prefix whose max-score sum beats the bar.
        let bar = topk.threshold();
        let mut acc = 0.0f32;
        let mut pivot = None;
        for (rank, &ci) in order.iter().enumerate() {
            acc += cursors[ci].list_max();
            if acc > bar || bar == f32::NEG_INFINITY {
                pivot = Some(rank);
                break;
            }
        }
        let Some(pivot_rank) = pivot else {
            break; // even all lists together can't beat the bar
        };
        let pivot_doc = cursors[order[pivot_rank]].doc().unwrap();
        if cursors[order[0]].doc().unwrap() == pivot_doc {
            // All cursors before the pivot sit on pivot_doc: score it fully.
            let mut score = 0.0f32;
            for c in cursors.iter_mut() {
                if c.doc() == Some(pivot_doc) {
                    score += c.score();
                    c.next();
                    stats.sorted_accesses += 1;
                }
            }
            topk.offer(pivot_doc, score);
        } else {
            // Advance the laggard(s) up to the pivot doc.
            for &ci in &order[..pivot_rank] {
                cursors[ci].advance(pivot_doc);
                stats.sorted_accesses += 1;
            }
        }
    }
    (topk.into_sorted_vec(), stats)
}

/// Seeker-dependent per-tagger weights, as seen by [`BlockMaxWand`].
///
/// Implementations live with the proximity models (`friends-core`); the
/// index crate only needs two capabilities: the exact weight of one tagger,
/// and a sound *upper bound* over a contiguous tagger-id range (the per-block
/// min/max range recorded by `PostingList::build_with_taggers`).
///
/// # Contract
/// `max_in_range(lo, hi)` must be `>= sigma(u)` for every `u ∈ [lo, hi]`,
/// and all values must be finite and non-negative. An overestimate only
/// weakens pruning; an underestimate breaks exactness.
pub trait SigmaBound {
    /// Exact σ of one tagger.
    fn sigma(&self, tagger: u32) -> f64;
    /// Upper bound on σ over taggers in `lo..=hi`.
    fn max_in_range(&self, lo: u32, hi: u32) -> f64;
}

/// `σ ≡ 1`: reduces [`BlockMaxWand`] to classical block-max WAND over the
/// global (σ-free) scores.
pub struct UnitSigma;

impl SigmaBound for UnitSigma {
    fn sigma(&self, _tagger: u32) -> f64 {
        1.0
    }
    fn max_in_range(&self, _lo: u32, _hi: u32) -> f64 {
        1.0
    }
}

/// How [`BlockMaxWand`] accumulates a document's score — chosen to be
/// bit-identical to the processor it serves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SigmaAccum {
    /// Per-contribution `(σ · w) as f32` adds into an f32 total, skipping
    /// `σ == 0` taggers; a doc is a result iff any tagger had `σ > 0`
    /// (`ExactOnline`'s `DenseAccumulator` semantics).
    F32,
    /// f64 accumulation, one final cast; a doc is a result iff its cast
    /// score is `> 0` (`GlobalBoundTA`'s `score_item` semantics).
    F64,
}

/// Relative slack applied to every pruning comparison: block/list upper
/// bounds are products of exact f64 σ bounds and the build-time-inflated
/// `sigma_base`, but chained f32 accumulation *across* lists can drift above
/// the exact sum by ~`total_terms · 2⁻²⁴` relative in the adversarial worst
/// case. `1e-3` covers ≈8k-term drifts — orders of magnitude beyond what
/// round-to-nearest produces on real weights — at a negligible pruning cost.
const BOUND_SLACK: f64 = 1.0 + 1e-3;

/// Per-list cursor state owned by [`BlockMaxWand`], reused across queries.
#[derive(Default)]
struct ListState {
    block: usize,
    pos: usize,
    cur_doc: DocId,
    exhausted: bool,
    /// Element index of the current block's first entry.
    elem_base: usize,
    /// Doc ids of the current block (decoded or copied).
    docs: Vec<DocId>,
    /// `sigma_base · σ-range-max` over the whole list.
    list_bound: f64,
    /// Cached block bound + σ-range max, valid for `bound_block`.
    block_bound: f64,
    block_sigma_max: f64,
    bound_block: usize,
}

/// **Block-max σ-aware WAND**: exact document-at-a-time top-k over σ-aware
/// posting lists (`PostingList::build_with_taggers`), skipping whole blocks
/// whenever `block.sigma_base · max σ over the block's tagger range` cannot
/// reach the current k-th threshold — the personalized generalization of
/// block-max WAND that serves seeker-dependent scores without falling back
/// to full posting scans.
///
/// Two structural prunes compose:
/// * **threshold prune** — classical WAND pivoting on list-level bounds,
///   refined by per-block bounds before any block is decoded;
/// * **support prune** — a block whose tagger range has `max σ == 0` (e.g. a
///   FriendsOnly seeker whose friends all fall outside the range) is skipped
///   even while the heap is not yet full: no document in it can be touched.
///
/// The operator owns all per-list scratch (block decode buffers, the pivot
/// ordering), so a warm instance performs no per-query allocation beyond the
/// result vector; [`BlockMaxWand::allocation_count`] exposes buffer-growth
/// events for the hot-path allocation tests.
///
/// Lists **without** tagger groups are scored by their entry score verbatim
/// (the `σ ≡ 1` interpretation); mixing them with a non-unit [`SigmaBound`]
/// is unsound and must be avoided by the caller.
#[derive(Default)]
pub struct BlockMaxWand {
    states: Vec<ListState>,
    order: Vec<usize>,
    allocations: u64,
}

impl BlockMaxWand {
    /// Creates an operator with empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        BlockMaxWand::default()
    }

    /// Buffer-growth events since creation (constant once warm).
    pub fn allocation_count(&self) -> u64 {
        self.allocations
    }

    fn load_block(st: &mut ListState, list: &PostingList, bi: usize, allocations: &mut u64) {
        st.block = bi;
        st.pos = 0;
        st.elem_base = list.block(bi).elem_start;
        let cap = st.docs.capacity();
        list.block_docs_into(bi, &mut st.docs);
        if st.docs.capacity() != cap {
            *allocations += 1;
        }
        st.cur_doc = st.docs[0];
    }

    /// Steps to the next posting.
    fn step(st: &mut ListState, list: &PostingList, allocations: &mut u64) {
        st.pos += 1;
        if st.pos >= st.docs.len() {
            if st.block + 1 < list.num_blocks() {
                Self::load_block(st, list, st.block + 1, allocations);
            } else {
                st.exhausted = true;
            }
        } else {
            st.cur_doc = st.docs[st.pos];
        }
    }

    /// First block index at or after `from` whose `last_doc >= target`, or
    /// `None` when the list has no such block.
    fn seek_block(list: &PostingList, from: usize, target: DocId) -> Option<usize> {
        let nb = list.num_blocks();
        if from < nb && list.block(from).last_doc >= target {
            return Some(from);
        }
        let (mut lo, mut hi) = (from + 1, nb);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if list.block(mid).last_doc < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo < nb).then_some(lo)
    }

    /// Advances to the first posting with `doc >= target`.
    fn advance(st: &mut ListState, list: &PostingList, target: DocId, allocations: &mut u64) {
        if st.exhausted || st.cur_doc >= target {
            return;
        }
        match Self::seek_block(list, st.block, target) {
            None => st.exhausted = true,
            Some(bi) => {
                if bi != st.block {
                    Self::load_block(st, list, bi, allocations);
                }
                // `last_doc >= target` guarantees an in-block hit.
                st.pos = st.docs.partition_point(|&d| d < target);
                st.cur_doc = st.docs[st.pos];
            }
        }
    }

    /// Accumulates entry `elem` of `list` into the running score, in the
    /// documented per-mode semantics.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn accumulate_entry(
        list: &PostingList,
        elem: usize,
        sigma: &dyn SigmaBound,
        accum: SigmaAccum,
        acc32: &mut f32,
        acc64: &mut f64,
        touched: &mut bool,
        stats: &mut AccessStats,
    ) {
        if list.has_taggers() {
            let group = list.taggers_of(elem);
            stats.sorted_accesses += group.len();
            for &(u, w) in group {
                let s = sigma.sigma(u);
                if s > 0.0 {
                    *touched = true;
                    match accum {
                        SigmaAccum::F32 => *acc32 += (s * w as f64) as f32,
                        SigmaAccum::F64 => *acc64 += s * w as f64,
                    }
                }
            }
        } else {
            stats.sorted_accesses += 1;
            *touched = true;
            let w = list.score_at(elem);
            match accum {
                SigmaAccum::F32 => *acc32 += w,
                SigmaAccum::F64 => *acc64 += w as f64,
            }
        }
    }

    /// Offers an accumulated doc score under the mode's result criterion.
    #[inline]
    fn offer_scored(
        topk: &mut TopK,
        doc: DocId,
        accum: SigmaAccum,
        acc32: f32,
        acc64: f64,
        touched: bool,
    ) {
        match accum {
            SigmaAccum::F32 => {
                if touched {
                    topk.offer(doc, acc32);
                }
            }
            SigmaAccum::F64 => {
                let sc = acc64 as f32;
                if sc > 0.0 {
                    topk.offer(doc, sc);
                }
            }
        }
    }

    /// Exhausts the last live list without the pivot machinery: per block,
    /// one σ-range bound (metadata only) decides between skipping the whole
    /// block — **without decoding it** — and scoring its docs, each first
    /// checked against its own `mass · block σ-max` bound before any tagger
    /// group is read. This is also the whole algorithm for single-term
    /// queries.
    #[allow(clippy::too_many_arguments)]
    fn drain_single(
        st: &mut ListState,
        list: &PostingList,
        sigma: &dyn SigmaBound,
        accum: SigmaAccum,
        topk: &mut TopK,
        stats: &mut AccessStats,
        allocations: &mut u64,
    ) {
        // The entry block is already decoded (the cursor sits mid-block);
        // blocks reached by skipping are decoded lazily, only when scored.
        let mut decoded = true;
        while !st.exhausted {
            let bar = topk.threshold();
            let full = bar != f32::NEG_INFINITY;
            if st.bound_block != st.block {
                let b = list.block(st.block);
                let smax = sigma.max_in_range(b.min_tagger, b.max_tagger);
                st.block_sigma_max = smax;
                st.block_bound = b.sigma_base as f64 * smax;
                st.bound_block = st.block;
                stats.random_accesses += 1;
            }
            if st.block_sigma_max == 0.0 || (full && st.block_bound * BOUND_SLACK <= bar as f64) {
                stats.blocks_skipped += 1;
            } else {
                if !decoded {
                    Self::load_block(st, list, st.block, allocations);
                    decoded = true;
                }
                let smax = st.block_sigma_max;
                let count = st.docs.len();
                while st.pos < count {
                    let elem = st.elem_base + st.pos;
                    let bar = topk.threshold();
                    if bar != f32::NEG_INFINITY
                        && smax * list.score_at(elem) as f64 * BOUND_SLACK <= bar as f64
                    {
                        st.pos += 1;
                        continue;
                    }
                    let mut acc32 = 0.0f32;
                    let mut acc64 = 0.0f64;
                    let mut touched = false;
                    Self::accumulate_entry(
                        list,
                        elem,
                        sigma,
                        accum,
                        &mut acc32,
                        &mut acc64,
                        &mut touched,
                        stats,
                    );
                    Self::offer_scored(topk, st.docs[st.pos], accum, acc32, acc64, touched);
                    st.pos += 1;
                }
            }
            if st.block + 1 < list.num_blocks() {
                // Move to the next block by metadata only; decode on demand.
                st.block += 1;
                st.pos = 0;
                decoded = false;
            } else {
                st.exhausted = true;
            }
        }
    }

    /// Bound info of the *shallow* block for `target`: the block (at or
    /// after the cursor) that would contain `target`, located via skip
    /// metadata only — nothing is decoded. Returns
    /// `(block bound, σ-range max, block last_doc)`, or `None` when the list
    /// holds no doc `>= target` (it then contributes nothing and imposes no
    /// skip constraint).
    fn shallow_bound(
        st: &mut ListState,
        list: &PostingList,
        target: DocId,
        sigma: &dyn SigmaBound,
        stats: &mut AccessStats,
    ) -> Option<(f64, f64, DocId)> {
        let bi = Self::seek_block(list, st.block, target)?;
        let b = list.block(bi);
        if st.bound_block != bi {
            let smax = sigma.max_in_range(b.min_tagger, b.max_tagger);
            st.block_sigma_max = smax;
            st.block_bound = b.sigma_base as f64 * smax;
            st.bound_block = bi;
            stats.random_accesses += 1;
        }
        Some((st.block_bound, st.block_sigma_max, b.last_doc))
    }

    /// Runs one exact top-k query. `lists` come in query-term order (the
    /// accumulation order processors score in); `k == 0` or empty input
    /// returns an empty ranking.
    pub fn search(
        &mut self,
        lists: &[&PostingList],
        sigma: &dyn SigmaBound,
        k: usize,
        accum: SigmaAccum,
    ) -> (Vec<(DocId, Score)>, AccessStats) {
        let mut stats = AccessStats::default();
        let mut topk = TopK::new(k);
        if lists.is_empty() || k == 0 {
            return (topk.into_sorted_vec(), stats);
        }
        if self.states.len() < lists.len() {
            self.states.resize_with(lists.len(), ListState::default);
            self.allocations += 1;
        }
        for (i, list) in lists.iter().enumerate() {
            let st = &mut self.states[i];
            st.block = 0;
            st.pos = 0;
            st.bound_block = usize::MAX;
            st.exhausted = list.is_empty();
            if st.exhausted {
                st.list_bound = 0.0;
                continue;
            }
            Self::load_block(st, list, 0, &mut self.allocations);
            let (lo, hi) = list.tagger_range();
            st.list_bound = list.sigma_base() as f64 * sigma.max_in_range(lo, hi);
            stats.random_accesses += 1;
        }
        let mut order = std::mem::take(&mut self.order);
        loop {
            let cap = order.capacity();
            order.clear();
            order.extend((0..lists.len()).filter(|&i| !self.states[i].exhausted));
            if order.capacity() != cap {
                self.allocations += 1;
            }
            if order.is_empty() {
                break;
            }
            if order.len() == 1 {
                let i = order[0];
                Self::drain_single(
                    &mut self.states[i],
                    lists[i],
                    sigma,
                    accum,
                    &mut topk,
                    &mut stats,
                    &mut self.allocations,
                );
                break;
            }
            order.sort_unstable_by_key(|&i| self.states[i].cur_doc);
            let bar = topk.threshold();
            let full = bar != f32::NEG_INFINITY;
            // Pivot: smallest prefix whose list-level bounds can beat the bar.
            let mut acc = 0.0f64;
            let mut pivot_rank = None;
            for (rank, &i) in order.iter().enumerate() {
                acc += self.states[i].list_bound;
                if !full || acc * BOUND_SLACK > bar as f64 {
                    pivot_rank = Some(rank);
                    break;
                }
            }
            let Some(mut pivot_rank) = pivot_rank else {
                break; // even all lists together can't beat the bar
            };
            let pivot_doc = self.states[order[pivot_rank]].cur_doc;
            // Fold doc ties into the prefix so every non-prefix cursor sits
            // strictly beyond the pivot (required by the skip-target logic).
            while pivot_rank + 1 < order.len()
                && self.states[order[pivot_rank + 1]].cur_doc == pivot_doc
            {
                pivot_rank += 1;
            }
            // Block-max refinement: per-block σ-aware bounds over the prefix.
            let mut bsum = 0.0f64;
            let mut sigma_alive = false;
            let mut min_block_last = u32::MAX;
            for &i in &order[..=pivot_rank] {
                if let Some((bound, smax, last)) =
                    Self::shallow_bound(&mut self.states[i], lists[i], pivot_doc, sigma, &mut stats)
                {
                    bsum += bound;
                    sigma_alive |= smax > 0.0;
                    min_block_last = min_block_last.min(last);
                }
            }
            if sigma_alive && (!full || bsum * BOUND_SLACK > bar as f64) {
                if self.states[order[0]].cur_doc == pivot_doc {
                    // Whole prefix aligned on the pivot. Per-doc refinement
                    // first: each list's contribution is bounded by its
                    // cached block σ-max times *this doc's own mass* — far
                    // tighter than the block mass max, and readable without
                    // touching any tagger group. (`shallow_bound` above has
                    // just validated the cache for the current blocks.)
                    let mut doc_bound = 0.0f64;
                    for &i in &order[..=pivot_rank] {
                        let st = &self.states[i];
                        doc_bound +=
                            st.block_sigma_max * lists[i].score_at(st.elem_base + st.pos) as f64;
                    }
                    if full && doc_bound * BOUND_SLACK <= bar as f64 {
                        for &i in &order[..=pivot_rank] {
                            Self::step(&mut self.states[i], lists[i], &mut self.allocations);
                        }
                        continue;
                    }
                    // Score it exactly, in list (query-term) order, ascending
                    // tagger within a group — the accumulation order every
                    // scan path uses.
                    let mut acc32 = 0.0f32;
                    let mut acc64 = 0.0f64;
                    let mut touched = false;
                    for (i, list) in lists.iter().enumerate() {
                        let st = &mut self.states[i];
                        if st.exhausted || st.cur_doc != pivot_doc {
                            continue;
                        }
                        Self::accumulate_entry(
                            list,
                            st.elem_base + st.pos,
                            sigma,
                            accum,
                            &mut acc32,
                            &mut acc64,
                            &mut touched,
                            &mut stats,
                        );
                        Self::step(st, list, &mut self.allocations);
                    }
                    Self::offer_scored(&mut topk, pivot_doc, accum, acc32, acc64, touched);
                } else {
                    // Advance the laggards up to the pivot doc.
                    for &i in &order[..pivot_rank] {
                        if self.states[i].cur_doc < pivot_doc {
                            Self::advance(
                                &mut self.states[i],
                                lists[i],
                                pivot_doc,
                                &mut self.allocations,
                            );
                        }
                    }
                }
            } else {
                // No doc in [pivot, min_block_last] can enter the top-k (or
                // be touched at all when `!sigma_alive`): jump every prefix
                // cursor past the constraining block, capped by the first
                // non-prefix cursor. `min_block_last + 1` can overflow when
                // a list carries doc id u32::MAX — the pruned range then
                // extends to the end of the id space, so an uncapped skip
                // must exhaust the prefix outright rather than "advance to
                // u32::MAX" (which would no-op on a cursor already there and
                // loop forever).
                stats.blocks_skipped += 1;
                let next_doc = (pivot_rank + 1 < order.len())
                    .then(|| self.states[order[pivot_rank + 1]].cur_doc);
                match (min_block_last.checked_add(1), next_doc) {
                    (base, Some(n)) => {
                        let target = base.map_or(n, |b| b.min(n));
                        for &i in &order[..=pivot_rank] {
                            if self.states[i].cur_doc < target {
                                Self::advance(
                                    &mut self.states[i],
                                    lists[i],
                                    target,
                                    &mut self.allocations,
                                );
                            }
                        }
                    }
                    (Some(target), None) => {
                        for &i in &order[..=pivot_rank] {
                            if self.states[i].cur_doc < target {
                                Self::advance(
                                    &mut self.states[i],
                                    lists[i],
                                    target,
                                    &mut self.allocations,
                                );
                            }
                        }
                    }
                    (None, None) => {
                        for &i in &order[..=pivot_rank] {
                            self.states[i].exhausted = true;
                        }
                    }
                }
            }
        }
        self.order = order;
        (topk.into_sorted_vec(), stats)
    }
}

/// Brute-force exact top-k over score-sorted lists (reference oracle for
/// tests and accuracy figures).
pub fn brute_force_topk(lists: &[ScoreSortedList], k: usize) -> Vec<(DocId, Score)> {
    let mut agg: HashMap<DocId, f32> = HashMap::new();
    for l in lists {
        for rank in 0.. {
            match l.at(rank) {
                Some((d, s)) => *agg.entry(d).or_insert(0.0) += s,
                None => break,
            }
        }
    }
    let mut topk = TopK::new(k);
    for (d, s) in agg {
        topk.offer(d, s);
    }
    topk.into_sorted_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postings::PostingConfig;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_lists(
        n_lists: usize,
        n_docs: u32,
        density: f64,
        seed: u64,
    ) -> Vec<Vec<(DocId, Score)>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_lists)
            .map(|_| {
                let mut entries = Vec::new();
                for d in 0..n_docs {
                    if rng.gen_bool(density) {
                        entries.push((d, rng.gen_range(0.01f32..5.0)));
                    }
                }
                entries
            })
            .collect()
    }

    #[test]
    fn topk_keeps_best_with_ties() {
        let mut t = TopK::new(2);
        t.offer(3, 1.0);
        t.offer(1, 1.0);
        t.offer(2, 1.0);
        t.offer(9, 0.5);
        // Ties broken toward smaller doc ids.
        assert_eq!(t.into_sorted_vec(), vec![(1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn topk_zero_k() {
        let mut t = TopK::new(0);
        t.offer(1, 5.0);
        assert!(t.is_empty());
        assert!(t.into_sorted_vec().is_empty());
    }

    #[test]
    fn topk_threshold_semantics() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f32::NEG_INFINITY);
        t.offer(1, 3.0);
        assert_eq!(t.threshold(), f32::NEG_INFINITY); // not full yet
        t.offer(2, 1.0);
        assert_eq!(t.threshold(), 1.0);
        t.offer(3, 2.0);
        assert_eq!(t.threshold(), 2.0);
    }

    #[test]
    fn score_sorted_list_access() {
        let l = ScoreSortedList::build(vec![(4, 1.0), (2, 3.0), (7, 2.0), (2, 1.0)]);
        assert_eq!(l.len(), 3);
        assert_eq!(l.at(0), Some((2, 4.0))); // duplicates summed
        assert_eq!(l.at(1), Some((7, 2.0)));
        assert_eq!(l.score_of(4), 1.0);
        assert_eq!(l.score_of(99), 0.0);
        assert_eq!(l.at(3), None);
    }

    #[test]
    fn ta_matches_brute_force_randomized() {
        for seed in 0..10u64 {
            let raw = random_lists(3, 400, 0.2, seed);
            let lists: Vec<ScoreSortedList> = raw.into_iter().map(ScoreSortedList::build).collect();
            for k in [1usize, 5, 20] {
                let (got, _) = ta_topk(&lists, k);
                let want = brute_force_topk(&lists, k);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.0, w.0, "seed {seed} k {k}");
                    assert!((g.1 - w.1).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn ta_early_termination_saves_accesses() {
        // Skewed lists: huge gap between best and rest ⇒ TA must stop early.
        let mut entries: Vec<(DocId, Score)> = (0..5000u32).map(|d| (d, 0.001)).collect();
        entries.push((9999, 100.0));
        let l1 = ScoreSortedList::build(entries.clone());
        let l2 = ScoreSortedList::build(entries);
        let (top, stats) = ta_topk(&[l1, l2], 1);
        assert_eq!(top[0].0, 9999);
        assert!(
            stats.max_depth < 100,
            "TA should terminate early, depth {}",
            stats.max_depth
        );
    }

    #[test]
    fn nra_matches_brute_force_randomized() {
        for seed in 20..28u64 {
            let raw = random_lists(4, 200, 0.25, seed);
            let lists: Vec<ScoreSortedList> = raw.into_iter().map(ScoreSortedList::build).collect();
            for k in [1usize, 3, 10] {
                let (got, _) = nra_topk(&lists, k);
                let want = brute_force_topk(&lists, k);
                assert_eq!(
                    got.iter().map(|h| h.0).collect::<Vec<_>>(),
                    want.iter().map(|h| h.0).collect::<Vec<_>>(),
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn wand_matches_brute_force_randomized() {
        for seed in 40..48u64 {
            let raw = random_lists(3, 300, 0.3, seed);
            let lists_pl: Vec<PostingList> = raw
                .iter()
                .map(|v| PostingList::build(v.clone(), PostingConfig::default()))
                .collect();
            let refs: Vec<&PostingList> = lists_pl.iter().collect();
            let sorted: Vec<ScoreSortedList> =
                raw.into_iter().map(ScoreSortedList::build).collect();
            for k in [1usize, 7, 25] {
                let (got, _) = wand_topk(&refs, k);
                let want = brute_force_topk(&sorted, k);
                assert_eq!(
                    got.iter().map(|h| h.0).collect::<Vec<_>>(),
                    want.iter().map(|h| h.0).collect::<Vec<_>>(),
                    "seed {seed} k {k}"
                );
                for (g, w) in got.iter().zip(&want) {
                    assert!((g.1 - w.1).abs() < 1e-4);
                }
            }
        }
    }

    /// Sorted sparse σ support for tests: exact range max by scan.
    struct SparseSigma(Vec<(u32, f64)>);

    impl SigmaBound for SparseSigma {
        fn sigma(&self, tagger: u32) -> f64 {
            match self.0.binary_search_by_key(&tagger, |&(u, _)| u) {
                Ok(i) => self.0[i].1,
                Err(_) => 0.0,
            }
        }
        fn max_in_range(&self, lo: u32, hi: u32) -> f64 {
            let a = self.0.partition_point(|&(u, _)| u < lo);
            self.0[a..]
                .iter()
                .take_while(|&&(u, _)| u <= hi)
                .map(|&(_, s)| s)
                .fold(0.0, f64::max)
        }
    }

    /// F32-accumulation reference for σ-weighted scoring: per doc, lists in
    /// order, ascending tagger within a group — mirrors every scan path.
    fn sigma_reference(
        lists: &[Vec<(DocId, u32, f32)>],
        sigma: &dyn SigmaBound,
        k: usize,
    ) -> Vec<(DocId, Score)> {
        let mut per_doc: std::collections::BTreeMap<DocId, (f32, bool)> =
            std::collections::BTreeMap::new();
        for raw in lists {
            let mut sorted = raw.clone();
            sorted.sort_unstable_by_key(|&(d, u, _)| (d, u));
            sorted.dedup_by(|n, kept| {
                if n.0 == kept.0 && n.1 == kept.1 {
                    kept.2 += n.2;
                    true
                } else {
                    false
                }
            });
            for (d, u, w) in sorted {
                let s = sigma.sigma(u);
                if s > 0.0 {
                    let e = per_doc.entry(d).or_insert((0.0, false));
                    e.0 += (s * w as f64) as f32;
                    e.1 = true;
                }
            }
        }
        let mut topk = TopK::new(k);
        for (d, (sc, touched)) in per_doc {
            if touched {
                topk.offer(d, sc);
            }
        }
        topk.into_sorted_vec()
    }

    #[test]
    fn blockmax_unit_sigma_matches_wand() {
        let mut bmw = BlockMaxWand::new();
        for seed in 60..66u64 {
            let raw = random_lists(3, 300, 0.3, seed);
            let plists: Vec<PostingList> = raw
                .iter()
                .map(|v| {
                    PostingList::build(
                        v.clone(),
                        PostingConfig {
                            block_len: 16,
                            ..PostingConfig::default()
                        },
                    )
                })
                .collect();
            let refs: Vec<&PostingList> = plists.iter().collect();
            for k in [1usize, 7, 25] {
                let (got, _) = bmw.search(&refs, &UnitSigma, k, SigmaAccum::F32);
                let (want, _) = wand_topk(&refs, k);
                assert_eq!(
                    got.iter().map(|h| h.0).collect::<Vec<_>>(),
                    want.iter().map(|h| h.0).collect::<Vec<_>>(),
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn blockmax_sigma_weighted_matches_reference() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut bmw = BlockMaxWand::new();
        for _round in 0..8 {
            let mut lists_raw: Vec<Vec<(DocId, u32, f32)>> = Vec::new();
            for _ in 0..3 {
                let mut l = Vec::new();
                for _ in 0..200 {
                    if rng.gen_bool(0.4) {
                        l.push((
                            rng.gen_range(0u32..150),
                            rng.gen_range(0u32..40),
                            rng.gen_range(0.01f32..3.0),
                        ));
                    }
                }
                lists_raw.push(l);
            }
            let mut support: Vec<(u32, f64)> = Vec::new();
            for u in 0..40u32 {
                if rng.gen_bool(0.3) {
                    support.push((u, rng.gen_range(0.05f64..1.0)));
                }
            }
            let sigma = SparseSigma(support);
            let plists: Vec<PostingList> = lists_raw
                .iter()
                .map(|v| {
                    PostingList::build_with_taggers(
                        v.clone(),
                        PostingConfig {
                            block_len: 4,
                            ..PostingConfig::default()
                        },
                    )
                })
                .collect();
            let refs: Vec<&PostingList> = plists.iter().collect();
            for k in [1usize, 5, 100] {
                let (got, _) = bmw.search(&refs, &sigma, k, SigmaAccum::F32);
                let want = sigma_reference(&lists_raw, &sigma, k);
                assert_eq!(want.len(), got.len(), "k {k}");
                for (w, g) in want.iter().zip(&got) {
                    assert_eq!(w.0, g.0, "k {k}");
                    assert_eq!(w.1.to_bits(), g.1.to_bits(), "k {k} doc {}", w.0);
                }
            }
        }
    }

    #[test]
    fn blockmax_empty_support_skips_everything() {
        let triples: Vec<(DocId, u32, f32)> = (0..512u32).map(|d| (d, d % 64, 1.0)).collect();
        let list = PostingList::build_with_taggers(
            triples,
            PostingConfig {
                block_len: 8,
                ..PostingConfig::default()
            },
        );
        let mut bmw = BlockMaxWand::new();
        // σ lives entirely outside the tagger universe: nothing is touched,
        // and the support prune must skip without decoding groups.
        let sigma = SparseSigma(vec![(1000, 1.0)]);
        let (got, stats) = bmw.search(&[&list], &sigma, 10, SigmaAccum::F32);
        assert!(got.is_empty());
        assert_eq!(stats.sorted_accesses, 0, "no posting may be scored");
        assert!(stats.blocks_skipped > 0);
    }

    #[test]
    fn blockmax_handles_max_doc_id_without_hanging() {
        // Regression: a posting at doc u32::MAX makes the skip target
        // `min_block_last + 1` overflow; the skip must exhaust the pruned
        // cursors instead of "advancing" to a doc id that cannot grow.
        let triples: Vec<(DocId, u32, f32)> =
            vec![(10, 3, 1.0), (u32::MAX - 1, 4, 1.0), (u32::MAX, 5, 2.0)];
        let cfg = PostingConfig {
            block_len: 2,
            ..PostingConfig::default()
        };
        let l1 = PostingList::build_with_taggers(triples.clone(), cfg);
        let l2 = PostingList::build_with_taggers(triples, cfg);
        let mut bmw = BlockMaxWand::new();
        // Support prune path: σ = 0 everywhere → skip branch fires on every
        // pivot, including the one at u32::MAX.
        let (got, _) = bmw.search(&[&l1, &l2], &SparseSigma(vec![]), 5, SigmaAccum::F32);
        assert!(got.is_empty());
        // Threshold prune path: one strong tagger fills the heap, the rest
        // of both lists (ending at u32::MAX) is pruned by the bar.
        let sigma = SparseSigma(vec![(3, 1.0)]);
        let (got, _) = bmw.search(&[&l1, &l2], &sigma, 1, SigmaAccum::F32);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 10);
        // And scoring at u32::MAX itself works.
        let sigma_all = SparseSigma(vec![(3, 0.5), (4, 0.5), (5, 0.5)]);
        let (got, _) = bmw.search(&[&l1, &l2], &sigma_all, 3, SigmaAccum::F32);
        assert_eq!(got.first().map(|h| h.0), Some(u32::MAX));
    }

    #[test]
    fn drain_single_skips_blocks_without_decoding() {
        // All σ mass outside the tagger universe: every block must be
        // support-pruned, and — on the single-list drain — skipped blocks
        // must not be decoded (no sorted accesses, no decode allocations
        // beyond the entry block).
        let triples: Vec<(DocId, u32, f32)> = (0..512u32).map(|d| (d, d % 64, 1.0)).collect();
        let list = PostingList::build_with_taggers(
            triples,
            PostingConfig {
                block_len: 8,
                ..PostingConfig::default()
            },
        );
        let mut bmw = BlockMaxWand::new();
        let sigma = SparseSigma(vec![(1000, 1.0)]);
        bmw.search(&[&list], &sigma, 10, SigmaAccum::F32);
        let warm = bmw.allocation_count();
        let (got, stats) = bmw.search(&[&list], &sigma, 10, SigmaAccum::F32);
        assert!(got.is_empty());
        assert_eq!(stats.sorted_accesses, 0);
        assert_eq!(stats.blocks_skipped, list.num_blocks());
        assert_eq!(
            bmw.allocation_count(),
            warm,
            "skipped blocks must not grow decode buffers"
        );
    }

    #[test]
    fn blockmax_warm_instance_does_not_allocate() {
        let raw = random_lists(3, 400, 0.3, 123);
        let plists: Vec<PostingList> = raw
            .iter()
            .map(|v| PostingList::build(v.clone(), PostingConfig::default()))
            .collect();
        let refs: Vec<&PostingList> = plists.iter().collect();
        let mut bmw = BlockMaxWand::new();
        bmw.search(&refs, &UnitSigma, 10, SigmaAccum::F32);
        let warm = bmw.allocation_count();
        for k in [1usize, 5, 10, 25] {
            bmw.search(&refs, &UnitSigma, k, SigmaAccum::F32);
        }
        assert_eq!(bmw.allocation_count(), warm, "warm operator reallocated");
    }

    #[test]
    fn empty_inputs() {
        assert!(ta_topk(&[], 5).0.is_empty());
        assert!(nra_topk(&[], 5).0.is_empty());
        assert!(wand_topk(&[], 5).0.is_empty());
        let mut bmw = BlockMaxWand::new();
        assert!(bmw.search(&[], &UnitSigma, 5, SigmaAccum::F32).0.is_empty());
        let empty_pl = PostingList::build(vec![], PostingConfig::default());
        assert!(bmw
            .search(&[&empty_pl], &UnitSigma, 5, SigmaAccum::F64)
            .0
            .is_empty());
        let empty = ScoreSortedList::build(vec![]);
        assert!(empty.is_empty());
        let (r, _) = ta_topk(&[empty], 3);
        assert!(r.is_empty());
    }

    #[test]
    fn k_larger_than_candidates() {
        let l = ScoreSortedList::build(vec![(1, 1.0), (2, 2.0)]);
        let (r, _) = ta_topk(&[l], 10);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].0, 2);
    }

    #[test]
    fn single_list_fast_paths() {
        let entries: Vec<(DocId, Score)> = (0..100).map(|d| (d, (d % 13) as f32)).collect();
        let pl = PostingList::build(entries.clone(), PostingConfig::default());
        let sl = ScoreSortedList::build(entries);
        let (w, _) = wand_topk(&[&pl], 5);
        let bf = brute_force_topk(&[sl], 5);
        assert_eq!(
            w.iter().map(|h| h.0).collect::<Vec<_>>(),
            bf.iter().map(|h| h.0).collect::<Vec<_>>()
        );
    }
}
