//! Top-k machinery: a bounded result heap, score-sorted lists, Fagin's
//! Threshold Algorithm (TA), No-Random-Access (NRA) and a WAND-style
//! document-at-a-time traversal over doc-sorted posting lists.
//!
//! These are the classical, *non-personalized* algorithms; `friends-core`
//! re-derives their termination conditions under seeker-dependent scores.

use crate::postings::PostingList;
use crate::{DocId, Score};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A candidate result. Ordering: higher score first, then smaller doc id —
/// the canonical tie-break used across the workspace so all processors
/// return identical rankings.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hit {
    pub doc: DocId,
    pub score: Score,
}

impl Eq for Hit {}

impl PartialOrd for Hit {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Hit {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // "Greater" = better: higher score, then smaller doc id.
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.doc.cmp(&self.doc))
    }
}

/// Bounded min-heap keeping the `k` best [`Hit`]s seen so far.
#[derive(Clone, Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Reverse<Hit>>,
}

impl TopK {
    /// Creates a collector for the best `k` hits (`k == 0` collects nothing).
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers a candidate; keeps it only if it beats the current k-th best.
    pub fn offer(&mut self, doc: DocId, score: Score) {
        if self.k == 0 {
            return;
        }
        let hit = Hit { doc, score };
        if self.heap.len() < self.k {
            self.heap.push(Reverse(hit));
        } else if hit > self.heap.peek().unwrap().0 {
            self.heap.pop();
            self.heap.push(Reverse(hit));
        }
    }

    /// Current k-th best score: the bar a new candidate must clear. Returns
    /// `f32::NEG_INFINITY` while fewer than `k` hits are held (anything can
    /// still enter).
    pub fn threshold(&self) -> Score {
        if self.heap.len() < self.k {
            f32::NEG_INFINITY
        } else {
            self.heap.peek().map_or(f32::NEG_INFINITY, |h| h.0.score)
        }
    }

    /// Number of hits currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no hits are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the collector, returning hits best-first.
    pub fn into_sorted_vec(self) -> Vec<(DocId, Score)> {
        let mut v: Vec<Hit> = self.heap.into_iter().map(|r| r.0).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v.into_iter().map(|h| (h.doc, h.score)).collect()
    }
}

/// A posting list materialized in *descending score* order, with random
/// access by doc id — the access structure TA requires.
#[derive(Clone, Debug)]
pub struct ScoreSortedList {
    /// `(doc, score)` sorted by score desc, doc asc.
    by_score: Vec<(DocId, Score)>,
    /// `(doc, score)` sorted by doc for random access.
    by_doc: Vec<(DocId, Score)>,
}

impl ScoreSortedList {
    /// Builds from arbitrary `(doc, score)` pairs (duplicates summed).
    pub fn build(entries: Vec<(DocId, Score)>) -> Self {
        let mut by_doc = entries;
        by_doc.sort_unstable_by_key(|&(d, _)| d);
        by_doc.dedup_by(|next, kept| {
            if next.0 == kept.0 {
                kept.1 += next.1;
                true
            } else {
                false
            }
        });
        let mut by_score = by_doc.clone();
        by_score.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ScoreSortedList { by_score, by_doc }
    }

    /// Builds from an existing doc-sorted [`PostingList`].
    pub fn from_postings(list: &PostingList) -> Self {
        Self::build(list.to_vec())
    }

    /// Entry at `rank` in descending score order.
    pub fn at(&self, rank: usize) -> Option<(DocId, Score)> {
        self.by_score.get(rank).copied()
    }

    /// Random-access score of `doc` (0.0 if absent — the standard missing-
    /// entry convention for sum aggregation).
    pub fn score_of(&self, doc: DocId) -> Score {
        match self.by_doc.binary_search_by_key(&doc, |&(d, _)| d) {
            Ok(i) => self.by_doc[i].1,
            Err(_) => 0.0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.by_score.len()
    }

    /// Whether the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.by_score.is_empty()
    }
}

/// Statistics reported by the early-termination algorithms, used by Fig 8.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Postings read sequentially (sorted access).
    pub sorted_accesses: usize,
    /// Random-access score probes.
    pub random_accesses: usize,
    /// Depth reached in the deepest list.
    pub max_depth: usize,
}

/// Fagin's Threshold Algorithm over score-sorted lists with sum aggregation.
///
/// Reads all lists in lock-step depth order; for every newly seen doc it
/// probes the other lists by random access to complete the score; stops when
/// the k-th best completed score meets the threshold `Σ_j s_j(depth)`.
pub fn ta_topk(lists: &[ScoreSortedList], k: usize) -> (Vec<(DocId, Score)>, AccessStats) {
    let mut topk = TopK::new(k);
    let mut stats = AccessStats::default();
    if lists.is_empty() || k == 0 {
        return (topk.into_sorted_vec(), stats);
    }
    let max_len = lists.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut seen: HashMap<DocId, ()> = HashMap::new();
    for depth in 0..max_len {
        let mut threshold = 0.0f32;
        let mut any = false;
        for (li, list) in lists.iter().enumerate() {
            if let Some((doc, s)) = list.at(depth) {
                any = true;
                stats.sorted_accesses += 1;
                threshold += s;
                if seen.insert(doc, ()).is_none() {
                    // Complete the aggregate via random access elsewhere.
                    let mut total = s;
                    for (lj, other) in lists.iter().enumerate() {
                        if lj != li {
                            stats.random_accesses += 1;
                            total += other.score_of(doc);
                        }
                    }
                    topk.offer(doc, total);
                }
            }
        }
        stats.max_depth = depth + 1;
        if !any {
            break;
        }
        // TA stop test: k results held and none below the frontier can win.
        if topk.len() >= k && topk.threshold() >= threshold {
            break;
        }
    }
    (topk.into_sorted_vec(), stats)
}

/// No-Random-Access algorithm (NRA) with sum aggregation.
///
/// Maintains `[lower, upper]` score intervals per seen doc; terminates when
/// the k-th best lower bound dominates every other doc's upper bound and the
/// unseen-doc bound. Returns the exact top-k set (scores are the exact
/// aggregates, completed lazily at the end for reporting convenience).
pub fn nra_topk(lists: &[ScoreSortedList], k: usize) -> (Vec<(DocId, Score)>, AccessStats) {
    let mut stats = AccessStats::default();
    if lists.is_empty() || k == 0 {
        return (Vec::new(), stats);
    }
    #[derive(Clone, Copy, Default)]
    struct Interval {
        lower: f32,
        /// Bitmask of lists this doc has been seen in (≤ 64 lists supported,
        /// plenty for multi-tag queries).
        seen_mask: u64,
    }
    assert!(lists.len() <= 64, "NRA supports at most 64 lists");
    let mut cand: HashMap<DocId, Interval> = HashMap::new();
    let max_len = lists.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut frontier: Vec<f32> = lists.iter().map(|l| l.at(0).map_or(0.0, |e| e.1)).collect();
    let mut stop_depth = max_len;
    for depth in 0..max_len {
        for (li, list) in lists.iter().enumerate() {
            if let Some((doc, s)) = list.at(depth) {
                stats.sorted_accesses += 1;
                let e = cand.entry(doc).or_default();
                e.lower += s;
                e.seen_mask |= 1 << li;
            }
            frontier[li] = list.at(depth).map_or(0.0, |e| e.1);
        }
        stats.max_depth = depth + 1;
        // Upper bound for a doc = lower + Σ frontier over unseen lists.
        // k-th best lower bound:
        let mut lowers: Vec<f32> = cand.values().map(|i| i.lower).collect();
        if lowers.len() < k {
            continue;
        }
        lowers.sort_unstable_by(|a, b| b.total_cmp(a));
        let kth_lower = lowers[k - 1];
        let unseen_ub: f32 = frontier.iter().sum();
        let all_dominated = cand.values().all(|i| {
            let mut ub = i.lower;
            for (li, f) in frontier.iter().enumerate() {
                if i.seen_mask & (1 << li) == 0 {
                    ub += f;
                }
            }
            ub <= kth_lower || i.lower >= kth_lower
        });
        if all_dominated && unseen_ub <= kth_lower {
            stop_depth = depth + 1;
            break;
        }
    }
    let _ = stop_depth;
    // Complete exact scores for the final ranking (bounded extra work, keeps
    // the reported scores comparable across algorithms).
    let mut topk = TopK::new(k);
    for (&doc, _) in cand.iter() {
        let total: f32 = lists.iter().map(|l| l.score_of(doc)).sum();
        topk.offer(doc, total);
    }
    (topk.into_sorted_vec(), stats)
}

/// WAND-style document-at-a-time top-k over doc-sorted posting lists with
/// sum aggregation, using list max scores for pruning.
pub fn wand_topk(lists: &[&PostingList], k: usize) -> (Vec<(DocId, Score)>, AccessStats) {
    let mut stats = AccessStats::default();
    let mut topk = TopK::new(k);
    if lists.is_empty() || k == 0 {
        return (topk.into_sorted_vec(), stats);
    }
    let mut cursors: Vec<_> = lists.iter().map(|l| l.cursor()).collect();
    loop {
        // Order live cursors by current doc.
        let mut order: Vec<usize> = (0..cursors.len())
            .filter(|&i| !cursors[i].is_exhausted())
            .collect();
        if order.is_empty() {
            break;
        }
        order.sort_unstable_by_key(|&i| cursors[i].doc().unwrap());
        // Find pivot: smallest prefix whose max-score sum beats the bar.
        let bar = topk.threshold();
        let mut acc = 0.0f32;
        let mut pivot = None;
        for (rank, &ci) in order.iter().enumerate() {
            acc += cursors[ci].list_max();
            if acc > bar || bar == f32::NEG_INFINITY {
                pivot = Some(rank);
                break;
            }
        }
        let Some(pivot_rank) = pivot else {
            break; // even all lists together can't beat the bar
        };
        let pivot_doc = cursors[order[pivot_rank]].doc().unwrap();
        if cursors[order[0]].doc().unwrap() == pivot_doc {
            // All cursors before the pivot sit on pivot_doc: score it fully.
            let mut score = 0.0f32;
            for c in cursors.iter_mut() {
                if c.doc() == Some(pivot_doc) {
                    score += c.score();
                    c.next();
                    stats.sorted_accesses += 1;
                }
            }
            topk.offer(pivot_doc, score);
        } else {
            // Advance the laggard(s) up to the pivot doc.
            for &ci in &order[..pivot_rank] {
                cursors[ci].advance(pivot_doc);
                stats.sorted_accesses += 1;
            }
        }
    }
    (topk.into_sorted_vec(), stats)
}

/// Brute-force exact top-k over score-sorted lists (reference oracle for
/// tests and accuracy figures).
pub fn brute_force_topk(lists: &[ScoreSortedList], k: usize) -> Vec<(DocId, Score)> {
    let mut agg: HashMap<DocId, f32> = HashMap::new();
    for l in lists {
        for rank in 0.. {
            match l.at(rank) {
                Some((d, s)) => *agg.entry(d).or_insert(0.0) += s,
                None => break,
            }
        }
    }
    let mut topk = TopK::new(k);
    for (d, s) in agg {
        topk.offer(d, s);
    }
    topk.into_sorted_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postings::PostingConfig;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_lists(
        n_lists: usize,
        n_docs: u32,
        density: f64,
        seed: u64,
    ) -> Vec<Vec<(DocId, Score)>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_lists)
            .map(|_| {
                let mut entries = Vec::new();
                for d in 0..n_docs {
                    if rng.gen_bool(density) {
                        entries.push((d, rng.gen_range(0.01f32..5.0)));
                    }
                }
                entries
            })
            .collect()
    }

    #[test]
    fn topk_keeps_best_with_ties() {
        let mut t = TopK::new(2);
        t.offer(3, 1.0);
        t.offer(1, 1.0);
        t.offer(2, 1.0);
        t.offer(9, 0.5);
        // Ties broken toward smaller doc ids.
        assert_eq!(t.into_sorted_vec(), vec![(1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn topk_zero_k() {
        let mut t = TopK::new(0);
        t.offer(1, 5.0);
        assert!(t.is_empty());
        assert!(t.into_sorted_vec().is_empty());
    }

    #[test]
    fn topk_threshold_semantics() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f32::NEG_INFINITY);
        t.offer(1, 3.0);
        assert_eq!(t.threshold(), f32::NEG_INFINITY); // not full yet
        t.offer(2, 1.0);
        assert_eq!(t.threshold(), 1.0);
        t.offer(3, 2.0);
        assert_eq!(t.threshold(), 2.0);
    }

    #[test]
    fn score_sorted_list_access() {
        let l = ScoreSortedList::build(vec![(4, 1.0), (2, 3.0), (7, 2.0), (2, 1.0)]);
        assert_eq!(l.len(), 3);
        assert_eq!(l.at(0), Some((2, 4.0))); // duplicates summed
        assert_eq!(l.at(1), Some((7, 2.0)));
        assert_eq!(l.score_of(4), 1.0);
        assert_eq!(l.score_of(99), 0.0);
        assert_eq!(l.at(3), None);
    }

    #[test]
    fn ta_matches_brute_force_randomized() {
        for seed in 0..10u64 {
            let raw = random_lists(3, 400, 0.2, seed);
            let lists: Vec<ScoreSortedList> = raw.into_iter().map(ScoreSortedList::build).collect();
            for k in [1usize, 5, 20] {
                let (got, _) = ta_topk(&lists, k);
                let want = brute_force_topk(&lists, k);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.0, w.0, "seed {seed} k {k}");
                    assert!((g.1 - w.1).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn ta_early_termination_saves_accesses() {
        // Skewed lists: huge gap between best and rest ⇒ TA must stop early.
        let mut entries: Vec<(DocId, Score)> = (0..5000u32).map(|d| (d, 0.001)).collect();
        entries.push((9999, 100.0));
        let l1 = ScoreSortedList::build(entries.clone());
        let l2 = ScoreSortedList::build(entries);
        let (top, stats) = ta_topk(&[l1, l2], 1);
        assert_eq!(top[0].0, 9999);
        assert!(
            stats.max_depth < 100,
            "TA should terminate early, depth {}",
            stats.max_depth
        );
    }

    #[test]
    fn nra_matches_brute_force_randomized() {
        for seed in 20..28u64 {
            let raw = random_lists(4, 200, 0.25, seed);
            let lists: Vec<ScoreSortedList> = raw.into_iter().map(ScoreSortedList::build).collect();
            for k in [1usize, 3, 10] {
                let (got, _) = nra_topk(&lists, k);
                let want = brute_force_topk(&lists, k);
                assert_eq!(
                    got.iter().map(|h| h.0).collect::<Vec<_>>(),
                    want.iter().map(|h| h.0).collect::<Vec<_>>(),
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn wand_matches_brute_force_randomized() {
        for seed in 40..48u64 {
            let raw = random_lists(3, 300, 0.3, seed);
            let lists_pl: Vec<PostingList> = raw
                .iter()
                .map(|v| PostingList::build(v.clone(), PostingConfig::default()))
                .collect();
            let refs: Vec<&PostingList> = lists_pl.iter().collect();
            let sorted: Vec<ScoreSortedList> =
                raw.into_iter().map(ScoreSortedList::build).collect();
            for k in [1usize, 7, 25] {
                let (got, _) = wand_topk(&refs, k);
                let want = brute_force_topk(&sorted, k);
                assert_eq!(
                    got.iter().map(|h| h.0).collect::<Vec<_>>(),
                    want.iter().map(|h| h.0).collect::<Vec<_>>(),
                    "seed {seed} k {k}"
                );
                for (g, w) in got.iter().zip(&want) {
                    assert!((g.1 - w.1).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(ta_topk(&[], 5).0.is_empty());
        assert!(nra_topk(&[], 5).0.is_empty());
        assert!(wand_topk(&[], 5).0.is_empty());
        let empty = ScoreSortedList::build(vec![]);
        assert!(empty.is_empty());
        let (r, _) = ta_topk(&[empty], 3);
        assert!(r.is_empty());
    }

    #[test]
    fn k_larger_than_candidates() {
        let l = ScoreSortedList::build(vec![(1, 1.0), (2, 2.0)]);
        let (r, _) = ta_topk(&[l], 10);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].0, 2);
    }

    #[test]
    fn single_list_fast_paths() {
        let entries: Vec<(DocId, Score)> = (0..100).map(|d| (d, (d % 13) as f32)).collect();
        let pl = PostingList::build(entries.clone(), PostingConfig::default());
        let sl = ScoreSortedList::build(entries);
        let (w, _) = wand_topk(&[&pl], 5);
        let bf = brute_force_topk(&[sl], 5);
        assert_eq!(
            w.iter().map(|h| h.0).collect::<Vec<_>>(),
            bf.iter().map(|h| h.0).collect::<Vec<_>>()
        );
    }
}
