//! Score accumulation helpers: term-at-a-time (TAAT) and document-at-a-time
//! (DAAT) full evaluation over posting lists.
//!
//! These are the *exhaustive* evaluation strategies — no early termination —
//! used as correctness oracles and as the "no optimization" baselines in the
//! ablation table.

use crate::postings::PostingList;
use crate::topk::TopK;
use crate::{DocId, Score};
use std::collections::HashMap;

/// Term-at-a-time: accumulate every list fully into a hash map, then select
/// the top-k. `O(total postings)` work, `O(distinct docs)` space.
pub fn taat_topk(lists: &[&PostingList], k: usize) -> Vec<(DocId, Score)> {
    let mut acc: HashMap<DocId, Score> = HashMap::new();
    for list in lists {
        let mut c = list.cursor();
        while let Some(d) = c.doc() {
            *acc.entry(d).or_insert(0.0) += c.score();
            c.next();
        }
    }
    let mut topk = TopK::new(k);
    for (d, s) in acc {
        topk.offer(d, s);
    }
    topk.into_sorted_vec()
}

/// Document-at-a-time: k-way merge of doc-sorted cursors, scoring each doc
/// completely before moving on. `O(total postings · log #lists)` time,
/// `O(k)` space.
pub fn daat_topk(lists: &[&PostingList], k: usize) -> Vec<(DocId, Score)> {
    let mut cursors: Vec<_> = lists.iter().map(|l| l.cursor()).collect();
    let mut topk = TopK::new(k);
    loop {
        let mut min_doc: Option<DocId> = None;
        for c in &cursors {
            if let Some(d) = c.doc() {
                min_doc = Some(min_doc.map_or(d, |m| m.min(d)));
            }
        }
        let Some(doc) = min_doc else { break };
        let mut score = 0.0f32;
        for c in cursors.iter_mut() {
            if c.doc() == Some(doc) {
                score += c.score();
                c.next();
            }
        }
        topk.offer(doc, score);
    }
    topk.into_sorted_vec()
}

/// Dense accumulator over a known doc-id universe: faster than a hash map
/// when the universe is small relative to the posting volume. Reusable
/// across queries: slots are invalidated by bumping an epoch counter, so a
/// drain touches no per-slot state at all (not even the touched list's
/// entries) — the scheme every workspace on the query hot path follows.
pub struct DenseAccumulator {
    scores: Vec<Score>,
    /// `scores[d]` is live iff `stamp[d] == epoch`.
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<DocId>,
    allocations: u64,
}

impl DenseAccumulator {
    /// Creates an accumulator for doc ids in `0..universe`.
    pub fn new(universe: usize) -> Self {
        DenseAccumulator {
            scores: vec![0.0; universe],
            stamp: vec![0; universe],
            epoch: 1,
            touched: Vec::new(),
            allocations: 1,
        }
    }

    /// Number of times the accumulator (re)sized its buffers.
    pub fn allocation_count(&self) -> u64 {
        self.allocations
    }

    /// Adds `s` to `doc`'s accumulated score.
    #[inline]
    pub fn add(&mut self, doc: DocId, s: Score) {
        let d = doc as usize;
        if self.stamp[d] == self.epoch {
            self.scores[d] += s;
        } else {
            self.stamp[d] = self.epoch;
            self.scores[d] = s;
            self.touched.push(doc);
        }
    }

    /// Current score of `doc` (0.0 when untouched this epoch).
    #[inline]
    pub fn get(&self, doc: DocId) -> Score {
        if self.stamp[doc as usize] == self.epoch {
            self.scores[doc as usize]
        } else {
            0.0
        }
    }

    /// Number of docs touched since the last drain.
    pub fn num_touched(&self) -> usize {
        self.touched.len()
    }

    /// The docs touched since the last drain, in first-touch order.
    pub fn touched(&self) -> &[DocId] {
        &self.touched
    }

    /// Extracts the top-k and resets the accumulator for reuse. The reset is
    /// a single epoch bump — `O(1)` regardless of how many docs were touched.
    pub fn drain_topk(&mut self, k: usize) -> Vec<(DocId, Score)> {
        let mut topk = TopK::new(k);
        for &d in &self.touched {
            topk.offer(d, self.scores[d as usize]);
        }
        self.touched.clear();
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        topk.into_sorted_vec()
    }
}

/// An epoch-stamped membership set over a `u32` id universe: `O(1)` insert
/// and contains, `O(1)` clear, no per-query allocation. The hot-path
/// replacement for per-query `HashSet<u32>`s in the processors.
pub struct StampedSet {
    stamp: Vec<u32>,
    epoch: u32,
    len: usize,
}

impl Default for StampedSet {
    fn default() -> Self {
        StampedSet::new()
    }
}

impl StampedSet {
    /// Creates an empty set; the universe grows lazily with `ensure`.
    pub fn new() -> Self {
        StampedSet {
            stamp: Vec::new(),
            // Stamps start at 0, so the live epoch must start above it.
            epoch: 1,
            len: 0,
        }
    }

    /// Grows the universe to ids `0..n` (no-op when already large enough).
    pub fn ensure(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
    }

    /// Empties the set in `O(1)`.
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.len = 0;
    }

    /// Inserts `id`, returning whether it was newly added.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        let slot = &mut self.stamp[id as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            self.len += 1;
            true
        }
    }

    /// Whether `id` is in the set.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.stamp
            .get(id as usize)
            .is_some_and(|&s| s == self.epoch)
    }

    /// Number of ids currently in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postings::PostingConfig;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn lists(seed: u64) -> Vec<PostingList> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..3)
            .map(|_| {
                let mut entries: Vec<(DocId, Score)> = Vec::new();
                for d in 0..500u32 {
                    if rng.gen_bool(0.3) {
                        entries.push((d, rng.gen_range(0.01f32..2.0)));
                    }
                }
                PostingList::build(entries, PostingConfig::default())
            })
            .collect()
    }

    #[test]
    fn taat_equals_daat() {
        for seed in 0..5u64 {
            let ls = lists(seed);
            let refs: Vec<&PostingList> = ls.iter().collect();
            let a = taat_topk(&refs, 10);
            let b = daat_topk(&refs, 10);
            assert_eq!(
                a.iter().map(|h| h.0).collect::<Vec<_>>(),
                b.iter().map(|h| h.0).collect::<Vec<_>>(),
                "seed {seed}"
            );
            for (x, y) in a.iter().zip(&b) {
                assert!((x.1 - y.1).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn dense_accumulator_matches_hash_taat() {
        let ls = lists(42);
        let refs: Vec<&PostingList> = ls.iter().collect();
        let want = taat_topk(&refs, 7);
        let mut acc = DenseAccumulator::new(500);
        for l in &refs {
            let mut c = l.cursor();
            while let Some(d) = c.doc() {
                acc.add(d, c.score());
                c.next();
            }
        }
        let got = acc.drain_topk(7);
        assert_eq!(
            got.iter().map(|h| h.0).collect::<Vec<_>>(),
            want.iter().map(|h| h.0).collect::<Vec<_>>()
        );
        // Reusable after drain.
        assert_eq!(acc.num_touched(), 0);
        acc.add(3, 1.0);
        assert_eq!(acc.drain_topk(1), vec![(3, 1.0)]);
    }

    #[test]
    fn empty_lists() {
        assert!(taat_topk(&[], 5).is_empty());
        assert!(daat_topk(&[], 5).is_empty());
        let empty = PostingList::build(vec![], PostingConfig::default());
        assert!(daat_topk(&[&empty], 5).is_empty());
    }

    #[test]
    fn accumulator_zero_score_add_still_counts_once() {
        let mut acc = DenseAccumulator::new(4);
        acc.add(2, 0.5);
        acc.add(2, 0.5);
        assert_eq!(acc.num_touched(), 1);
        assert_eq!(acc.get(2), 1.0);
    }

    #[test]
    fn accumulator_drain_is_epoch_clean() {
        let mut acc = DenseAccumulator::new(8);
        acc.add(3, 2.0);
        acc.add(5, 1.0);
        assert_eq!(acc.drain_topk(10), vec![(3, 2.0), (5, 1.0)]);
        // Stale slots from the previous epoch must read as zero.
        assert_eq!(acc.get(3), 0.0);
        assert_eq!(acc.num_touched(), 0);
        acc.add(3, 0.25);
        assert_eq!(acc.get(3), 0.25);
        assert_eq!(acc.drain_topk(10), vec![(3, 0.25)]);
        assert_eq!(acc.allocation_count(), 1, "drain must never reallocate");
    }

    #[test]
    fn stamped_set_semantics() {
        let mut s = StampedSet::new();
        s.ensure(10);
        assert!(!s.contains(4), "fresh set must be empty");
        assert!(s.insert(4));
        assert!(!s.insert(4));
        assert!(s.contains(4));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(!s.contains(4));
        assert!(s.is_empty());
        assert!(s.insert(4));
        // Out-of-universe contains is false rather than a panic.
        assert!(!s.contains(9999));
    }
}
