//! Inverted index mapping term ids to posting lists.

use crate::postings::{PostingConfig, PostingList};
use crate::topk::ScoreSortedList;
use crate::{DocId, Score, TermId};
use serde::{Deserialize, Serialize};

/// Build-time options for an [`InvertedIndex`].
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct IndexConfig {
    /// Posting-list configuration applied to every term.
    pub postings: PostingConfig,
}

/// An immutable inverted index: `term → PostingList` (doc-sorted) plus a
/// lazily built score-sorted view for TA-style access.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InvertedIndex {
    config: IndexConfig,
    lists: Vec<PostingList>,
    num_docs: DocId,
    num_postings: usize,
}

impl InvertedIndex {
    /// Builds an index from `(term, doc, score)` triples in any order.
    /// Duplicate `(term, doc)` pairs accumulate their scores. Terms are dense
    /// ids; the index covers `0..=max_term` (missing terms get empty lists).
    pub fn build(
        triples: impl IntoIterator<Item = (TermId, DocId, Score)>,
        config: IndexConfig,
    ) -> Self {
        let mut per_term: Vec<Vec<(DocId, Score)>> = Vec::new();
        let mut num_docs = 0;
        let mut num_postings = 0usize;
        for (t, d, s) in triples {
            let ti = t as usize;
            if ti >= per_term.len() {
                per_term.resize_with(ti + 1, Vec::new);
            }
            per_term[ti].push((d, s));
            num_docs = num_docs.max(d + 1);
        }
        let lists: Vec<PostingList> = per_term
            .into_iter()
            .map(|entries| {
                let l = PostingList::build(entries, config.postings);
                num_postings += l.len();
                l
            })
            .collect();
        InvertedIndex {
            config,
            lists,
            num_docs,
            num_postings,
        }
    }

    /// Builds a **σ-aware** index from `(term, doc, tagger, weight)` quads:
    /// every term's list carries per-entry tagger groups and per-block
    /// tagger-id ranges (see [`PostingList::build_with_taggers`]), the
    /// substrate the block-max σ-aware WAND operator prunes over. Duplicate
    /// `(term, doc, tagger)` quads accumulate their weights.
    pub fn build_with_taggers(
        quads: impl IntoIterator<Item = (TermId, DocId, u32, Score)>,
        config: IndexConfig,
    ) -> Self {
        let mut per_term: Vec<Vec<(DocId, u32, Score)>> = Vec::new();
        let mut num_docs = 0;
        let mut num_postings = 0usize;
        for (t, d, u, w) in quads {
            let ti = t as usize;
            if ti >= per_term.len() {
                per_term.resize_with(ti + 1, Vec::new);
            }
            per_term[ti].push((d, u, w));
            num_docs = num_docs.max(d + 1);
        }
        let lists: Vec<PostingList> = per_term
            .into_iter()
            .map(|entries| {
                let l = PostingList::build_with_taggers(entries, config.postings);
                num_postings += l.len();
                l
            })
            .collect();
        InvertedIndex {
            config,
            lists,
            num_docs,
            num_postings,
        }
    }

    /// Number of terms (including empty ones up to the max seen id).
    pub fn num_terms(&self) -> usize {
        self.lists.len()
    }

    /// One past the largest doc id seen at build time.
    pub fn num_docs(&self) -> DocId {
        self.num_docs
    }

    /// Total postings across all terms (after duplicate merging).
    pub fn num_postings(&self) -> usize {
        self.num_postings
    }

    /// Posting list of `term`, or `None` for out-of-range ids.
    pub fn postings(&self, term: TermId) -> Option<&PostingList> {
        self.lists.get(term as usize)
    }

    /// Materializes the score-sorted view of `term` (TA access path).
    pub fn score_sorted(&self, term: TermId) -> Option<ScoreSortedList> {
        self.postings(term).map(ScoreSortedList::from_postings)
    }

    /// Build configuration.
    pub fn config(&self) -> IndexConfig {
        self.config
    }

    /// Approximate resident memory of all posting lists, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.lists.iter().map(|l| l.memory_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedIndex {
        InvertedIndex::build(
            [
                (0u32, 5u32, 1.0f32),
                (0, 2, 2.0),
                (2, 5, 0.5),
                (0, 5, 1.5), // duplicate (term 0, doc 5): accumulates
            ],
            IndexConfig::default(),
        )
    }

    #[test]
    fn build_and_lookup() {
        let idx = sample();
        assert_eq!(idx.num_terms(), 3); // term 1 exists but is empty
        assert_eq!(idx.num_docs(), 6);
        assert_eq!(idx.num_postings(), 3);
        let l0 = idx.postings(0).unwrap();
        assert_eq!(l0.to_vec(), vec![(2, 2.0), (5, 2.5)]);
        assert!(idx.postings(1).unwrap().is_empty());
        assert!(idx.postings(7).is_none());
    }

    #[test]
    fn score_sorted_view_consistent() {
        let idx = sample();
        let s = idx.score_sorted(0).unwrap();
        assert_eq!(s.at(0), Some((5, 2.5)));
        assert_eq!(s.at(1), Some((2, 2.0)));
        assert_eq!(s.score_of(2), 2.0);
    }

    #[test]
    fn sigma_index_carries_groups() {
        let idx = InvertedIndex::build_with_taggers(
            [
                (0u32, 5u32, 3u32, 1.0f32),
                (0, 5, 1, 0.5),
                (0, 2, 7, 2.0),
                (2, 5, 1, 0.5),
                (0, 5, 1, 0.25), // duplicate (term, doc, tagger): accumulates
            ],
            IndexConfig::default(),
        );
        assert_eq!(idx.num_terms(), 3);
        assert_eq!(idx.num_postings(), 3);
        let l0 = idx.postings(0).unwrap();
        assert!(l0.has_taggers());
        assert_eq!(l0.to_vec(), vec![(2, 2.0), (5, 1.75)]);
        assert_eq!(l0.taggers_of(1), &[(1, 0.75), (3, 1.0)]);
        assert_eq!(l0.tagger_range(), (1, 7));
    }

    #[test]
    fn empty_index() {
        let idx = InvertedIndex::build(std::iter::empty(), IndexConfig::default());
        assert_eq!(idx.num_terms(), 0);
        assert_eq!(idx.num_docs(), 0);
        assert_eq!(idx.memory_bytes(), 0);
    }

    #[test]
    fn memory_reflects_postings() {
        let big = InvertedIndex::build(
            (0..1000u32).map(|i| (0u32, i, 1.0f32)),
            IndexConfig::default(),
        );
        let small = InvertedIndex::build(
            (0..10u32).map(|i| (0u32, i, 1.0f32)),
            IndexConfig::default(),
        );
        assert!(big.memory_bytes() > small.memory_bytes());
    }
}
