//! # friends-index
//!
//! Information-retrieval substrate for the `friends` workspace: compressed
//! posting lists with skip pointers, an inverted index keyed by term id, and
//! the classical top-k machinery (score-sorted lists, Fagin's TA, NRA and a
//! WAND-style document-at-a-time traversal).
//!
//! The network-aware processors in `friends-core` are built by *re-deriving*
//! these textbook algorithms under personalized scores; having the textbook
//! versions in the same workspace gives the evaluation its baselines.
//!
//! ```
//! use friends_index::inverted::{InvertedIndex, IndexConfig};
//! use friends_index::topk::TopK;
//!
//! let idx = InvertedIndex::build(
//!     [(0u32, 10u32, 2.0f32), (0, 11, 1.0), (1, 10, 0.5)],
//!     IndexConfig::default(),
//! );
//! assert_eq!(idx.num_terms(), 2);
//! let mut topk = TopK::new(1);
//! topk.offer(10, 2.5);
//! topk.offer(11, 1.0);
//! assert_eq!(topk.into_sorted_vec()[0].0, 10);
//! ```

pub mod accumulate;
pub mod inverted;
pub mod postings;
pub mod topk;
pub mod varint;

/// Document (item) identifier.
pub type DocId = u32;

/// Term (tag) identifier.
pub type TermId = u32;

/// Score type used across the index.
pub type Score = f32;

/// Totally ordered score wrapper (see `f32::total_cmp`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrdScore(pub Score);

impl Eq for OrdScore {}

impl PartialOrd for OrdScore {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdScore {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
