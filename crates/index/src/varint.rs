//! LEB128 variable-length integers and delta coding for sorted id sequences.
//!
//! Posting lists store document ids as deltas between consecutive (sorted)
//! ids, then varint-encode the deltas: small gaps — the common case for
//! popular tags — take one byte instead of four.

use bytes::{Buf, BufMut};

/// Appends `v` to `out` as an unsigned LEB128 varint (1–5 bytes for `u32`).
pub fn write_u32(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

/// Appends `v` as an unsigned LEB128 varint (1–10 bytes for `u64`).
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

/// Reads a `u32` varint from the front of `buf`, advancing it.
///
/// Returns `None` on truncated input or overflow (more than 5 bytes).
pub fn read_u32(buf: &mut &[u8]) -> Option<u32> {
    let mut result: u32 = 0;
    let mut shift = 0u32;
    for _ in 0..5 {
        if !buf.has_remaining() {
            return None;
        }
        let byte = buf.get_u8();
        result |= ((byte & 0x7F) as u32) << shift;
        if byte & 0x80 == 0 {
            return Some(result);
        }
        shift += 7;
    }
    None
}

/// Reads a `u64` varint from the front of `buf`, advancing it.
pub fn read_u64(buf: &mut &[u8]) -> Option<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for _ in 0..10 {
        if !buf.has_remaining() {
            return None;
        }
        let byte = buf.get_u8();
        result |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(result);
        }
        shift += 7;
    }
    None
}

/// Number of bytes `write_u32` would emit for `v`.
pub fn len_u32(v: u32) -> usize {
    match v {
        0..=0x7F => 1,
        0x80..=0x3FFF => 2,
        0x4000..=0x1F_FFFF => 3,
        0x20_0000..=0xFFF_FFFF => 4,
        _ => 5,
    }
}

/// Delta-encodes a strictly increasing sequence of ids into varints.
///
/// The first id is stored verbatim, each following id as `id − prev`.
///
/// # Panics
/// Panics (debug) if the input is not strictly increasing.
pub fn encode_sorted(ids: &[u32], out: &mut Vec<u8>) {
    let mut prev = 0u32;
    for (i, &id) in ids.iter().enumerate() {
        if i == 0 {
            write_u32(out, id);
        } else {
            debug_assert!(id > prev, "ids must be strictly increasing");
            write_u32(out, id - prev);
        }
        prev = id;
    }
}

/// Decodes `count` delta-varint ids produced by [`encode_sorted`].
pub fn decode_sorted(buf: &mut &[u8], count: usize) -> Option<Vec<u32>> {
    let mut out = Vec::with_capacity(count);
    decode_sorted_into(buf, count, &mut out)?;
    Some(out)
}

/// Like [`decode_sorted`], decoding into a caller-owned buffer (cleared
/// first). Reuses the buffer's capacity, so a warm decode loop — e.g. a
/// posting cursor walking blocks — performs no allocation.
///
/// Decodes **word-wise** where it can: dense posting blocks are dominated
/// by single-byte deltas, and eight of those are recognized with one `u64`
/// load and one mask test (no continuation bit set in the word), then
/// prefix-summed without re-entering the per-byte loop. Runs of multi-byte
/// deltas fall back to the scalar decoder one varint at a time, so mixed
/// streams decode exactly as before. On corrupt input (`None`) the buffer
/// position is unspecified, as with the scalar path.
pub fn decode_sorted_into(buf: &mut &[u8], count: usize, out: &mut Vec<u32>) -> Option<()> {
    out.clear();
    out.reserve(count);
    let mut prev = 0u32;
    let mut i = 0usize;
    while i < count {
        let bytes = *buf;
        if count - i >= 8 && bytes.len() >= 8 {
            let word = u64::from_le_bytes(bytes[..8].try_into().unwrap());
            if word & 0x8080_8080_8080_8080 == 0 {
                // Eight terminal bytes: eight 1-byte varints in one word.
                for j in 0..8 {
                    let d = ((word >> (8 * j)) & 0x7F) as u32;
                    let id = if i + j == 0 { d } else { prev.checked_add(d)? };
                    out.push(id);
                    prev = id;
                }
                *buf = &bytes[8..];
                i += 8;
                continue;
            }
        }
        let d = read_u32(buf)?;
        let id = if i == 0 { d } else { prev.checked_add(d)? };
        out.push(id);
        prev = id;
        i += 1;
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_round_trip_corner_values() {
        for v in [0u32, 1, 127, 128, 16_383, 16_384, u32::MAX - 1, u32::MAX] {
            let mut buf = Vec::new();
            write_u32(&mut buf, v);
            assert_eq!(buf.len(), len_u32(v), "length mismatch for {v}");
            let mut s = buf.as_slice();
            assert_eq!(read_u32(&mut s), Some(v));
            assert!(s.is_empty());
        }
    }

    #[test]
    fn u64_round_trip() {
        for v in [0u64, 300, 1 << 35, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(read_u64(&mut s), Some(v));
        }
    }

    #[test]
    fn truncated_input_is_none() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 1_000_000);
        let mut s = &buf[..buf.len() - 1];
        assert_eq!(read_u32(&mut s), None);
        let mut empty: &[u8] = &[];
        assert_eq!(read_u32(&mut empty), None);
    }

    #[test]
    fn overlong_encoding_rejected() {
        let bad = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x01];
        let mut s = bad.as_slice();
        assert_eq!(read_u32(&mut s), None);
    }

    #[test]
    fn sorted_round_trip() {
        let ids = vec![3u32, 4, 10, 1_000, 1_001, 500_000];
        let mut buf = Vec::new();
        encode_sorted(&ids, &mut buf);
        let mut s = buf.as_slice();
        assert_eq!(decode_sorted(&mut s, ids.len()), Some(ids));
        assert!(s.is_empty());
    }

    #[test]
    fn sorted_empty_and_single() {
        let mut buf = Vec::new();
        encode_sorted(&[], &mut buf);
        assert!(buf.is_empty());
        let mut s = buf.as_slice();
        assert_eq!(decode_sorted(&mut s, 0), Some(vec![]));

        buf.clear();
        encode_sorted(&[42], &mut buf);
        let mut s = buf.as_slice();
        assert_eq!(decode_sorted(&mut s, 1), Some(vec![42]));
    }

    #[test]
    fn dense_ids_compress_well() {
        let ids: Vec<u32> = (1_000_000..1_000_000 + 1000).collect();
        let mut buf = Vec::new();
        encode_sorted(&ids, &mut buf);
        // 999 single-byte deltas + one multi-byte head.
        assert!(buf.len() < 1010, "got {} bytes", buf.len());
    }

    #[test]
    fn word_wise_fast_path_decodes_dense_runs() {
        // 1000 consecutive ids after a multi-byte head: the bulk decodes
        // through the u64 word path, the head and tail through the scalar
        // fallback.
        let ids: Vec<u32> = (1_000_000..1_001_000).collect();
        let mut buf = Vec::new();
        encode_sorted(&ids, &mut buf);
        let mut s = buf.as_slice();
        let mut out = Vec::new();
        assert_eq!(decode_sorted_into(&mut s, ids.len(), &mut out), Some(()));
        assert!(s.is_empty());
        assert_eq!(out, ids);
    }

    #[test]
    fn word_wise_fast_path_handles_mixed_gap_widths() {
        // Alternate single-byte runs with >7-bit gaps so the word test
        // fails mid-stream and the decoder flips between both paths.
        let mut ids: Vec<u32> = Vec::new();
        let mut cur = 5u32;
        for round in 0..40u32 {
            for _ in 0..(round % 11) {
                cur += 1 + (round % 3); // 1-byte deltas
                ids.push(cur);
            }
            cur += 200 + round * 1000; // 2+ byte delta
            ids.push(cur);
        }
        let mut buf = Vec::new();
        encode_sorted(&ids, &mut buf);
        for take in [0usize, 1, 7, 8, 9, 16, ids.len()] {
            let mut s = buf.as_slice();
            let mut out = Vec::new();
            assert_eq!(decode_sorted_into(&mut s, take, &mut out), Some(()));
            assert_eq!(out, &ids[..take], "count {take}");
        }
    }

    #[test]
    fn word_wise_fast_path_small_first_id() {
        // First id ≤ 127 makes the very first word eligible: the `i == 0`
        // head must still be decoded verbatim, not as a delta.
        let ids: Vec<u32> = (3..3 + 64).collect();
        let mut buf = Vec::new();
        encode_sorted(&ids, &mut buf);
        let mut s = buf.as_slice();
        let mut out = Vec::new();
        assert_eq!(decode_sorted_into(&mut s, ids.len(), &mut out), Some(()));
        assert_eq!(out, ids);
    }

    #[test]
    fn word_wise_truncated_input_still_fails() {
        let ids: Vec<u32> = (10..200).collect();
        let mut buf = Vec::new();
        encode_sorted(&ids, &mut buf);
        let mut s = &buf[..buf.len() - 1];
        let mut out = Vec::new();
        assert_eq!(decode_sorted_into(&mut s, ids.len(), &mut out), None);
    }

    #[test]
    fn multiple_values_stream() {
        let mut buf = Vec::new();
        for v in 0..200u32 {
            write_u32(&mut buf, v * 37);
        }
        let mut s = buf.as_slice();
        for v in 0..200u32 {
            assert_eq!(read_u32(&mut s), Some(v * 37));
        }
    }
}
