//! Personalized PageRank (PPR).
//!
//! PPR is one of the social-proximity measures the reproduction evaluates:
//! `ppr_u(v)` is the stationary probability that an α-restarting random walk
//! from seeker `u` is at `v`. Three estimators with different cost/accuracy
//! trade-offs are provided:
//!
//! * [`power_iteration`] — dense, near-exact; the accuracy reference.
//! * [`forward_push`] — sparse local push (Andersen–Chung–Lang) with additive
//!   error `epsilon · deg(v)`; the production estimator.
//! * [`monte_carlo`] — walk sampling; used to cross-validate the other two.
//!
//! Walks are weighted: a step from `u` picks neighbor `v` with probability
//! proportional to the edge weight `w(u, v)`.

use crate::csr::{CsrGraph, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// A sparse PPR vector: `(node, mass)` pairs sorted by node id.
pub type SparseVec = Vec<(NodeId, f64)>;

/// Near-exact PPR by dense power iteration.
///
/// Runs `iters` iterations of `p ← alpha·e_src + (1-alpha)·W^T p`, where `W`
/// is the weighted random-walk matrix. Error decays as `(1-alpha)^iters`.
/// Dangling mass (isolated nodes) is returned to the source, keeping the
/// result a probability distribution.
pub fn power_iteration(g: &CsrGraph, src: NodeId, alpha: f64, iters: usize) -> Vec<f64> {
    assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
    let n = g.num_nodes();
    let mut p = vec![0.0f64; n];
    if n == 0 {
        return p;
    }
    p[src as usize] = 1.0;
    let wdeg: Vec<f64> = (0..n as NodeId).map(|u| g.weighted_degree(u)).collect();
    let mut next = vec![0.0f64; n];
    for _ in 0..iters {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0f64;
        for u in 0..n {
            let mass = p[u];
            if mass == 0.0 {
                continue;
            }
            if wdeg[u] == 0.0 {
                dangling += mass;
                continue;
            }
            let share = mass / wdeg[u];
            for (v, w) in g.edges(u as NodeId) {
                next[v as usize] += share * w as f64;
            }
        }
        for x in next.iter_mut() {
            *x *= 1.0 - alpha;
        }
        next[src as usize] += alpha + (1.0 - alpha) * dangling;
        std::mem::swap(&mut p, &mut next);
    }
    p
}

/// Reusable scratch space for [`forward_push`], so repeated queries do not
/// re-allocate `O(n)` buffers. Sizes itself lazily to the largest graph it
/// has seen; `allocation_count` exposes growth for zero-allocation tests.
#[derive(Default)]
pub struct PushWorkspace {
    residual: Vec<f64>,
    estimate: Vec<f64>,
    touched: Vec<NodeId>,
    on_queue: Vec<bool>,
    queue: Vec<NodeId>,
    allocations: u64,
}

impl PushWorkspace {
    /// Creates a workspace for graphs with up to `n` nodes.
    pub fn new(n: usize) -> Self {
        let mut ws = PushWorkspace::default();
        ws.ensure(n);
        ws
    }

    /// Grows the buffers to hold `n` nodes (no-op when already large enough).
    pub fn ensure(&mut self, n: usize) {
        if self.residual.len() < n {
            self.residual.resize(n, 0.0);
            self.estimate.resize(n, 0.0);
            self.on_queue.resize(n, false);
            self.allocations += 1;
        }
    }

    /// Number of times the workspace grew its buffers.
    pub fn allocation_count(&self) -> u64 {
        self.allocations
    }

    fn reset(&mut self) {
        for &u in &self.touched {
            self.residual[u as usize] = 0.0;
            self.estimate[u as usize] = 0.0;
            self.on_queue[u as usize] = false;
        }
        self.touched.clear();
    }

    fn touch(&mut self, u: NodeId) {
        if self.residual[u as usize] == 0.0 && self.estimate[u as usize] == 0.0 {
            self.touched.push(u);
        }
    }
}

/// Local forward push with additive guarantee
/// `|ppr(v) − estimate(v)| ≤ epsilon · wdeg(v)` for every `v`.
///
/// Cost is `O(1 / (alpha · epsilon))` pushes independent of graph size, which
/// is what makes PPR proximity viable at query time. Returns the sparse
/// estimate vector sorted by node id.
pub fn forward_push(
    g: &CsrGraph,
    src: NodeId,
    alpha: f64,
    epsilon: f64,
    ws: &mut PushWorkspace,
) -> SparseVec {
    let mut out = Vec::new();
    forward_push_into(g, src, alpha, epsilon, ws, &mut out);
    out
}

/// [`forward_push`] writing into a caller-owned buffer: the allocation-free
/// variant for hot query paths (`out` is cleared, then filled sorted by node
/// id, keeping its capacity across calls).
pub fn forward_push_into(
    g: &CsrGraph,
    src: NodeId,
    alpha: f64,
    epsilon: f64,
    ws: &mut PushWorkspace,
    out: &mut SparseVec,
) {
    assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
    assert!(epsilon > 0.0, "epsilon must be positive");
    out.clear();
    let n = g.num_nodes();
    if n == 0 {
        return;
    }
    ws.ensure(n);
    ws.reset();
    let wdeg = |u: NodeId| g.weighted_degree(u);

    ws.touch(src);
    ws.residual[src as usize] = 1.0;
    let mut queue = std::mem::take(&mut ws.queue);
    queue.clear();
    queue.push(src);
    ws.on_queue[src as usize] = true;
    let mut head = 0usize;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        ws.on_queue[u as usize] = false;
        let r = ws.residual[u as usize];
        let du = wdeg(u);
        if du == 0.0 {
            // Dangling node: all residual mass converts to estimate.
            ws.estimate[u as usize] += r;
            ws.residual[u as usize] = 0.0;
            continue;
        }
        if r < epsilon * du {
            continue;
        }
        ws.estimate[u as usize] += alpha * r;
        ws.residual[u as usize] = 0.0;
        let spread = (1.0 - alpha) * r / du;
        for (v, w) in g.edges(u) {
            ws.touch(v);
            ws.residual[v as usize] += spread * w as f64;
            if !ws.on_queue[v as usize]
                && ws.residual[v as usize] >= epsilon * wdeg(v).max(f64::MIN_POSITIVE)
            {
                ws.on_queue[v as usize] = true;
                queue.push(v);
            }
        }
    }
    ws.queue = queue;
    out.extend(
        ws.touched
            .iter()
            .filter(|&&u| ws.estimate[u as usize] > 0.0)
            .map(|&u| (u, ws.estimate[u as usize])),
    );
    out.sort_unstable_by_key(|&(u, _)| u);
}

/// Convenience wrapper allocating a fresh workspace.
pub fn forward_push_fresh(g: &CsrGraph, src: NodeId, alpha: f64, epsilon: f64) -> SparseVec {
    let mut ws = PushWorkspace::new(g.num_nodes());
    forward_push(g, src, alpha, epsilon, &mut ws)
}

/// Monte-Carlo PPR: runs `walks` α-restarting weighted random walks from
/// `src` and returns the empirical endpoint distribution (sparse, sorted).
pub fn monte_carlo(g: &CsrGraph, src: NodeId, alpha: f64, walks: usize, seed: u64) -> SparseVec {
    assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
    let n = g.num_nodes();
    if n == 0 || walks == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts: std::collections::HashMap<NodeId, u64> = std::collections::HashMap::new();
    for _ in 0..walks {
        let mut u = src;
        loop {
            if rng.gen_bool(alpha) {
                break;
            }
            let ws = g.neighbor_weights(u);
            if ws.is_empty() {
                break; // dangling: walk is stuck, terminate here
            }
            let total: f32 = ws.iter().sum();
            let mut pick = rng.gen_range(0.0..total as f64) as f32;
            let mut chosen = g.neighbors(u)[ws.len() - 1];
            for (i, &w) in ws.iter().enumerate() {
                if pick < w {
                    chosen = g.neighbors(u)[i];
                    break;
                }
                pick -= w;
            }
            u = chosen;
        }
        *counts.entry(u).or_insert(0) += 1;
    }
    let mut out: SparseVec = counts
        .into_iter()
        .map(|(u, c)| (u, c as f64 / walks as f64))
        .collect();
    out.sort_unstable_by_key(|&(u, _)| u);
    out
}

/// L1 distance between a sparse vector and a dense reference.
pub fn l1_error(sparse: &SparseVec, dense: &[f64]) -> f64 {
    let mut err = 0.0;
    let mut seen = vec![false; dense.len()];
    for &(u, p) in sparse {
        err += (p - dense[u as usize]).abs();
        seen[u as usize] = true;
    }
    for (u, &d) in dense.iter().enumerate() {
        if !seen[u] {
            err += d;
        }
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;
    use crate::generators;

    #[test]
    fn power_iteration_is_a_distribution() {
        let g = generators::watts_strogatz(120, 4, 0.1, 2);
        let p = power_iteration(&g, 5, 0.15, 60);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(p.iter().all(|&x| x >= 0.0));
        // Source should hold at least the restart mass.
        assert!(p[5] >= 0.15);
    }

    #[test]
    fn power_iteration_isolated_source() {
        let g = CsrGraph::empty(3);
        let p = power_iteration(&g, 1, 0.2, 20);
        assert!((p[1] - 1.0).abs() < 1e-12);
        assert_eq!(p[0], 0.0);
    }

    #[test]
    fn push_close_to_power_iteration() {
        let g = generators::barabasi_albert(300, 3, 4);
        let exact = power_iteration(&g, 0, 0.2, 100);
        let approx = forward_push_fresh(&g, 0, 0.2, 1e-6);
        let err = l1_error(&approx, &exact);
        assert!(err < 0.02, "L1 error {err}");
    }

    #[test]
    fn push_respects_per_node_bound() {
        let g = generators::watts_strogatz(200, 6, 0.2, 7);
        let eps = 1e-4;
        let exact = power_iteration(&g, 3, 0.15, 200);
        let approx = forward_push_fresh(&g, 3, 0.15, eps);
        let mut est = vec![0.0; 200];
        for &(u, p) in &approx {
            est[u as usize] = p;
        }
        for u in 0..200u32 {
            let bound = eps * g.weighted_degree(u) + 1e-9;
            let diff = (est[u as usize] - exact[u as usize]).abs();
            assert!(diff <= bound, "node {u}: diff {diff} > bound {bound}");
        }
    }

    #[test]
    fn push_estimates_underestimate_total_mass() {
        let g = generators::erdos_renyi(150, 0.04, 5);
        let approx = forward_push_fresh(&g, 2, 0.2, 1e-5);
        let sum: f64 = approx.iter().map(|&(_, p)| p).sum();
        assert!(sum <= 1.0 + 1e-9);
        assert!(sum > 0.5, "push should have converted most mass, got {sum}");
    }

    #[test]
    fn push_workspace_reuse_is_clean() {
        let g = generators::barabasi_albert(100, 2, 9);
        let mut ws = PushWorkspace::new(100);
        let a = forward_push(&g, 0, 0.2, 1e-5, &mut ws);
        let b = forward_push(&g, 50, 0.2, 1e-5, &mut ws);
        let a2 = forward_push(&g, 0, 0.2, 1e-5, &mut ws);
        assert_eq!(a, a2, "workspace reuse must not leak state");
        assert_ne!(a, b);
    }

    /// Forward push's mass threshold (`epsilon`) is already its early
    /// termination: cost is `O(1 / (alpha · epsilon))` pushes, independent
    /// of graph size — a seeker in a 50-node component of a 10k-node
    /// universe touches only the component. This is the reach-proportional
    /// contract the σ-materialization floor work relies on for PPR.
    #[test]
    fn push_cost_is_reach_proportional() {
        let component = 50u32;
        let edges = (0..component).map(|i| (i, (i + 1) % component, 1.0));
        let g = GraphBuilder::from_edges(10_000, edges);
        let v = forward_push_fresh(&g, 0, 0.2, 1e-5);
        assert!(!v.is_empty() && v.len() <= component as usize);
        assert!(v.iter().all(|&(u, _)| u < component));
    }

    #[test]
    fn push_sparse_output_sorted_unique() {
        let g = generators::watts_strogatz(80, 4, 0.3, 11);
        let v = forward_push_fresh(&g, 10, 0.15, 1e-4);
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn monte_carlo_agrees_roughly() {
        let g = generators::watts_strogatz(60, 4, 0.2, 3);
        let exact = power_iteration(&g, 0, 0.3, 120);
        let mc = monte_carlo(&g, 0, 0.3, 60_000, 99);
        let err = l1_error(&mc, &exact);
        assert!(err < 0.08, "MC L1 error {err}");
    }

    #[test]
    fn monte_carlo_weighted_steps_bias() {
        // Star: 0 connected to 1 (weight 9) and 2 (weight 1). First step from
        // 0 should land on 1 ~90% of the time.
        let g = GraphBuilder::from_edges(3, [(0, 1, 9.0), (0, 2, 1.0)]);
        let mc = monte_carlo(&g, 0, 0.3, 40_000, 5);
        let p1 = mc.iter().find(|&&(u, _)| u == 1).map_or(0.0, |&(_, p)| p);
        let p2 = mc.iter().find(|&&(u, _)| u == 2).map_or(0.0, |&(_, p)| p);
        assert!(p1 > 5.0 * p2, "p1 {p1} vs p2 {p2}");
    }

    #[test]
    fn ppr_localizes_mass_near_source() {
        // On a long path, PPR mass at distance d decays geometrically.
        let g = GraphBuilder::from_edges(30, (0..29).map(|i| (i as NodeId, i as NodeId + 1, 1.0)));
        let p = power_iteration(&g, 0, 0.3, 200);
        assert!(p[1] > p[5]);
        assert!(p[5] > p[15]);
    }
}
