//! # friends-graph
//!
//! Social-graph substrate for the `friends` workspace: a compact CSR
//! (compressed sparse row) in-memory graph, synthetic social-network
//! generators, traversals, personalized PageRank, landmark distance oracles,
//! community detection and descriptive metrics.
//!
//! The crate is deliberately self-contained (no graph ecosystem
//! dependencies): the ICDE-2013 reproduction needs full control over memory
//! layout and traversal order, and the Rust graph-analytics ecosystem is thin
//! for this use case (see `DESIGN.md`).
//!
//! ## Quick tour
//!
//! ```
//! use friends_graph::{GraphBuilder, generators, traversal};
//!
//! // Hand-built triangle plus a pendant node.
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 1.0);
//! b.add_edge(1, 2, 1.0);
//! b.add_edge(2, 0, 1.0);
//! b.add_edge(2, 3, 0.5);
//! let g = b.build();
//! assert_eq!(g.degree(2), 3);
//!
//! // A synthetic small world.
//! let sw = generators::watts_strogatz(100, 6, 0.1, 42);
//! let dist = traversal::bfs_distances(&sw, 0);
//! assert!(dist.iter().all(|&d| d != friends_graph::traversal::UNREACHABLE));
//! ```

pub mod community;
pub mod components;
pub mod csr;
pub mod generators;
pub mod landmarks;
pub mod metrics;
pub mod ppr;
pub mod traversal;

pub use csr::{CsrGraph, GraphBuilder, NodeId};

/// A totally ordered `f32` wrapper for use in binary heaps.
///
/// Comparisons use [`f32::total_cmp`], which keeps the ordering total even in
/// the presence of `NaN`; traversal code never produces `NaN`, so in practice
/// this behaves exactly like `f32`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrdF32(pub f32);

impl Eq for OrdF32 {}

impl PartialOrd for OrdF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A totally ordered `f64` wrapper, companion to [`OrdF32`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod ord_tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn ordf32_orders_like_f32() {
        let mut h = BinaryHeap::new();
        for v in [0.5f32, -1.0, 3.25, 0.0] {
            h.push(OrdF32(v));
        }
        assert_eq!(h.pop(), Some(OrdF32(3.25)));
        assert_eq!(h.pop(), Some(OrdF32(0.5)));
        assert_eq!(h.pop(), Some(OrdF32(0.0)));
        assert_eq!(h.pop(), Some(OrdF32(-1.0)));
    }

    #[test]
    fn ordf64_total_on_nan() {
        let a = OrdF64(f64::NAN);
        let b = OrdF64(f64::NAN);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert!(OrdF64(1.0) < OrdF64(f64::NAN));
    }
}
