//! Synthetic social-network generators.
//!
//! The reproduction cannot ship the proprietary Delicious/Flickr/CiteULike
//! crawls the paper family evaluates on, so these generators produce graphs
//! matching the *structural properties* the algorithms are sensitive to:
//!
//! * power-law degree distribution — [`barabasi_albert`];
//! * high clustering / small diameter — [`watts_strogatz`];
//! * community structure — [`planted_partition`];
//! * a null model — [`erdos_renyi`].
//!
//! All generators are deterministic given a seed.

use crate::csr::{CsrGraph, GraphBuilder, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Erdős–Rényi `G(n, p)` using geometric edge skipping, `O(n + m)` expected.
///
/// Produces each of the `n(n-1)/2` candidate edges independently with
/// probability `p`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if n < 2 || p == 0.0 {
        return b.build();
    }
    if p >= 1.0 {
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                b.add_unweighted(u, v);
            }
        }
        return b.build();
    }
    // Walk the strictly-upper-triangular adjacency matrix in row-major order
    // taking geometric jumps between successes (Batagelj–Brandes).
    let log_1p = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n_i = n as i64;
    while v < n_i {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        w += 1 + (r.ln() / log_1p).floor() as i64;
        while w >= v && v < n_i {
            w -= v;
            v += 1;
        }
        if v < n_i {
            b.add_unweighted(w as NodeId, v as NodeId);
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: `n` nodes, each new node links
/// to `m` existing nodes chosen proportionally to degree.
///
/// Uses the repeated-endpoints trick: sampling a uniform element of the arc
/// endpoint list is exactly degree-proportional sampling.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(m >= 1, "m must be >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_mul(m));
    if n == 0 {
        return b.build();
    }
    let seed_nodes = (m + 1).min(n);
    // Fully connect the seed clique so every early node has nonzero degree.
    for u in 0..seed_nodes as NodeId {
        for v in (u + 1)..seed_nodes as NodeId {
            b.add_unweighted(u, v);
        }
    }
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    for u in 0..seed_nodes as NodeId {
        for v in (u + 1)..seed_nodes as NodeId {
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in seed_nodes..n {
        let u = u as NodeId;
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != u && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_unweighted(u, t);
            endpoints.push(u);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Watts–Strogatz small world: ring lattice of even degree `k`, each lattice
/// edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k.is_multiple_of(2), "k must be even, got {k}");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * k / 2);
    if n == 0 || k == 0 {
        return b.build();
    }
    let half = (k / 2).min(n.saturating_sub(1));
    for u in 0..n {
        for d in 1..=half {
            let v = (u + d) % n;
            if u == v {
                continue;
            }
            let (u32u, u32v) = (u as NodeId, v as NodeId);
            if rng.gen_bool(beta) && n > 2 {
                // Rewire the far endpoint to a uniform random node.
                let mut t = rng.gen_range(0..n) as NodeId;
                let mut guard = 0;
                while (t == u32u || t == u32v) && guard < 32 {
                    t = rng.gen_range(0..n) as NodeId;
                    guard += 1;
                }
                if t != u32u {
                    b.add_unweighted(u32u, t);
                }
            } else {
                b.add_unweighted(u32u, u32v);
            }
        }
    }
    b.build()
}

/// Planted-partition stochastic block model: `communities` equal-size blocks;
/// within-block edge probability `p_in`, cross-block `p_out`.
///
/// Returns the graph and the ground-truth community label of every node.
pub fn planted_partition(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> (CsrGraph, Vec<u32>) {
    assert!(communities >= 1);
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let mut rng = StdRng::seed_from_u64(seed);
    let labels: Vec<u32> = (0..n).map(|i| (i % communities) as u32).collect();
    let mut b = GraphBuilder::new(n);
    // Expected edge count is small for the sparse regimes we use; for dense
    // p_in within small blocks a quadratic scan per block is still cheap.
    // Sample with geometric skipping over the flattened upper triangle.
    let sample_pairs = |p: f64, b: &mut GraphBuilder, rng: &mut StdRng, same: bool| {
        if p <= 0.0 {
            return;
        }
        let log_1p = (1.0 - p).ln();
        let mut v: i64 = 1;
        let mut w: i64 = -1;
        let n_i = n as i64;
        while v < n_i {
            if p >= 1.0 {
                break;
            }
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            w += 1 + (r.ln() / log_1p).floor() as i64;
            while w >= v && v < n_i {
                w -= v;
                v += 1;
            }
            if v < n_i {
                let (a, c) = (w as usize, v as usize);
                if (labels[a] == labels[c]) == same {
                    b.add_unweighted(a as NodeId, c as NodeId);
                }
            }
        }
    };
    sample_pairs(p_in, &mut b, &mut rng, true);
    sample_pairs(p_out, &mut b, &mut rng, false);
    (b.build(), labels)
}

/// How edge weights (friendship strengths) are assigned after generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightModel {
    /// All edges get weight 1.0 (pure topology).
    Unit,
    /// Independent uniform weights in `[lo, hi]`.
    Uniform { lo: f32, hi: f32 },
    /// Weight = Jaccard similarity of the endpoints' neighbor sets, floored
    /// at `floor` so bridges keep nonzero strength. Models "interaction
    /// strength correlates with shared friends".
    Jaccard { floor: f32 },
}

/// Applies a [`WeightModel`] to an existing topology, returning a reweighted
/// copy of the graph.
pub fn assign_weights(g: &CsrGraph, model: WeightModel, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(g.num_nodes(), g.num_edges());
    for (u, v, w) in g.undirected_edges() {
        let nw = match model {
            WeightModel::Unit => 1.0,
            WeightModel::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            WeightModel::Jaccard { floor } => {
                let ju = jaccard(g.neighbors(u), g.neighbors(v));
                (ju as f32).max(floor)
            }
        };
        let _ = w;
        b.add_edge(u, v, nw);
    }
    b.build()
}

/// Jaccard similarity of two sorted id slices.
fn jaccard(a: &[NodeId], b: &[NodeId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_is_deterministic() {
        let a = erdos_renyi(200, 0.05, 7);
        let b = erdos_renyi(200, 0.05, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        for u in a.nodes() {
            assert_eq!(a.neighbors(u), b.neighbors(u));
        }
    }

    #[test]
    fn er_edge_count_near_expectation() {
        let n = 500;
        let p = 0.02;
        let g = erdos_renyi(n, p, 13);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 0.2 * expected,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn er_extremes() {
        assert_eq!(erdos_renyi(50, 0.0, 1).num_edges(), 0);
        let full = erdos_renyi(20, 1.0, 1);
        assert_eq!(full.num_edges(), 20 * 19 / 2);
        assert_eq!(erdos_renyi(0, 0.5, 1).num_nodes(), 0);
        assert_eq!(erdos_renyi(1, 0.5, 1).num_edges(), 0);
    }

    #[test]
    fn ba_every_late_node_has_degree_at_least_m() {
        let g = barabasi_albert(300, 3, 5);
        for u in 10..300u32 {
            assert!(g.degree(u) >= 3, "node {u} degree {}", g.degree(u));
        }
    }

    #[test]
    fn ba_degree_distribution_is_skewed() {
        let g = barabasi_albert(2000, 2, 11);
        let max_deg = g.nodes().map(|u| g.degree(u)).max().unwrap();
        let mean = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        // Hubs should be far above the mean degree in a scale-free network.
        assert!(max_deg as f64 > 5.0 * mean, "max {max_deg}, mean {mean}");
    }

    #[test]
    fn ba_small_n() {
        let g = barabasi_albert(2, 3, 1);
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(barabasi_albert(0, 2, 1).num_nodes(), 0);
    }

    #[test]
    fn ws_zero_beta_is_ring_lattice() {
        let g = watts_strogatz(30, 4, 0.0, 3);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4, "node {u}");
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(0, 29));
        assert!(!g.has_edge(0, 5));
    }

    #[test]
    fn ws_rewiring_preserves_edge_budget_roughly() {
        let g = watts_strogatz(200, 6, 0.3, 9);
        // Rewiring can merge duplicates, so allow a small deficit.
        assert!(g.num_edges() as f64 >= 0.9 * (200.0 * 3.0));
        assert!(g.num_edges() <= 200 * 3);
    }

    #[test]
    fn planted_partition_has_denser_blocks() {
        let (g, labels) = planted_partition(600, 3, 0.08, 0.004, 17);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v, _) in g.undirected_edges() {
            if labels[u as usize] == labels[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(
            intra > 3 * inter,
            "intra {intra} should dominate inter {inter}"
        );
    }

    #[test]
    fn planted_partition_labels_cover_all_nodes() {
        let (g, labels) = planted_partition(100, 4, 0.1, 0.01, 2);
        assert_eq!(labels.len(), g.num_nodes());
        assert!(labels.iter().all(|&l| l < 4));
    }

    #[test]
    fn weight_models() {
        let g = barabasi_albert(100, 2, 21);
        let unit = assign_weights(&g, WeightModel::Unit, 0);
        assert!(unit
            .undirected_edges()
            .all(|(_, _, w)| (w - 1.0).abs() < 1e-9));

        let uni = assign_weights(&g, WeightModel::Uniform { lo: 0.2, hi: 0.8 }, 0);
        assert!(uni
            .undirected_edges()
            .all(|(_, _, w)| (0.2..=0.8).contains(&w)));

        let jac = assign_weights(&g, WeightModel::Jaccard { floor: 0.05 }, 0);
        assert!(jac
            .undirected_edges()
            .all(|(_, _, w)| (0.05..=1.0).contains(&w)));
        assert_eq!(jac.num_edges(), g.num_edges());
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&[], &[]), 0.0);
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert!((jaccard(&[1, 2], &[2, 3]) - 1.0 / 3.0).abs() < 1e-12);
    }
}
