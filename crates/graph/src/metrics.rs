//! Descriptive graph metrics used for dataset statistics (Table 1) and for
//! validating that synthetic generators have the intended shape.

use crate::csr::{CsrGraph, NodeId};
use crate::traversal::{bfs_distances, UNREACHABLE};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Summary statistics of the degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
    pub p50: usize,
    pub p90: usize,
    pub p99: usize,
}

/// Computes [`DegreeStats`]. Returns zeros for an empty graph.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.num_nodes();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            p50: 0,
            p90: 0,
            p99: 0,
        };
    }
    let mut degs: Vec<usize> = g.nodes().map(|u| g.degree(u)).collect();
    degs.sort_unstable();
    let pct = |q: f64| degs[((q * (n - 1) as f64).round() as usize).min(n - 1)];
    DegreeStats {
        min: degs[0],
        max: degs[n - 1],
        mean: degs.iter().sum::<usize>() as f64 / n as f64,
        p50: pct(0.50),
        p90: pct(0.90),
        p99: pct(0.99),
    }
}

/// Local clustering coefficient of node `u`: fraction of neighbor pairs that
/// are themselves connected. 0 for degree < 2.
pub fn local_clustering(g: &CsrGraph, u: NodeId) -> f64 {
    let nbrs = g.neighbors(u);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for i in 0..d {
        for j in (i + 1)..d {
            if g.has_edge(nbrs[i], nbrs[j]) {
                closed += 1;
            }
        }
    }
    closed as f64 / (d * (d - 1) / 2) as f64
}

/// Average local clustering coefficient estimated on a random sample of
/// `samples` nodes (exact when `samples >= n`).
pub fn avg_clustering(g: &CsrGraph, samples: usize, seed: u64) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    if samples >= n {
        let total: f64 = g.nodes().map(|u| local_clustering(g, u)).sum();
        return total / n as f64;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    for _ in 0..samples {
        let u = rng.gen_range(0..n) as NodeId;
        total += local_clustering(g, u);
    }
    total / samples as f64
}

/// Estimates the effective diameter (90th-percentile finite pairwise hop
/// distance) by running BFS from `sources` random nodes.
pub fn effective_diameter(g: &CsrGraph, sources: usize, seed: u64) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dists: Vec<u32> = Vec::new();
    for _ in 0..sources.max(1) {
        let s = rng.gen_range(0..n) as NodeId;
        for d in bfs_distances(g, s) {
            if d != UNREACHABLE && d > 0 {
                dists.push(d);
            }
        }
    }
    if dists.is_empty() {
        return 0.0;
    }
    dists.sort_unstable();
    dists[((dists.len() - 1) as f64 * 0.9).round() as usize] as f64
}

/// One-line structural summary of a graph, used by the Table 1 harness.
#[derive(Clone, Debug)]
pub struct GraphSummary {
    pub nodes: usize,
    pub edges: usize,
    pub degrees: DegreeStats,
    pub clustering: f64,
    pub effective_diameter: f64,
}

/// Builds a [`GraphSummary`] with sampled clustering/diameter estimators.
pub fn summarize(g: &CsrGraph, seed: u64) -> GraphSummary {
    GraphSummary {
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        degrees: degree_stats(g),
        clustering: avg_clustering(g, 500, seed),
        effective_diameter: effective_diameter(g, 4, seed ^ 0x9E3779B97F4A7C15),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;
    use crate::generators;

    #[test]
    fn degree_stats_on_star() {
        let g = GraphBuilder::from_edges(5, (1..5).map(|v| (0, v as NodeId, 1.0)));
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.p50, 1);
    }

    #[test]
    fn degree_stats_empty() {
        let s = degree_stats(&CsrGraph::empty(0));
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn clustering_triangle_vs_star() {
        let tri = GraphBuilder::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        assert_eq!(local_clustering(&tri, 0), 1.0);
        let star = GraphBuilder::from_edges(4, [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]);
        assert_eq!(local_clustering(&star, 0), 0.0);
        assert_eq!(local_clustering(&star, 1), 0.0); // degree 1
    }

    #[test]
    fn ws_has_higher_clustering_than_er() {
        let ws = generators::watts_strogatz(400, 6, 0.05, 2);
        let er = generators::erdos_renyi(400, 6.0 / 399.0, 2);
        let cw = avg_clustering(&ws, 400, 1);
        let ce = avg_clustering(&er, 400, 1);
        assert!(cw > 3.0 * ce + 0.05, "ws {cw} vs er {ce}");
    }

    #[test]
    fn effective_diameter_path_vs_clique() {
        let path =
            GraphBuilder::from_edges(50, (0..49).map(|i| (i as NodeId, i as NodeId + 1, 1.0)));
        let clique = generators::erdos_renyi(50, 1.0, 0);
        let dp = effective_diameter(&path, 8, 3);
        let dc = effective_diameter(&clique, 8, 3);
        assert!(dp > 10.0, "path diameter {dp}");
        assert!((dc - 1.0).abs() < 1e-9, "clique diameter {dc}");
    }

    #[test]
    fn summarize_populates_fields() {
        let g = generators::barabasi_albert(300, 3, 5);
        let s = summarize(&g, 1);
        assert_eq!(s.nodes, 300);
        assert!(s.edges > 0);
        assert!(s.degrees.max >= s.degrees.p99);
        assert!(s.effective_diameter > 0.0);
    }
}
