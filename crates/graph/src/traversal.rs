//! Graph traversals: BFS hop distances, weighted shortest paths (Dijkstra)
//! and bidirectional BFS for point-to-point hop distance.
//!
//! Social proximity in `friends-core` is a *decreasing* function of distance,
//! so both hop counts (for decay proximity) and weighted lengths (for
//! strength-aware decay) are provided.

use crate::csr::{CsrGraph, NodeId};
use crate::OrdF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Sentinel hop distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Sentinel weighted distance for unreachable nodes.
pub const UNREACHABLE_F: f64 = f64::INFINITY;

/// Hop distances from `src` to every node (`UNREACHABLE` if disconnected).
pub fn bfs_distances(g: &CsrGraph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_nodes()];
    bfs_into(g, src, u32::MAX, &mut dist);
    dist
}

/// Hop distances from `src`, exploring at most `max_hops` levels.
/// Nodes beyond the horizon keep `UNREACHABLE`.
pub fn bfs_limited(g: &CsrGraph, src: NodeId, max_hops: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_nodes()];
    bfs_into(g, src, max_hops, &mut dist);
    dist
}

/// BFS writing into a caller-provided distance buffer (must be pre-filled
/// with `UNREACHABLE`, length `num_nodes`). Returns the number of reached
/// nodes (including `src`). This is the allocation-free workhorse used by
/// landmark construction, which runs thousands of BFS passes.
pub fn bfs_into(g: &CsrGraph, src: NodeId, max_hops: u32, dist: &mut [u32]) -> usize {
    assert_eq!(dist.len(), g.num_nodes());
    if g.num_nodes() == 0 {
        return 0;
    }
    let mut q = VecDeque::new();
    dist[src as usize] = 0;
    q.push_back(src);
    let mut reached = 1usize;
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        if du >= max_hops {
            continue;
        }
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                reached += 1;
                q.push_back(v);
            }
        }
    }
    reached
}

/// Single-source weighted shortest paths.
///
/// `length` maps an edge weight (friendship *strength*) to a traversal
/// *length*; the common choice in the reproduction is `|w| 1.0 / w.max(eps)`
/// so strong ties are short. Lengths must be non-negative.
pub fn dijkstra(g: &CsrGraph, src: NodeId, mut length: impl FnMut(f32) -> f64) -> Vec<f64> {
    let n = g.num_nodes();
    let mut dist = vec![UNREACHABLE_F; n];
    if n == 0 {
        return dist;
    }
    let mut heap: BinaryHeap<Reverse<(OrdF64, NodeId)>> = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(Reverse((OrdF64(0.0), src)));
    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for (v, w) in g.edges(u) {
            let l = length(w);
            debug_assert!(l >= 0.0, "negative edge length");
            let nd = d + l;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((OrdF64(nd), v)));
            }
        }
    }
    dist
}

/// Hop distance between `s` and `t` via bidirectional BFS, or `None` if
/// disconnected. Typically explores `O(b^(d/2))` nodes instead of `O(b^d)`.
pub fn bidirectional_hops(g: &CsrGraph, s: NodeId, t: NodeId) -> Option<u32> {
    if s == t {
        return Some(0);
    }
    let n = g.num_nodes();
    let mut ds = vec![UNREACHABLE; n];
    let mut dt = vec![UNREACHABLE; n];
    ds[s as usize] = 0;
    dt[t as usize] = 0;
    let mut qs = VecDeque::from([s]);
    let mut qt = VecDeque::from([t]);
    let mut best = UNREACHABLE;
    while !qs.is_empty() && !qt.is_empty() {
        // Expand the smaller frontier one full level.
        let expand_s = qs.len() <= qt.len();
        let (q, dist_this, dist_other) = if expand_s {
            (&mut qs, &mut ds, &dt)
        } else {
            (&mut qt, &mut dt, &ds)
        };
        let level = dist_this[q.front().map(|&u| u as usize).unwrap()];
        // If even the optimistic meet-up can't beat `best`, stop.
        if best != UNREACHABLE && 2 * level + 1 >= best {
            break;
        }
        let mut next = VecDeque::new();
        while let Some(&u) = q.front() {
            if dist_this[u as usize] != level {
                break;
            }
            q.pop_front();
            for &v in g.neighbors(u) {
                if dist_this[v as usize] == UNREACHABLE {
                    dist_this[v as usize] = level + 1;
                    if dist_other[v as usize] != UNREACHABLE {
                        best = best.min(level + 1 + dist_other[v as usize]);
                    }
                    next.push_back(v);
                }
            }
        }
        q.extend(next);
    }
    if best == UNREACHABLE {
        None
    } else {
        Some(best)
    }
}

/// Reusable epoch-stamped scratch for [`bfs_stamped`]: distances are valid
/// only for the current epoch, so starting a new traversal is `O(1)` instead
/// of an `O(n)` re-fill with `UNREACHABLE`.
#[derive(Debug, Default)]
pub struct BfsWorkspace {
    dist: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    queue: VecDeque<NodeId>,
    touched: Vec<NodeId>,
    /// Whether the most recent traversal's hop horizon actually cut the
    /// frontier off from unreached nodes (see [`BfsWorkspace::truncated`]).
    truncated: bool,
    allocations: u64,
}

impl BfsWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        BfsWorkspace::default()
    }

    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, 0);
            self.stamp.resize(n, 0);
            self.allocations += 1;
        }
        if self.epoch == u32::MAX {
            // Epoch wrap: invalidate every stamp once per 2^32 traversals.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.queue.clear();
        self.touched.clear();
        self.truncated = false;
    }

    /// Whether the most recent bounded traversal left reachable nodes
    /// unvisited: some node *at* the hop horizon still had an unstamped
    /// neighbor. `false` proves the horizon covered the seeker's whole
    /// reachable set — a radius-bounded proximity materialization is then
    /// byte-identical to the unbounded one. Checking costs one neighbor
    /// scan per horizon-level node, and nothing at all when the horizon is
    /// never reached.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Hop distance of `u` in the most recent traversal, or `None` if it was
    /// not reached.
    #[inline]
    pub fn dist(&self, u: NodeId) -> Option<u32> {
        if self.stamp[u as usize] == self.epoch {
            Some(self.dist[u as usize])
        } else {
            None
        }
    }

    /// Nodes reached by the most recent traversal, in discovery order
    /// (source first).
    pub fn touched(&self) -> &[NodeId] {
        &self.touched
    }

    /// Number of times the workspace grew its buffers (a steady-state query
    /// loop must not increase this).
    pub fn allocation_count(&self) -> u64 {
        self.allocations
    }

    #[inline]
    fn visit(&mut self, u: NodeId, d: u32) {
        self.dist[u as usize] = d;
        self.stamp[u as usize] = self.epoch;
        self.touched.push(u);
        self.queue.push_back(u);
    }
}

/// BFS from `src` into an epoch-stamped workspace: the allocation-free
/// equivalent of [`bfs_limited`] for hot query paths. Returns the number of
/// reached nodes; distances are read back through [`BfsWorkspace::dist`].
pub fn bfs_stamped(g: &CsrGraph, src: NodeId, max_hops: u32, ws: &mut BfsWorkspace) -> usize {
    ws.begin(g.num_nodes());
    if g.num_nodes() == 0 {
        return 0;
    }
    ws.visit(src, 0);
    while let Some(u) = ws.queue.pop_front() {
        let du = ws.dist[u as usize];
        if du >= max_hops {
            // Horizon level: record (once) whether anything lies beyond it,
            // so callers can tell a truncating bound from a covering one.
            if !ws.truncated
                && g.neighbors(u)
                    .iter()
                    .any(|&v| ws.stamp[v as usize] != ws.epoch)
            {
                ws.truncated = true;
            }
            continue;
        }
        for &v in g.neighbors(u) {
            if ws.stamp[v as usize] != ws.epoch {
                ws.visit(v, du + 1);
            }
        }
    }
    ws.touched.len()
}

/// Reusable epoch-stamped scratch for proximity-ordered traversals: the
/// tentative-proximity array, the settled set and the frontier heap survive
/// across queries, so starting a traversal allocates nothing once warm.
#[derive(Debug, Default)]
pub struct ProximityWorkspace {
    best: Vec<f64>,
    best_stamp: Vec<u32>,
    settled_stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<(OrdF64, NodeId)>,
    /// Mass floor of the current traversal: tentative proximities below it
    /// are never enqueued (and therefore never yielded). `0.0` disables.
    floor: f64,
    /// Whether the floor actually dropped a node with positive proximity.
    dropped: bool,
    allocations: u64,
}

impl ProximityWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        ProximityWorkspace::default()
    }

    /// Number of times the workspace grew its buffers.
    pub fn allocation_count(&self) -> u64 {
        self.allocations
    }

    fn begin(&mut self, src: NodeId, n: usize) {
        self.begin_with_floor(src, n, 0.0);
    }

    fn begin_with_floor(&mut self, src: NodeId, n: usize, floor: f64) {
        debug_assert!((0.0..=1.0).contains(&floor), "floor must be in [0, 1]");
        self.floor = floor;
        self.dropped = false;
        if self.best.len() < n {
            self.best.resize(n, 0.0);
            self.best_stamp.resize(n, 0);
            self.settled_stamp.resize(n, 0);
            self.allocations += 1;
        }
        if self.epoch == u32::MAX {
            self.best_stamp.iter_mut().for_each(|s| *s = 0);
            self.settled_stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.heap.clear();
        if n > 0 {
            self.best[src as usize] = 1.0;
            self.best_stamp[src as usize] = self.epoch;
            self.heap.push((OrdF64(1.0), src));
        }
    }

    #[inline]
    fn best_of(&self, u: NodeId) -> f64 {
        if self.best_stamp[u as usize] == self.epoch {
            self.best[u as usize]
        } else {
            0.0
        }
    }

    #[inline]
    fn is_settled(&self, u: NodeId) -> bool {
        self.settled_stamp[u as usize] == self.epoch
    }

    fn bound(&self) -> Option<f64> {
        self.heap.peek().map(|&(OrdF64(p), _)| p)
    }

    /// One best-first step: settles and returns the next-closest node.
    fn step<F: FnMut(f32) -> f64>(&mut self, g: &CsrGraph, decay: &mut F) -> Option<(NodeId, f64)> {
        while let Some((OrdF64(p), u)) = self.heap.pop() {
            if self.is_settled(u) {
                continue;
            }
            self.settled_stamp[u as usize] = self.epoch;
            for (v, w) in g.edges(u) {
                if self.is_settled(v) {
                    continue;
                }
                let mult = decay(w);
                debug_assert!(
                    (0.0..=1.0).contains(&mult),
                    "decay must map into (0, 1], got {mult}"
                );
                let np = p * mult;
                if np < self.floor {
                    // Below the mass floor: any path through this relaxation
                    // yields proximity < floor (multipliers are ≤ 1), so the
                    // node is only ever reached if a *different* path clears
                    // the floor. Record that something real was dropped.
                    if np > 0.0 {
                        self.dropped = true;
                    }
                    continue;
                }
                if np > self.best_of(v) {
                    self.best[v as usize] = np;
                    self.best_stamp[v as usize] = self.epoch;
                    self.heap.push((OrdF64(np), v));
                }
            }
            return Some((u, p));
        }
        None
    }
}

/// Nodes visited in best-first order of *decreasing proximity*, where
/// proximity multiplies along edges: `prox(path) = Π decay(w_e)`.
///
/// This is the traversal kernel of the `FriendExpansion` processor: it yields
/// `(node, proximity)` pairs such that the proximity of each yielded node is
/// an upper bound on that of every node yielded later. Implemented as a
/// Dijkstra over `-log prox`, surfaced through an iterator so the caller can
/// stop as soon as its termination bound fires.
///
/// `ProximityOrder` owns its scratch state; query loops that run many
/// traversals should hold a [`ProximityWorkspace`] and use
/// [`ProximityScan`] instead, which borrows the workspace and allocates
/// nothing once warm.
pub struct ProximityOrder<'g, F> {
    g: &'g CsrGraph,
    decay: F,
    ws: ProximityWorkspace,
}

impl<'g, F: FnMut(f32) -> f64> ProximityOrder<'g, F> {
    /// Starts a proximity-ordered traversal from `src`. `decay` maps an edge
    /// weight to a per-edge proximity multiplier in `(0, 1]`.
    pub fn new(g: &'g CsrGraph, src: NodeId, decay: F) -> Self {
        let mut ws = ProximityWorkspace::new();
        ws.begin(src, g.num_nodes());
        ProximityOrder { g, decay, ws }
    }

    /// Proximity of the next node the iterator would yield, if any. This is
    /// exactly the upper bound on all not-yet-yielded nodes.
    pub fn peek_bound(&self) -> Option<f64> {
        self.ws.bound()
    }
}

impl<F: FnMut(f32) -> f64> Iterator for ProximityOrder<'_, F> {
    type Item = (NodeId, f64);

    fn next(&mut self) -> Option<Self::Item> {
        self.ws.step(self.g, &mut self.decay)
    }
}

/// The allocation-free counterpart of [`ProximityOrder`]: identical
/// iteration order and bounds, borrowing a caller-owned
/// [`ProximityWorkspace`] whose buffers are recycled across traversals via
/// epoch stamps.
pub struct ProximityScan<'g, 'w, F> {
    g: &'g CsrGraph,
    decay: F,
    ws: &'w mut ProximityWorkspace,
}

impl<'g, 'w, F: FnMut(f32) -> f64> ProximityScan<'g, 'w, F> {
    /// Starts a traversal from `src`, recycling `ws`'s buffers.
    pub fn new(g: &'g CsrGraph, src: NodeId, decay: F, ws: &'w mut ProximityWorkspace) -> Self {
        Self::with_floor(g, src, decay, 0.0, ws)
    }

    /// Like [`ProximityScan::new`] with a **mass floor**: nodes whose best
    /// path proximity falls below `floor` are neither enqueued nor yielded,
    /// so the traversal (heap included) stays proportional to the seeker's
    /// above-floor reach instead of the component size. Proximity only
    /// decreases along a path, so every node with true proximity ≥ `floor`
    /// is still yielded, exactly as the unbounded scan would — dropping is
    /// sound, and [`ProximityScan::residual_bound`] reports what it may
    /// have cost. `floor == 0.0` is the unbounded scan.
    pub fn with_floor(
        g: &'g CsrGraph,
        src: NodeId,
        decay: F,
        floor: f64,
        ws: &'w mut ProximityWorkspace,
    ) -> Self {
        ws.begin_with_floor(src, g.num_nodes(), floor);
        ProximityScan { g, decay, ws }
    }

    /// Upper bound on the proximity of every not-yet-yielded node.
    pub fn peek_bound(&self) -> Option<f64> {
        self.ws.bound()
    }

    /// Upper bound on the proximity of any node the floor dropped: the
    /// floor itself when a positive-proximity node was cut, `0.0` when
    /// nothing was — the traversal then provably covered every node with
    /// positive proximity, and the bounded scan is byte-identical to the
    /// unbounded one.
    pub fn residual_bound(&self) -> f64 {
        if self.ws.dropped {
            self.ws.floor
        } else {
            0.0
        }
    }
}

impl<F: FnMut(f32) -> f64> Iterator for ProximityScan<'_, '_, F> {
    type Item = (NodeId, f64);

    fn next(&mut self) -> Option<Self::Item> {
        self.ws.step(self.g, &mut self.decay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;
    use crate::generators;

    fn path_graph(n: usize) -> CsrGraph {
        GraphBuilder::from_edges(n, (0..n - 1).map(|i| (i as NodeId, i as NodeId + 1, 1.0)))
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = GraphBuilder::from_edges(4, [(0, 1, 1.0)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn bfs_limited_respects_horizon() {
        let g = path_graph(10);
        let d = bfs_limited(&g, 0, 3);
        assert_eq!(d[3], 3);
        assert_eq!(d[4], UNREACHABLE);
    }

    #[test]
    fn bfs_into_returns_reach_count() {
        let g = GraphBuilder::from_edges(5, [(0, 1, 1.0), (1, 2, 1.0)]);
        let mut buf = vec![UNREACHABLE; 5];
        let r = bfs_into(&g, 0, u32::MAX, &mut buf);
        assert_eq!(r, 3);
    }

    #[test]
    fn dijkstra_prefers_strong_ties() {
        // 0 -(w=1.0)- 1 -(w=1.0)- 2   vs   0 -(w=0.1)- 2
        let g = GraphBuilder::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 0.1)]);
        let d = dijkstra(&g, 0, |w| 1.0 / w as f64);
        // Two strong hops cost 2.0; the weak direct tie costs 10.0.
        assert!((d[2] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dijkstra_unreachable_is_inf() {
        let g = GraphBuilder::from_edges(3, [(0, 1, 1.0)]);
        let d = dijkstra(&g, 0, |_| 1.0);
        assert_eq!(d[2], UNREACHABLE_F);
    }

    #[test]
    fn dijkstra_matches_bfs_on_unit_lengths() {
        let g = generators::erdos_renyi(150, 0.05, 3);
        let bfs = bfs_distances(&g, 0);
        let dij = dijkstra(&g, 0, |_| 1.0);
        for u in 0..150usize {
            if bfs[u] == UNREACHABLE {
                assert_eq!(dij[u], UNREACHABLE_F);
            } else {
                assert!((dij[u] - bfs[u] as f64).abs() < 1e-9, "node {u}");
            }
        }
    }

    #[test]
    fn bidirectional_matches_bfs() {
        let g = generators::watts_strogatz(120, 4, 0.2, 4);
        let d0 = bfs_distances(&g, 7);
        for t in [0u32, 13, 50, 99, 119] {
            let got = bidirectional_hops(&g, 7, t);
            if d0[t as usize] == UNREACHABLE {
                assert_eq!(got, None);
            } else {
                assert_eq!(got, Some(d0[t as usize]), "target {t}");
            }
        }
    }

    #[test]
    fn bidirectional_same_node() {
        let g = path_graph(3);
        assert_eq!(bidirectional_hops(&g, 1, 1), Some(0));
    }

    #[test]
    fn bidirectional_disconnected() {
        let g = GraphBuilder::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]);
        assert_eq!(bidirectional_hops(&g, 0, 3), None);
    }

    #[test]
    fn proximity_order_is_monotone_decreasing() {
        let g = generators::barabasi_albert(200, 3, 8);
        let it = ProximityOrder::new(&g, 0, |_| 0.5);
        let seq: Vec<f64> = it.map(|(_, p)| p).collect();
        assert!(!seq.is_empty());
        for w in seq.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn proximity_order_unit_decay_on_path() {
        let g = path_graph(4);
        let order: Vec<(NodeId, f64)> = ProximityOrder::new(&g, 0, |_| 0.5).collect();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], (0, 1.0));
        assert_eq!(order[1].0, 1);
        assert!((order[1].1 - 0.5).abs() < 1e-12);
        assert!((order[3].1 - 0.125).abs() < 1e-12);
    }

    #[test]
    fn proximity_order_takes_best_path() {
        // Direct weak edge vs two strong hops; multiplicative proximity
        // should pick whichever product is larger.
        let g = GraphBuilder::from_edges(3, [(0, 2, 0.2), (0, 1, 0.9), (1, 2, 0.9)]);
        let order: Vec<(NodeId, f64)> = ProximityOrder::new(&g, 0, |w| w as f64).collect();
        let p2 = order.iter().find(|&&(u, _)| u == 2).unwrap().1;
        // Weights are f32, so 0.9 is not exactly representable; allow slack.
        assert!((p2 - 0.81).abs() < 1e-6, "expected 0.9*0.9, got {p2}");
    }

    #[test]
    fn proximity_peek_bound_is_upper_bound() {
        let g = generators::watts_strogatz(100, 4, 0.1, 5);
        let mut it = ProximityOrder::new(&g, 0, |_| 0.7);
        let mut yielded = Vec::new();
        loop {
            let bound = it.peek_bound();
            match it.next() {
                Some((u, p)) => {
                    assert!(bound.unwrap() >= p - 1e-12);
                    yielded.push(u);
                }
                None => break,
            }
        }
        assert_eq!(yielded.len(), 100);
    }

    #[test]
    fn proximity_order_empty_graph() {
        let g = CsrGraph::empty(0);
        // Constructing on an empty graph must not panic and yields nothing.
        let mut it = ProximityOrder::new(&g, 0, |_| 0.5);
        assert!(it.next().is_none());
    }

    #[test]
    fn bfs_stamped_matches_bfs_distances_across_reuse() {
        let g = generators::watts_strogatz(150, 4, 0.2, 6);
        let mut ws = BfsWorkspace::new();
        for src in [0u32, 7, 149, 0] {
            let reached = bfs_stamped(&g, src, u32::MAX, &mut ws);
            let want = bfs_distances(&g, src);
            assert_eq!(reached, want.iter().filter(|&&d| d != UNREACHABLE).count());
            for u in 0..150u32 {
                let got = ws.dist(u);
                if want[u as usize] == UNREACHABLE {
                    assert_eq!(got, None, "node {u}");
                } else {
                    assert_eq!(got, Some(want[u as usize]), "node {u}");
                }
            }
        }
        // Buffers were sized exactly once despite four traversals.
        assert_eq!(ws.allocation_count(), 1);
    }

    #[test]
    fn bfs_stamped_respects_horizon_and_disconnection() {
        let g = GraphBuilder::from_edges(6, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let mut ws = BfsWorkspace::new();
        bfs_stamped(&g, 0, 2, &mut ws);
        assert_eq!(ws.dist(2), Some(2));
        assert_eq!(ws.dist(3), None); // beyond horizon
        assert_eq!(ws.dist(5), None); // disconnected
        assert_eq!(ws.touched(), &[0, 1, 2]);
    }

    #[test]
    fn proximity_scan_equals_proximity_order() {
        let g = generators::barabasi_albert(250, 3, 11);
        let mut ws = ProximityWorkspace::new();
        for src in [0u32, 42, 0, 199] {
            let want: Vec<(NodeId, f64)> =
                ProximityOrder::new(&g, src, |w| 0.6 * w as f64).collect();
            let got: Vec<(NodeId, f64)> =
                ProximityScan::new(&g, src, |w| 0.6 * w as f64, &mut ws).collect();
            assert_eq!(want, got, "src {src}");
        }
        assert_eq!(ws.allocation_count(), 1, "scan reallocated while warm");
    }

    #[test]
    fn proximity_scan_peek_bound_is_upper_bound() {
        let g = generators::watts_strogatz(80, 4, 0.15, 9);
        let mut ws = ProximityWorkspace::new();
        let mut it = ProximityScan::new(&g, 3, |_| 0.7, &mut ws);
        loop {
            let bound = it.peek_bound();
            match it.next() {
                Some((_, p)) => assert!(bound.unwrap() >= p - 1e-12),
                None => break,
            }
        }
    }

    #[test]
    fn proximity_scan_empty_graph() {
        let g = CsrGraph::empty(0);
        let mut ws = ProximityWorkspace::new();
        assert!(ProximityScan::new(&g, 0, |_| 0.5, &mut ws).next().is_none());
    }

    #[test]
    fn bfs_truncated_flag_distinguishes_covering_horizons() {
        let g = path_graph(10);
        let mut ws = BfsWorkspace::new();
        bfs_stamped(&g, 0, 3, &mut ws);
        assert!(ws.truncated(), "horizon 3 cuts a 10-node path");
        bfs_stamped(&g, 0, 9, &mut ws);
        assert!(!ws.truncated(), "horizon 9 covers the whole path");
        bfs_stamped(&g, 0, u32::MAX, &mut ws);
        assert!(!ws.truncated());
        // A horizon that exactly covers the component is not truncation,
        // even when the graph has unreachable nodes elsewhere.
        let g2 = GraphBuilder::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]);
        bfs_stamped(&g2, 0, 1, &mut ws);
        assert!(!ws.truncated());
        assert_eq!(ws.touched(), &[0, 1]);
    }

    #[test]
    fn proximity_scan_floor_yields_exact_above_floor_prefix() {
        let g = generators::watts_strogatz(120, 4, 0.2, 13);
        let mut ws = ProximityWorkspace::new();
        let full: Vec<(NodeId, f64)> =
            ProximityScan::new(&g, 0, |w| 0.6 * w as f64, &mut ws).collect();
        for floor in [0.0f64, 1e-9, 1e-3, 0.05, 0.3] {
            let mut scan = ProximityScan::with_floor(&g, 0, |w| 0.6 * w as f64, floor, &mut ws);
            let mut got = Vec::new();
            for x in scan.by_ref() {
                got.push(x);
            }
            let residual = scan.residual_bound();
            // Proximities decrease, so the ≥-floor subset is a prefix of the
            // unbounded order — and the bounded scan must reproduce it
            // exactly (same nodes, same bits, same order).
            let want: Vec<(NodeId, f64)> = full
                .iter()
                .copied()
                .take_while(|&(_, p)| p >= floor)
                .collect();
            assert_eq!(got, want, "floor {floor}");
            assert!(residual <= floor, "floor {floor}: residual {residual}");
            if residual == 0.0 {
                // A zero residual is a proof of coverage.
                assert_eq!(got.len(), full.len(), "floor {floor}");
            }
            if got.len() < full.len() {
                assert!(residual > 0.0, "floor {floor}: dropped without residual");
            }
        }
    }

    #[test]
    fn proximity_scan_floor_heap_stays_reach_proportional() {
        // A hub graph where almost everything sits below the floor: the
        // bounded scan must not even enqueue the far side.
        let n = 1000usize;
        let mut edges: Vec<(NodeId, NodeId, f32)> = vec![(0, 1, 1.0)];
        // Node 1 fans out to the rest through a weak tie each.
        for v in 2..n as NodeId {
            edges.push((1, v, 0.01));
        }
        let g = GraphBuilder::from_edges(n, edges);
        let mut ws = ProximityWorkspace::new();
        let mut scan = ProximityScan::with_floor(&g, 0, |w| 0.9 * w as f64, 0.5, &mut ws);
        let mut yielded = 0;
        while scan.next().is_some() {
            yielded += 1;
        }
        assert_eq!(yielded, 2, "only the seeker and its strong tie clear 0.5");
        assert_eq!(scan.residual_bound(), 0.5);
    }
}
