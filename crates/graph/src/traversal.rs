//! Graph traversals: BFS hop distances, weighted shortest paths (Dijkstra)
//! and bidirectional BFS for point-to-point hop distance.
//!
//! Social proximity in `friends-core` is a *decreasing* function of distance,
//! so both hop counts (for decay proximity) and weighted lengths (for
//! strength-aware decay) are provided.

use crate::csr::{CsrGraph, NodeId};
use crate::OrdF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Sentinel hop distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Sentinel weighted distance for unreachable nodes.
pub const UNREACHABLE_F: f64 = f64::INFINITY;

/// Hop distances from `src` to every node (`UNREACHABLE` if disconnected).
pub fn bfs_distances(g: &CsrGraph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_nodes()];
    bfs_into(g, src, u32::MAX, &mut dist);
    dist
}

/// Hop distances from `src`, exploring at most `max_hops` levels.
/// Nodes beyond the horizon keep `UNREACHABLE`.
pub fn bfs_limited(g: &CsrGraph, src: NodeId, max_hops: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_nodes()];
    bfs_into(g, src, max_hops, &mut dist);
    dist
}

/// BFS writing into a caller-provided distance buffer (must be pre-filled
/// with `UNREACHABLE`, length `num_nodes`). Returns the number of reached
/// nodes (including `src`). This is the allocation-free workhorse used by
/// landmark construction, which runs thousands of BFS passes.
pub fn bfs_into(g: &CsrGraph, src: NodeId, max_hops: u32, dist: &mut [u32]) -> usize {
    assert_eq!(dist.len(), g.num_nodes());
    if g.num_nodes() == 0 {
        return 0;
    }
    let mut q = VecDeque::new();
    dist[src as usize] = 0;
    q.push_back(src);
    let mut reached = 1usize;
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        if du >= max_hops {
            continue;
        }
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                reached += 1;
                q.push_back(v);
            }
        }
    }
    reached
}

/// Single-source weighted shortest paths.
///
/// `length` maps an edge weight (friendship *strength*) to a traversal
/// *length*; the common choice in the reproduction is `|w| 1.0 / w.max(eps)`
/// so strong ties are short. Lengths must be non-negative.
pub fn dijkstra(g: &CsrGraph, src: NodeId, mut length: impl FnMut(f32) -> f64) -> Vec<f64> {
    let n = g.num_nodes();
    let mut dist = vec![UNREACHABLE_F; n];
    if n == 0 {
        return dist;
    }
    let mut heap: BinaryHeap<Reverse<(OrdF64, NodeId)>> = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(Reverse((OrdF64(0.0), src)));
    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for (v, w) in g.edges(u) {
            let l = length(w);
            debug_assert!(l >= 0.0, "negative edge length");
            let nd = d + l;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((OrdF64(nd), v)));
            }
        }
    }
    dist
}

/// Hop distance between `s` and `t` via bidirectional BFS, or `None` if
/// disconnected. Typically explores `O(b^(d/2))` nodes instead of `O(b^d)`.
pub fn bidirectional_hops(g: &CsrGraph, s: NodeId, t: NodeId) -> Option<u32> {
    if s == t {
        return Some(0);
    }
    let n = g.num_nodes();
    let mut ds = vec![UNREACHABLE; n];
    let mut dt = vec![UNREACHABLE; n];
    ds[s as usize] = 0;
    dt[t as usize] = 0;
    let mut qs = VecDeque::from([s]);
    let mut qt = VecDeque::from([t]);
    let mut best = UNREACHABLE;
    while !qs.is_empty() && !qt.is_empty() {
        // Expand the smaller frontier one full level.
        let expand_s = qs.len() <= qt.len();
        let (q, dist_this, dist_other) = if expand_s {
            (&mut qs, &mut ds, &dt)
        } else {
            (&mut qt, &mut dt, &ds)
        };
        let level = dist_this[q.front().map(|&u| u as usize).unwrap()];
        // If even the optimistic meet-up can't beat `best`, stop.
        if best != UNREACHABLE && 2 * level + 1 >= best {
            break;
        }
        let mut next = VecDeque::new();
        while let Some(&u) = q.front() {
            if dist_this[u as usize] != level {
                break;
            }
            q.pop_front();
            for &v in g.neighbors(u) {
                if dist_this[v as usize] == UNREACHABLE {
                    dist_this[v as usize] = level + 1;
                    if dist_other[v as usize] != UNREACHABLE {
                        best = best.min(level + 1 + dist_other[v as usize]);
                    }
                    next.push_back(v);
                }
            }
        }
        q.extend(next);
    }
    if best == UNREACHABLE {
        None
    } else {
        Some(best)
    }
}

/// Nodes visited in best-first order of *decreasing proximity*, where
/// proximity multiplies along edges: `prox(path) = Π decay(w_e)`.
///
/// This is the traversal kernel of the `FriendExpansion` processor: it yields
/// `(node, proximity)` pairs such that the proximity of each yielded node is
/// an upper bound on that of every node yielded later. Implemented as a
/// Dijkstra over `-log prox`, surfaced through an iterator so the caller can
/// stop as soon as its termination bound fires.
pub struct ProximityOrder<'g, F> {
    g: &'g CsrGraph,
    decay: F,
    best: Vec<f64>,
    settled: Vec<bool>,
    heap: BinaryHeap<(OrdF64, NodeId)>,
}

impl<'g, F: FnMut(f32) -> f64> ProximityOrder<'g, F> {
    /// Starts a proximity-ordered traversal from `src`. `decay` maps an edge
    /// weight to a per-edge proximity multiplier in `(0, 1]`.
    pub fn new(g: &'g CsrGraph, src: NodeId, decay: F) -> Self {
        let n = g.num_nodes();
        let mut best = vec![0.0f64; n];
        let mut heap = BinaryHeap::new();
        if n > 0 {
            best[src as usize] = 1.0;
            heap.push((OrdF64(1.0), src));
        }
        ProximityOrder {
            g,
            decay,
            best,
            settled: vec![false; n],
            heap,
        }
    }

    /// Proximity of the next node the iterator would yield, if any. This is
    /// exactly the upper bound on all not-yet-yielded nodes.
    pub fn peek_bound(&self) -> Option<f64> {
        self.heap.peek().map(|&(OrdF64(p), _)| p)
    }
}

impl<F: FnMut(f32) -> f64> Iterator for ProximityOrder<'_, F> {
    type Item = (NodeId, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((OrdF64(p), u)) = self.heap.pop() {
            if self.settled[u as usize] {
                continue;
            }
            self.settled[u as usize] = true;
            for (v, w) in self.g.edges(u) {
                if self.settled[v as usize] {
                    continue;
                }
                let mult = (self.decay)(w);
                debug_assert!(
                    (0.0..=1.0).contains(&mult),
                    "decay must map into (0, 1], got {mult}"
                );
                let np = p * mult;
                if np > self.best[v as usize] {
                    self.best[v as usize] = np;
                    self.heap.push((OrdF64(np), v));
                }
            }
            return Some((u, p));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;
    use crate::generators;

    fn path_graph(n: usize) -> CsrGraph {
        GraphBuilder::from_edges(n, (0..n - 1).map(|i| (i as NodeId, i as NodeId + 1, 1.0)))
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = GraphBuilder::from_edges(4, [(0, 1, 1.0)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn bfs_limited_respects_horizon() {
        let g = path_graph(10);
        let d = bfs_limited(&g, 0, 3);
        assert_eq!(d[3], 3);
        assert_eq!(d[4], UNREACHABLE);
    }

    #[test]
    fn bfs_into_returns_reach_count() {
        let g = GraphBuilder::from_edges(5, [(0, 1, 1.0), (1, 2, 1.0)]);
        let mut buf = vec![UNREACHABLE; 5];
        let r = bfs_into(&g, 0, u32::MAX, &mut buf);
        assert_eq!(r, 3);
    }

    #[test]
    fn dijkstra_prefers_strong_ties() {
        // 0 -(w=1.0)- 1 -(w=1.0)- 2   vs   0 -(w=0.1)- 2
        let g = GraphBuilder::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 0.1)]);
        let d = dijkstra(&g, 0, |w| 1.0 / w as f64);
        // Two strong hops cost 2.0; the weak direct tie costs 10.0.
        assert!((d[2] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dijkstra_unreachable_is_inf() {
        let g = GraphBuilder::from_edges(3, [(0, 1, 1.0)]);
        let d = dijkstra(&g, 0, |_| 1.0);
        assert_eq!(d[2], UNREACHABLE_F);
    }

    #[test]
    fn dijkstra_matches_bfs_on_unit_lengths() {
        let g = generators::erdos_renyi(150, 0.05, 3);
        let bfs = bfs_distances(&g, 0);
        let dij = dijkstra(&g, 0, |_| 1.0);
        for u in 0..150usize {
            if bfs[u] == UNREACHABLE {
                assert_eq!(dij[u], UNREACHABLE_F);
            } else {
                assert!((dij[u] - bfs[u] as f64).abs() < 1e-9, "node {u}");
            }
        }
    }

    #[test]
    fn bidirectional_matches_bfs() {
        let g = generators::watts_strogatz(120, 4, 0.2, 4);
        let d0 = bfs_distances(&g, 7);
        for t in [0u32, 13, 50, 99, 119] {
            let got = bidirectional_hops(&g, 7, t);
            if d0[t as usize] == UNREACHABLE {
                assert_eq!(got, None);
            } else {
                assert_eq!(got, Some(d0[t as usize]), "target {t}");
            }
        }
    }

    #[test]
    fn bidirectional_same_node() {
        let g = path_graph(3);
        assert_eq!(bidirectional_hops(&g, 1, 1), Some(0));
    }

    #[test]
    fn bidirectional_disconnected() {
        let g = GraphBuilder::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]);
        assert_eq!(bidirectional_hops(&g, 0, 3), None);
    }

    #[test]
    fn proximity_order_is_monotone_decreasing() {
        let g = generators::barabasi_albert(200, 3, 8);
        let it = ProximityOrder::new(&g, 0, |_| 0.5);
        let seq: Vec<f64> = it.map(|(_, p)| p).collect();
        assert!(!seq.is_empty());
        for w in seq.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn proximity_order_unit_decay_on_path() {
        let g = path_graph(4);
        let order: Vec<(NodeId, f64)> = ProximityOrder::new(&g, 0, |_| 0.5).collect();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], (0, 1.0));
        assert_eq!(order[1].0, 1);
        assert!((order[1].1 - 0.5).abs() < 1e-12);
        assert!((order[3].1 - 0.125).abs() < 1e-12);
    }

    #[test]
    fn proximity_order_takes_best_path() {
        // Direct weak edge vs two strong hops; multiplicative proximity
        // should pick whichever product is larger.
        let g = GraphBuilder::from_edges(3, [(0, 2, 0.2), (0, 1, 0.9), (1, 2, 0.9)]);
        let order: Vec<(NodeId, f64)> = ProximityOrder::new(&g, 0, |w| w as f64).collect();
        let p2 = order.iter().find(|&&(u, _)| u == 2).unwrap().1;
        // Weights are f32, so 0.9 is not exactly representable; allow slack.
        assert!((p2 - 0.81).abs() < 1e-6, "expected 0.9*0.9, got {p2}");
    }

    #[test]
    fn proximity_peek_bound_is_upper_bound() {
        let g = generators::watts_strogatz(100, 4, 0.1, 5);
        let mut it = ProximityOrder::new(&g, 0, |_| 0.7);
        let mut yielded = Vec::new();
        loop {
            let bound = it.peek_bound();
            match it.next() {
                Some((u, p)) => {
                    assert!(bound.unwrap() >= p - 1e-12);
                    yielded.push(u);
                }
                None => break,
            }
        }
        assert_eq!(yielded.len(), 100);
    }

    #[test]
    fn proximity_order_empty_graph() {
        let g = CsrGraph::empty(0);
        // Constructing on an empty graph must not panic and yields nothing.
        let mut it = ProximityOrder::new(&g, 0, |_| 0.5);
        assert!(it.next().is_none());
    }
}
