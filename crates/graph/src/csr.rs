//! Compressed-sparse-row graph storage and its builder.
//!
//! [`CsrGraph`] is an immutable, undirected, weighted graph optimised for the
//! read-heavy access patterns of query processing: cache-friendly sequential
//! neighbor scans and `O(log deg)` edge lookups (adjacency lists are kept
//! sorted by target id).

use serde::{Deserialize, Serialize};

/// Node identifier. `u32` bounds graphs at ~4.2 billion nodes, which is far
/// beyond the scale of the reproduction while halving index memory compared
/// to `usize` on 64-bit targets.
pub type NodeId = u32;

/// An immutable undirected weighted graph in CSR layout.
///
/// Every undirected edge `{u, v}` is stored as the two directed arcs
/// `(u, v)` and `(v, u)` so that neighbor scans never need a reverse index.
/// Adjacency lists are sorted by target id; parallel edges are merged at
/// build time (keeping the maximum weight) and self-loops are dropped.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `offsets[u] .. offsets[u + 1]` delimits `u`'s slice in `targets`.
    offsets: Vec<usize>,
    /// Concatenated, per-node-sorted adjacency lists.
    targets: Vec<NodeId>,
    /// `weights[i]` is the weight of the arc `targets[i]`.
    weights: Vec<f32>,
    /// Process-unique identity token, assigned at construction and shared by
    /// clones (a clone *is* the same graph). Caches keyed on derived data
    /// (e.g. seeker proximity) include it so entries can never be served for
    /// a different graph.
    token: u64,
}

fn next_graph_token() -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

impl CsrGraph {
    /// Creates an empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            weights: Vec::new(),
            token: next_graph_token(),
        }
    }

    /// The graph's process-unique identity token (stable across clones,
    /// distinct for every separately constructed graph).
    #[inline]
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Number of nodes, including isolated ones.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *undirected* edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Number of stored directed arcs (`2 × num_edges`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Degree of `u` (number of distinct neighbors).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Sorted slice of `u`'s neighbors.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Weights parallel to [`CsrGraph::neighbors`].
    #[inline]
    pub fn neighbor_weights(&self, u: NodeId) -> &[f32] {
        let u = u as usize;
        &self.weights[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Iterator over `(neighbor, weight)` pairs of `u`.
    #[inline]
    pub fn edges(&self, u: NodeId) -> impl Iterator<Item = (NodeId, f32)> + '_ {
        self.neighbors(u)
            .iter()
            .copied()
            .zip(self.neighbor_weights(u).iter().copied())
    }

    /// Sum of the weights of `u`'s incident edges.
    pub fn weighted_degree(&self, u: NodeId) -> f64 {
        self.neighbor_weights(u).iter().map(|&w| w as f64).sum()
    }

    /// Whether the undirected edge `{u, v}` exists. `O(log deg(u))`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Weight of the edge `{u, v}`, if present. `O(log deg(u))`.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f32> {
        self.neighbors(u)
            .binary_search(&v)
            .ok()
            .map(|i| self.neighbor_weights(u)[i])
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Iterator over every undirected edge exactly once, as `(u, v, w)` with
    /// `u < v`.
    pub fn undirected_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f32)> + '_ {
        self.nodes()
            .flat_map(move |u| self.edges(u).map(move |(v, w)| (u, v, w)))
            .filter(|&(u, v, _)| u < v)
    }

    /// Approximate resident memory of the graph structure, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<NodeId>()
            + self.weights.len() * std::mem::size_of::<f32>()
    }

    /// The node with the largest degree, or `None` for an empty graph.
    pub fn max_degree_node(&self) -> Option<NodeId> {
        self.nodes().max_by_key(|&u| self.degree(u))
    }

    /// Replaces every edge weight using `f(u, v, old) -> new`, preserving the
    /// symmetric storage invariant (both arc copies get the same weight
    /// because `f` is invoked with endpoints ordered `min, max`).
    pub fn map_weights(&mut self, mut f: impl FnMut(NodeId, NodeId, f32) -> f32) {
        // Offsets are never mutated below; snapshot them to appease borrowck.
        let offsets = self.offsets.clone();
        for u in 0..offsets.len() - 1 {
            for i in offsets[u]..offsets[u + 1] {
                let v = self.targets[i];
                let (a, b) = if (u as NodeId) < v {
                    (u as NodeId, v)
                } else {
                    (v, u as NodeId)
                };
                self.weights[i] = f(a, b, self.weights[i]);
            }
        }
        // Weights changed ⇒ derived data (e.g. cached proximity) is stale:
        // re-identify the graph so token-keyed caches miss.
        self.token = next_graph_token();
    }

    /// Returns a copy of the graph with edge edits applied, **keeping this
    /// graph's identity token**.
    ///
    /// Inserting an edge that already exists replaces its weight (most
    /// recent write wins, unlike the builder's max-merge); removing an
    /// absent edge is a no-op; self-loops are dropped.
    ///
    /// Preserving the token is what makes live updates incremental: σ
    /// cache entries for seekers the edit cannot reach keep hitting under
    /// the edited graph. The contract is therefore inverted from
    /// [`CsrGraph::map_weights`]: the *caller* must invalidate every
    /// token-keyed cache entry the edits can affect **before** publishing
    /// the edited graph (see `friends_core::live`), because nothing here
    /// will force a miss.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or an inserted weight is not
    /// finite and non-negative (same contract as [`GraphBuilder::add_edge`]).
    pub fn with_edits(
        &self,
        inserts: &[(NodeId, NodeId, f32)],
        removals: &[(NodeId, NodeId)],
    ) -> CsrGraph {
        let canon = |u: NodeId, v: NodeId| if u < v { (u, v) } else { (v, u) };
        // Every edited pair sheds its old copy: removals outright, inserts
        // so the new weight replaces (not max-merges with) the old one.
        let mut stale: Vec<(NodeId, NodeId)> = removals.iter().map(|&(u, v)| canon(u, v)).collect();
        stale.extend(
            inserts
                .iter()
                .filter(|&&(u, v, _)| u != v)
                .map(|&(u, v, _)| canon(u, v)),
        );
        stale.sort_unstable();
        stale.dedup();
        let mut b = GraphBuilder::with_capacity(self.num_nodes(), self.num_edges() + inserts.len());
        for (u, v, w) in self.undirected_edges() {
            if stale.binary_search(&(u, v)).is_err() {
                b.add_edge(u, v, w);
            }
        }
        // Within the batch, the last insert of a pair wins.
        let mut latest: Vec<(NodeId, NodeId, f32)> = Vec::with_capacity(inserts.len());
        for &(u, v, w) in inserts {
            if u == v {
                continue;
            }
            let (a, z) = canon(u, v);
            match latest.iter_mut().find(|e| e.0 == a && e.1 == z) {
                Some(e) => e.2 = w,
                None => latest.push((a, z, w)),
            }
        }
        for (u, v, w) in latest {
            b.add_edge(u, v, w);
        }
        let mut g = b.build();
        g.token = self.token;
        g
    }
}

/// Incremental builder producing a [`CsrGraph`].
///
/// Edges may be added in any order; duplicates (including the mirrored
/// direction) are merged keeping the **maximum** weight, and self-loops are
/// silently dropped. Node ids must be `< n`.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId, f32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with pre-reserved space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edge insertions so far (before dedup).
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}` with weight `w`.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range, or if `w` is not finite or is
    /// negative — social proximity weights are non-negative by construction
    /// and letting a NaN in here would poison every downstream bound.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f32) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for {} nodes",
            self.n
        );
        assert!(w.is_finite() && w >= 0.0, "invalid edge weight {w}");
        if u == v {
            return; // self-loops carry no social information
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, w));
    }

    /// Adds an unweighted edge (weight 1.0).
    pub fn add_unweighted(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v, 1.0);
    }

    /// Finalises the builder into an immutable CSR graph.
    pub fn build(mut self) -> CsrGraph {
        // Sort canonical (min, max) pairs, then merge duplicates keeping the
        // max weight: a pair of users connected through several channels is
        // at least as close as its strongest channel.
        self.edges.sort_unstable_by_key(|a| (a.0, a.1));
        self.edges.dedup_by(|next, kept| {
            if next.0 == kept.0 && next.1 == kept.1 {
                kept.2 = kept.2.max(next.2);
                true
            } else {
                false
            }
        });

        let n = self.n;
        let mut counts = vec![0usize; n + 1];
        for &(u, v, _) in &self.edges {
            counts[u as usize + 1] += 1;
            counts[v as usize + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let arcs = self.edges.len() * 2;
        let mut targets = vec![0 as NodeId; arcs];
        let mut weights = vec![0f32; arcs];
        let mut cursor = offsets.clone();
        for &(u, v, w) in &self.edges {
            let cu = &mut cursor[u as usize];
            targets[*cu] = v;
            weights[*cu] = w;
            *cu += 1;
            let cv = &mut cursor[v as usize];
            targets[*cv] = u;
            weights[*cv] = w;
            *cv += 1;
        }
        // Edges were sorted by (min, max); per-node lists still need a sort
        // because arcs from the "max endpoint" side arrive out of order.
        let mut g = CsrGraph {
            offsets,
            targets,
            weights,
            token: next_graph_token(),
        };
        for u in 0..n {
            let lo = g.offsets[u];
            let hi = g.offsets[u + 1];
            let mut idx: Vec<usize> = (lo..hi).collect();
            idx.sort_unstable_by_key(|&i| g.targets[i]);
            let ts: Vec<NodeId> = idx.iter().map(|&i| g.targets[i]).collect();
            let ws: Vec<f32> = idx.iter().map(|&i| g.weights[i]).collect();
            g.targets[lo..hi].copy_from_slice(&ts);
            g.weights[lo..hi].copy_from_slice(&ws);
        }
        g
    }

    /// Convenience: builds directly from an edge list.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId, f32)>,
    ) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for (u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> CsrGraph {
        GraphBuilder::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0), (2, 3, 0.5)])
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(0).is_empty());
    }

    #[test]
    fn zero_node_graph() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.max_degree_node(), None);
    }

    #[test]
    fn basic_topology() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_arcs(), 8);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = GraphBuilder::from_edges(6, [(5, 0, 1.0), (5, 3, 1.0), (5, 1, 1.0), (5, 4, 1.0)]);
        assert_eq!(g.neighbors(5), &[0, 1, 3, 4]);
    }

    #[test]
    fn edge_lookup_and_weights() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.edge_weight(2, 0), Some(3.0));
        assert_eq!(g.edge_weight(0, 2), Some(3.0));
        assert_eq!(g.edge_weight(3, 0), None);
    }

    #[test]
    fn duplicate_edges_keep_max_weight() {
        let g = GraphBuilder::from_edges(2, [(0, 1, 0.2), (1, 0, 0.9), (0, 1, 0.5)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(0.9));
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 1, 1.0);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid edge weight")]
    fn nan_weight_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, f32::NAN);
    }

    #[test]
    fn weighted_degree_sums() {
        let g = triangle_plus_pendant();
        assert!((g.weighted_degree(2) - 5.5).abs() < 1e-9);
    }

    #[test]
    fn undirected_edges_enumerates_once() {
        let g = triangle_plus_pendant();
        let mut es: Vec<_> = g.undirected_edges().map(|(u, v, _)| (u, v)).collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn map_weights_rescales_symmetrically() {
        let mut g = triangle_plus_pendant();
        g.map_weights(|_, _, w| w * 2.0);
        assert_eq!(g.edge_weight(0, 2), Some(6.0));
        assert_eq!(g.edge_weight(2, 0), Some(6.0));
    }

    #[test]
    fn memory_accounting_positive() {
        let g = triangle_plus_pendant();
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn isolated_trailing_nodes_kept() {
        let g = GraphBuilder::from_edges(10, [(0, 1, 1.0)]);
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn with_edits_applies_inserts_and_removals() {
        let g = triangle_plus_pendant();
        let edited = g.with_edits(&[(0, 3, 4.0)], &[(1, 2)]);
        assert_eq!(edited.num_edges(), 4);
        assert_eq!(edited.edge_weight(0, 3), Some(4.0));
        assert_eq!(edited.edge_weight(3, 0), Some(4.0));
        assert!(!edited.has_edge(1, 2));
        assert_eq!(edited.edge_weight(0, 2), Some(3.0), "untouched edge kept");
        // The original is immutable and unaffected.
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn with_edits_keeps_the_token() {
        let g = triangle_plus_pendant();
        let edited = g.with_edits(&[(0, 3, 4.0)], &[]);
        assert_eq!(edited.token(), g.token());
    }

    #[test]
    fn with_edits_insert_replaces_weight_last_wins() {
        let g = triangle_plus_pendant();
        // Existing {0,1} has weight 1.0; a re-insert with a *lower* weight
        // must replace it (not max-merge), and the last write in the batch
        // wins over earlier ones.
        let edited = g.with_edits(&[(0, 1, 0.7), (1, 0, 0.3)], &[]);
        assert_eq!(edited.edge_weight(0, 1), Some(0.3));
        assert_eq!(edited.num_edges(), g.num_edges());
    }

    #[test]
    fn with_edits_tolerates_absent_removals_and_self_loops() {
        let g = triangle_plus_pendant();
        let edited = g.with_edits(&[(2, 2, 9.0)], &[(0, 3), (1, 1)]);
        assert_eq!(edited.num_edges(), g.num_edges());
        assert!(!edited.has_edge(2, 2));
    }
}
