//! Connected components and component-level utilities.

use crate::csr::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Result of a connected-components decomposition.
#[derive(Clone, Debug)]
pub struct Components {
    /// `labels[u]` is the component id of node `u`, in `0..count`.
    pub labels: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// `sizes[c]` is the number of nodes in component `c`.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Id of the largest component (ties broken by lower id).
    pub fn largest(&self) -> Option<u32> {
        (0..self.count as u32).max_by_key(|&c| (self.sizes[c as usize], std::cmp::Reverse(c)))
    }

    /// Whether nodes `u` and `v` are in the same component.
    pub fn same(&self, u: NodeId, v: NodeId) -> bool {
        self.labels[u as usize] == self.labels[v as usize]
    }
}

/// Computes connected components by repeated BFS. `O(n + m)`.
pub fn connected_components(g: &CsrGraph) -> Components {
    let n = g.num_nodes();
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut q = VecDeque::new();
    let mut next = 0u32;
    for s in 0..n as NodeId {
        if labels[s as usize] != u32::MAX {
            continue;
        }
        let c = next;
        next += 1;
        labels[s as usize] = c;
        let mut size = 1usize;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = c;
                    size += 1;
                    q.push_back(v);
                }
            }
        }
        sizes.push(size);
    }
    Components {
        labels,
        count: next as usize,
        sizes,
    }
}

/// Fraction of nodes contained in the largest connected component
/// (1.0 for connected graphs, 0.0 for empty ones).
pub fn largest_component_fraction(g: &CsrGraph) -> f64 {
    if g.num_nodes() == 0 {
        return 0.0;
    }
    let c = connected_components(g);
    let max = c.sizes.iter().copied().max().unwrap_or(0);
    max as f64 / g.num_nodes() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;
    use crate::generators;

    #[test]
    fn two_islands() {
        let g = GraphBuilder::from_edges(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 3); // {0,1,2}, {3,4}, {5}
        assert!(c.same(0, 2));
        assert!(c.same(3, 4));
        assert!(!c.same(0, 3));
        assert!(!c.same(4, 5));
        let mut sz = c.sizes.clone();
        sz.sort_unstable();
        assert_eq!(sz, vec![1, 2, 3]);
        assert_eq!(c.sizes[c.largest().unwrap() as usize], 3);
    }

    #[test]
    fn empty_and_singletons() {
        let g = CsrGraph::empty(4);
        let c = connected_components(&g);
        assert_eq!(c.count, 4);
        assert!(c.sizes.iter().all(|&s| s == 1));

        let g0 = CsrGraph::empty(0);
        let c0 = connected_components(&g0);
        assert_eq!(c0.count, 0);
        assert_eq!(c0.largest(), None);
        assert_eq!(largest_component_fraction(&g0), 0.0);
    }

    #[test]
    fn dense_er_is_connected() {
        let g = generators::erdos_renyi(300, 0.05, 1);
        assert!(largest_component_fraction(&g) > 0.99);
    }

    #[test]
    fn labels_partition_nodes() {
        let g = generators::erdos_renyi(100, 0.01, 9);
        let c = connected_components(&g);
        assert_eq!(c.labels.len(), 100);
        assert_eq!(c.sizes.iter().sum::<usize>(), 100);
        for &l in &c.labels {
            assert!((l as usize) < c.count);
        }
    }
}
