//! Landmark-based distance oracle.
//!
//! The `ClusterIndex` processor needs fast distance *bounds* between a seeker
//! and cluster representatives without running a BFS per query. A classic
//! landmark sketch provides, after `L` BFS passes at build time:
//!
//! * an upper bound `d(u,v) ≤ min_l d(u,l) + d(l,v)` (triangle inequality);
//! * a lower bound `d(u,v) ≥ max_l |d(u,l) − d(l,v)|`.
//!
//! Landmarks are selected by highest degree by default — hubs cover
//! scale-free social networks well — with a random strategy for ablation.

use crate::csr::{CsrGraph, NodeId};
use crate::traversal::{bfs_into, UNREACHABLE};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Landmark selection strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LandmarkStrategy {
    /// Highest-degree nodes (deduplicated).
    HighestDegree,
    /// Uniform random nodes.
    Random { seed: u64 },
}

/// A distance sketch of `L` landmarks, each with a full BFS distance vector.
#[derive(Clone, Debug)]
pub struct LandmarkOracle {
    landmarks: Vec<NodeId>,
    /// `dist[l][u]` = hop distance from landmark `l` to node `u`.
    dist: Vec<Vec<u32>>,
}

impl LandmarkOracle {
    /// Builds an oracle with `count` landmarks (clamped to `num_nodes`).
    pub fn build(g: &CsrGraph, count: usize, strategy: LandmarkStrategy) -> Self {
        let n = g.num_nodes();
        let count = count.min(n);
        let landmarks: Vec<NodeId> = match strategy {
            LandmarkStrategy::HighestDegree => {
                let mut nodes: Vec<NodeId> = (0..n as NodeId).collect();
                nodes.sort_unstable_by_key(|&u| std::cmp::Reverse(g.degree(u)));
                nodes.truncate(count);
                nodes
            }
            LandmarkStrategy::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut nodes: Vec<NodeId> = (0..n as NodeId).collect();
                nodes.shuffle(&mut rng);
                nodes.truncate(count);
                nodes
            }
        };
        let mut dist = Vec::with_capacity(landmarks.len());
        let mut buf = vec![UNREACHABLE; n];
        for &l in &landmarks {
            buf.iter_mut().for_each(|d| *d = UNREACHABLE);
            bfs_into(g, l, u32::MAX, &mut buf);
            dist.push(buf.clone());
        }
        LandmarkOracle { landmarks, dist }
    }

    /// The selected landmark nodes.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Upper bound on the hop distance `d(u, v)`, or `None` if every landmark
    /// path is broken (which implies the pair may be disconnected).
    pub fn upper_bound(&self, u: NodeId, v: NodeId) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        let mut best = None;
        for d in &self.dist {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != UNREACHABLE && dv != UNREACHABLE {
                let b = du + dv;
                best = Some(best.map_or(b, |x: u32| x.min(b)));
            }
        }
        best
    }

    /// Lower bound on the hop distance `d(u, v)` (0 when no landmark sees
    /// both endpoints).
    pub fn lower_bound(&self, u: NodeId, v: NodeId) -> u32 {
        if u == v {
            return 0;
        }
        let mut best = 0u32;
        for d in &self.dist {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != UNREACHABLE && dv != UNREACHABLE {
                best = best.max(du.abs_diff(dv));
            }
        }
        best
    }

    /// Distances from node `u` to each landmark, in landmark order.
    pub fn to_landmarks(&self, u: NodeId) -> Vec<u32> {
        let mut out = Vec::new();
        self.to_landmarks_into(u, &mut out);
        out
    }

    /// [`LandmarkOracle::to_landmarks`] into a caller-owned buffer (cleared,
    /// then filled), so per-query hot paths reuse one allocation.
    pub fn to_landmarks_into(&self, u: NodeId, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.dist.iter().map(|d| d[u as usize]));
    }

    /// Upper bound on `d(u, v)` where `from_dists` is `u`'s precomputed
    /// landmark distance vector (from [`LandmarkOracle::to_landmarks`]).
    /// Allocation-free variant of [`LandmarkOracle::upper_bound`] for hot
    /// loops that probe many `v` against one fixed `u`.
    pub fn upper_bound_from(&self, from_dists: &[u32], v: NodeId) -> Option<u32> {
        debug_assert_eq!(from_dists.len(), self.dist.len());
        let mut best: Option<u32> = None;
        for (l, d) in self.dist.iter().enumerate() {
            let (du, dv) = (from_dists[l], d[v as usize]);
            if du != UNREACHABLE && dv != UNREACHABLE {
                let b = du + dv;
                best = Some(best.map_or(b, |x| x.min(b)));
            }
        }
        best
    }

    /// Approximate resident memory, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.landmarks.len() * std::mem::size_of::<NodeId>()
            + self
                .dist
                .iter()
                .map(|d| d.len() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.landmarks.len()
    }

    /// Whether the oracle has no landmarks.
    pub fn is_empty(&self) -> bool {
        self.landmarks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal::bfs_distances;

    #[test]
    fn bounds_sandwich_true_distance() {
        let g = generators::watts_strogatz(150, 4, 0.1, 6);
        let oracle = LandmarkOracle::build(&g, 8, LandmarkStrategy::HighestDegree);
        let truth = bfs_distances(&g, 0);
        for v in [1u32, 10, 42, 99, 149] {
            let t = truth[v as usize];
            if t == UNREACHABLE {
                continue;
            }
            let ub = oracle.upper_bound(0, v).unwrap();
            let lb = oracle.lower_bound(0, v);
            assert!(lb <= t, "lb {lb} > true {t} (v={v})");
            assert!(ub >= t, "ub {ub} < true {t} (v={v})");
        }
    }

    #[test]
    fn identical_nodes_have_zero_bounds() {
        let g = generators::erdos_renyi(50, 0.1, 3);
        let oracle = LandmarkOracle::build(&g, 4, LandmarkStrategy::Random { seed: 1 });
        assert_eq!(oracle.upper_bound(7, 7), Some(0));
        assert_eq!(oracle.lower_bound(7, 7), 0);
    }

    #[test]
    fn landmark_exact_for_landmark_pairs() {
        let g = generators::watts_strogatz(80, 4, 0.2, 8);
        let oracle = LandmarkOracle::build(&g, 5, LandmarkStrategy::HighestDegree);
        // For (landmark, v), ub = d(l,l) + d(l,v) = exact distance.
        let l = oracle.landmarks()[0];
        let truth = bfs_distances(&g, l);
        for v in 0..80u32 {
            if truth[v as usize] != UNREACHABLE {
                assert_eq!(oracle.upper_bound(l, v), Some(truth[v as usize]));
            }
        }
    }

    #[test]
    fn disconnected_pairs_return_none() {
        use crate::csr::GraphBuilder;
        let g = GraphBuilder::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]);
        let oracle = LandmarkOracle::build(&g, 4, LandmarkStrategy::HighestDegree);
        assert_eq!(oracle.upper_bound(0, 2), None);
    }

    #[test]
    fn clamps_landmark_count() {
        let g = generators::erdos_renyi(10, 0.3, 4);
        let oracle = LandmarkOracle::build(&g, 100, LandmarkStrategy::HighestDegree);
        assert_eq!(oracle.len(), 10);
        assert!(!oracle.is_empty());
    }

    #[test]
    fn highest_degree_picks_hubs() {
        let g = generators::barabasi_albert(200, 2, 12);
        let oracle = LandmarkOracle::build(&g, 3, LandmarkStrategy::HighestDegree);
        let max_deg = g.nodes().map(|u| g.degree(u)).max().unwrap();
        assert_eq!(g.degree(oracle.landmarks()[0]), max_deg);
    }

    #[test]
    fn memory_scales_with_landmarks() {
        let g = generators::erdos_renyi(100, 0.05, 5);
        let small = LandmarkOracle::build(&g, 2, LandmarkStrategy::HighestDegree);
        let large = LandmarkOracle::build(&g, 8, LandmarkStrategy::HighestDegree);
        assert!(large.memory_bytes() > small.memory_bytes());
    }
}
