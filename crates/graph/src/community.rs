//! Community detection and partition quality.
//!
//! The `ClusterIndex` materializes per-community score bounds, so it needs a
//! partition of users into cohesive groups. Label propagation is used as the
//! default detector (near-linear, good-enough communities); a degree-bucketed
//! fallback guarantees a partition of bounded size even on structureless
//! graphs. Modularity is provided to measure partition quality in Table 2.

use crate::csr::{CsrGraph, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashMap;

/// A partition of the node set into communities labelled `0..count`.
#[derive(Clone, Debug)]
pub struct Partition {
    /// `labels[u]` is the community of node `u`.
    pub labels: Vec<u32>,
    /// Number of communities.
    pub count: usize,
}

impl Partition {
    /// Builds a partition from raw (possibly sparse) labels, renumbering them
    /// densely in first-appearance order.
    pub fn from_raw(raw: &[u32]) -> Self {
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut labels = Vec::with_capacity(raw.len());
        for &r in raw {
            let next = remap.len() as u32;
            let l = *remap.entry(r).or_insert(next);
            labels.push(l);
        }
        Partition {
            labels,
            count: remap.len(),
        }
    }

    /// Community sizes indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.count];
        for &l in &self.labels {
            s[l as usize] += 1;
        }
        s
    }

    /// Members of every community, indexed by label.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut m = vec![Vec::new(); self.count];
        for (u, &l) in self.labels.iter().enumerate() {
            m[l as usize].push(u as NodeId);
        }
        m
    }
}

/// Synchronous-ish label propagation with random node order per round.
///
/// Each node adopts the (weighted) majority label among its neighbors; ties
/// break toward the smallest label for determinism. Runs at most
/// `max_rounds` rounds or until fewer than `n / 1000 + 1` nodes change.
pub fn label_propagation(g: &CsrGraph, max_rounds: usize, seed: u64) -> Partition {
    let n = g.num_nodes();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    if n == 0 {
        return Partition { labels, count: 0 };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    let mut tally: HashMap<u32, f64> = HashMap::new();
    for _ in 0..max_rounds {
        order.shuffle(&mut rng);
        let mut changed = 0usize;
        for &u in &order {
            if g.degree(u) == 0 {
                continue;
            }
            tally.clear();
            for (v, w) in g.edges(u) {
                *tally.entry(labels[v as usize]).or_insert(0.0) += w as f64;
            }
            // Weighted majority, smallest label on ties.
            let mut best = labels[u as usize];
            let mut best_w = f64::NEG_INFINITY;
            let mut keys: Vec<u32> = tally.keys().copied().collect();
            keys.sort_unstable();
            for k in keys {
                let w = tally[&k];
                if w > best_w {
                    best_w = w;
                    best = k;
                }
            }
            if best != labels[u as usize] {
                labels[u as usize] = best;
                changed += 1;
            }
        }
        if changed <= n / 1000 {
            break;
        }
    }
    Partition::from_raw(&labels)
}

/// Splits any oversized communities so none exceeds `max_size`, preserving
/// the rest of the partition. Ensures the cluster index never materializes a
/// pathological giant cluster (label propagation can collapse to one label on
/// expander-like graphs).
pub fn cap_community_size(p: &Partition, max_size: usize) -> Partition {
    assert!(max_size >= 1);
    let members = p.members();
    let mut raw = vec![0u32; p.labels.len()];
    let mut next = 0u32;
    for group in members {
        for chunk in group.chunks(max_size) {
            for &u in chunk {
                raw[u as usize] = next;
            }
            next += 1;
        }
    }
    Partition::from_raw(&raw)
}

/// Newman modularity `Q` of a partition on a weighted graph, in
/// `[-0.5, 1.0]`; higher is more community-like.
pub fn modularity(g: &CsrGraph, p: &Partition) -> f64 {
    let two_m: f64 = g.nodes().map(|u| g.weighted_degree(u)).sum::<f64>();
    if two_m == 0.0 {
        return 0.0;
    }
    let mut intra = 0.0f64; // sum of weights of intra-community arcs
    let mut deg_sum = vec![0.0f64; p.count];
    for u in g.nodes() {
        deg_sum[p.labels[u as usize] as usize] += g.weighted_degree(u);
        for (v, w) in g.edges(u) {
            if p.labels[u as usize] == p.labels[v as usize] {
                intra += w as f64;
            }
        }
    }
    let mut q = intra / two_m;
    for d in deg_sum {
        q -= (d / two_m) * (d / two_m);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn from_raw_renumbers_densely() {
        let p = Partition::from_raw(&[7, 7, 3, 9, 3]);
        assert_eq!(p.count, 3);
        assert_eq!(p.labels, vec![0, 0, 1, 2, 1]);
        assert_eq!(p.sizes(), vec![2, 2, 1]);
    }

    #[test]
    fn members_partition_nodes() {
        let p = Partition::from_raw(&[0, 1, 0, 2, 1]);
        let m = p.members();
        let total: usize = m.iter().map(|g| g.len()).sum();
        assert_eq!(total, 5);
        assert_eq!(m[0], vec![0, 2]);
    }

    #[test]
    fn label_propagation_recovers_planted_partition() {
        let (g, truth) = generators::planted_partition(400, 4, 0.15, 0.002, 31);
        let p = label_propagation(&g, 20, 7);
        // Measure agreement via pairwise same-community accuracy on a sample
        // of pairs: strong planted structure should be mostly recovered.
        let mut agree = 0usize;
        let mut total = 0usize;
        for u in (0..400usize).step_by(7) {
            for v in (u + 1..400).step_by(13) {
                let t = truth[u] == truth[v];
                let d = p.labels[u] == p.labels[v];
                total += 1;
                if t == d {
                    agree += 1;
                }
            }
        }
        let acc = agree as f64 / total as f64;
        assert!(acc > 0.85, "pairwise agreement {acc}");
    }

    #[test]
    fn label_propagation_empty_and_isolated() {
        let g = CsrGraph::empty(0);
        let p = label_propagation(&g, 5, 1);
        assert_eq!(p.count, 0);

        let g2 = CsrGraph::empty(3);
        let p2 = label_propagation(&g2, 5, 1);
        assert_eq!(p2.count, 3); // isolated nodes keep singleton labels
    }

    #[test]
    fn cap_community_size_enforces_cap() {
        let p = Partition::from_raw(&[0; 10]);
        let capped = cap_community_size(&p, 3);
        assert!(capped.sizes().iter().all(|&s| s <= 3));
        assert_eq!(capped.sizes().iter().sum::<usize>(), 10);
        assert_eq!(capped.count, 4);
    }

    #[test]
    fn modularity_of_planted_partition_truth_is_high() {
        let (g, truth) = generators::planted_partition(300, 3, 0.2, 0.004, 9);
        let p = Partition::from_raw(&truth);
        let q = modularity(&g, &p);
        assert!(q > 0.4, "modularity {q}");
        // Random partition should be much worse.
        // Ground-truth labels are `i % 3`, so scramble with `i / 3 % 3`,
        // which mixes one node of each true community into every block.
        let rnd: Vec<u32> = (0..300).map(|i| (i / 3 % 3) as u32).collect();
        let qr = modularity(&g, &Partition::from_raw(&rnd));
        assert!(q > qr + 0.2, "q {q} vs random {qr}");
    }

    #[test]
    fn modularity_empty_graph_zero() {
        let g = CsrGraph::empty(5);
        let p = Partition::from_raw(&[0, 0, 1, 1, 2]);
        assert_eq!(modularity(&g, &p), 0.0);
    }
}
