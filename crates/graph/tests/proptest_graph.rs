//! Property-based tests for the graph substrate: structural invariants of
//! the CSR builder, optimality of the traversals, and the probabilistic
//! contracts of PPR and the landmark oracle.

use friends_graph::csr::{CsrGraph, GraphBuilder, NodeId};
use friends_graph::landmarks::{LandmarkOracle, LandmarkStrategy};
use friends_graph::ppr::{forward_push_fresh, power_iteration};
use friends_graph::traversal::{
    bfs_distances, bidirectional_hops, dijkstra, ProximityOrder, UNREACHABLE, UNREACHABLE_F,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: a random small graph as (n, edge list with weights).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId, f32)>)> {
    (2usize..30).prop_flat_map(|n| {
        let edges =
            proptest::collection::vec((0..n as NodeId, 0..n as NodeId, 0.05f32..1.0), 0..(n * 3));
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(NodeId, NodeId, f32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for &(u, v, w) in edges {
        if u != v {
            b.add_edge(u, v, w);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The CSR stores exactly the deduplicated undirected edge set, with
    /// symmetric adjacency and sorted neighbor lists.
    #[test]
    fn csr_preserves_edge_set((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let want: BTreeSet<(NodeId, NodeId)> = edges
            .iter()
            .filter(|&&(u, v, _)| u != v)
            .map(|&(u, v, _)| (u.min(v), u.max(v)))
            .collect();
        let got: BTreeSet<(NodeId, NodeId)> =
            g.undirected_edges().map(|(u, v, _)| (u, v)).collect();
        prop_assert_eq!(want, got);
        for u in g.nodes() {
            let nb = g.neighbors(u);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "unsorted/dup at {}", u);
            for &v in nb {
                prop_assert!(g.has_edge(v, u), "asymmetric edge {} {}", u, v);
                prop_assert_eq!(g.edge_weight(u, v), g.edge_weight(v, u));
            }
        }
        prop_assert_eq!(g.num_arcs(), 2 * g.num_edges());
    }

    /// BFS distances satisfy the triangle property along every edge and are
    /// exactly reproduced by unit-length Dijkstra and bidirectional BFS.
    #[test]
    fn traversals_agree((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let d = bfs_distances(&g, 0);
        for (u, v, _) in g.undirected_edges() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != UNREACHABLE && dv != UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}): {du} vs {dv}");
            } else {
                // An edge cannot connect a reached and an unreached node.
                prop_assert_eq!(du, dv);
            }
        }
        let dij = dijkstra(&g, 0, |_| 1.0);
        for u in 0..n {
            if d[u] == UNREACHABLE {
                prop_assert_eq!(dij[u], UNREACHABLE_F);
            } else {
                prop_assert!((dij[u] - d[u] as f64).abs() < 1e-9);
            }
        }
        for t in 0..n as NodeId {
            let bi = bidirectional_hops(&g, 0, t);
            if d[t as usize] == UNREACHABLE {
                prop_assert_eq!(bi, None);
            } else {
                prop_assert_eq!(bi, Some(d[t as usize]));
            }
        }
    }

    /// ProximityOrder yields every reachable node exactly once, in
    /// non-increasing proximity, and its proximities match an independent
    /// Dijkstra over -log(decay).
    #[test]
    fn proximity_order_is_dijkstra((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let alpha = 0.7f64;
        let order: Vec<(NodeId, f64)> =
            ProximityOrder::new(&g, 0, |w| alpha * w as f64).collect();
        // Non-increasing.
        for w in order.windows(2) {
            prop_assert!(w[0].1 >= w[1].1 - 1e-12);
        }
        // Unique nodes.
        let ids: BTreeSet<NodeId> = order.iter().map(|&(u, _)| u).collect();
        prop_assert_eq!(ids.len(), order.len());
        // Agreement with additive Dijkstra on lengths -ln(alpha * w).
        let lens = dijkstra(&g, 0, |w| -((alpha * w as f64).ln()));
        for &(u, p) in &order {
            let expect = (-lens[u as usize]).exp();
            prop_assert!(
                (p - expect).abs() < 1e-6 * (1.0 + expect),
                "node {}: {} vs {}", u, p, expect
            );
        }
        // Reachable set equals BFS reachable set.
        let d = bfs_distances(&g, 0);
        let reachable = d.iter().filter(|&&x| x != UNREACHABLE).count();
        prop_assert_eq!(order.len(), reachable);
    }

    /// PPR estimates: power iteration is a distribution; forward push is a
    /// sub-distribution lower bound within its additive guarantee.
    #[test]
    fn ppr_contracts((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let alpha = 0.25;
        let exact = power_iteration(&g, 0, alpha, 120);
        let sum: f64 = exact.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {}", sum);
        prop_assert!(exact.iter().all(|&x| x >= -1e-12));

        let eps = 1e-4;
        let approx = forward_push_fresh(&g, 0, alpha, eps);
        let asum: f64 = approx.iter().map(|&(_, p)| p).sum();
        prop_assert!(asum <= 1.0 + 1e-9);
        let mut dense = vec![0.0f64; n];
        for &(u, p) in &approx {
            dense[u as usize] = p;
        }
        for u in 0..n {
            let bound = eps * g.weighted_degree(u as NodeId) + 1e-9;
            prop_assert!(
                (dense[u] - exact[u]).abs() <= bound,
                "node {}: {} vs {} (bound {})", u, dense[u], exact[u], bound
            );
        }
    }

    /// Landmark oracle bounds always sandwich the true distance.
    #[test]
    fn landmark_bounds_sandwich((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let oracle = LandmarkOracle::build(&g, 4, LandmarkStrategy::HighestDegree);
        let truth = bfs_distances(&g, 0);
        for v in 0..n as NodeId {
            let t = truth[v as usize];
            if t == UNREACHABLE {
                continue;
            }
            prop_assert!(oracle.lower_bound(0, v) <= t);
            if let Some(ub) = oracle.upper_bound(0, v) {
                prop_assert!(ub >= t, "ub {} < true {} for {}", ub, t, v);
            }
        }
    }
}
