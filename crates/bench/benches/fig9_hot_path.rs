//! Fig 9 kernel: the zero-allocation query hot path under Zipf-skewed
//! seeker traffic.
//!
//! Four σ paths over the same batch, per sparse-support-friendly model:
//!
//! * `dense`      — legacy per-query `O(n)` materialize + full posting scan;
//! * `workspace`  — epoch-stamped `SigmaWorkspace` (sparse support where the
//!   model allows), zero per-query `O(n)` allocations;
//! * `cached`     — workspace plus the sharded seeker-proximity cache shared
//!   across `par_batch` workers;
//! * `client`     — the same cached path through the unified
//!   [`DirectClient`] API (a standing worker pool instead of per-batch
//!   thread spawning).
//!
//! `report --exp fig9` prints the same comparison with throughput numbers
//! and the correctness cross-check.

// The dense/workspace/cached arms ARE the deprecated paths — this kernel
// exists to measure them against the client.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use friends_bench::{zipf_seeker_workload, DenseMaterializeExact};
use friends_core::batch::{par_batch, par_batch_with_cache};
use friends_core::cache::ProximityCache;
use friends_core::corpus::Corpus;
use friends_core::processors::ExactOnline;
use friends_core::proximity::ProximityModel;
use friends_data::datasets::{DatasetSpec, Scale};
use friends_service::{DirectClient, DirectConfig, SearchClient};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(42);
    let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
    let w = zipf_seeker_workload(&corpus, 128, 10, 1.1, 7);
    let threads = 4;
    let mut group = c.benchmark_group("fig9_hot_path");
    group.sample_size(10);

    for model in [
        ProximityModel::FriendsOnly,
        ProximityModel::WeightedDecay { alpha: 0.5 },
        ProximityModel::Ppr {
            alpha: 0.2,
            epsilon: 1e-4,
        },
    ] {
        group.bench_with_input(BenchmarkId::new("dense", model.name()), &w, |b, w| {
            b.iter(|| {
                std::hint::black_box(par_batch(&w.queries, threads, || {
                    DenseMaterializeExact::new(&corpus, model)
                }))
            })
        });
        group.bench_with_input(BenchmarkId::new("workspace", model.name()), &w, |b, w| {
            b.iter(|| {
                std::hint::black_box(par_batch(&w.queries, threads, || {
                    ExactOnline::new(&corpus, model)
                }))
            })
        });
        group.bench_with_input(BenchmarkId::new("cached", model.name()), &w, |b, w| {
            let cache = Arc::new(ProximityCache::new(corpus.num_users() as usize));
            b.iter(|| {
                std::hint::black_box(par_batch_with_cache(
                    &w.queries,
                    threads,
                    &cache,
                    |shared| ExactOnline::with_cache(&corpus, model, shared),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("client", model.name()), &w, |b, w| {
            let client = DirectClient::start(
                Arc::clone(&corpus),
                DirectConfig {
                    threads,
                    cache_capacity: corpus.num_users() as usize,
                    ..DirectConfig::default()
                },
            );
            b.iter(|| std::hint::black_box(client.search(&w.queries, model)))
        });
    }
    group.finish();
}

// Default: plain wall-clock harness. With `--features flamegraph`, the
// same targets run under the pprof profiler hook (see
// `friends_bench::profiled_criterion`).
#[cfg(not(feature = "flamegraph"))]
criterion_group!(benches, bench);
#[cfg(feature = "flamegraph")]
criterion_group! {
    name = benches;
    config = friends_bench::profiled_criterion();
    targets = bench
}
criterion_main!(benches);
