//! Fig 7 kernel: query cost under different tag-popularity skews (Zipf θ).
//! Higher skew concentrates postings in few huge lists, stressing the
//! global index; lower skew spreads the mass thin.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use friends_core::corpus::Corpus;
use friends_core::processors::{ExpansionConfig, FriendExpansion, GlobalProcessor, Processor};
use friends_data::generator::{generate, WorkloadParams};
use friends_data::queries::{QueryParams, QueryWorkload};
use friends_graph::generators::{self, WeightModel};
use friends_index::inverted::IndexConfig;

fn bench(c: &mut Criterion) {
    let users = 500;
    let base = generators::barabasi_albert(users, 5, 42);
    let graph = generators::assign_weights(&base, WeightModel::Jaccard { floor: 0.1 }, 42);
    let mut group = c.benchmark_group("fig7_skew");
    group.sample_size(15);

    for theta in [0.6f64, 1.0, 1.4] {
        let store = generate(
            &graph,
            &WorkloadParams {
                num_items: 10_000,
                num_tags: 128,
                tag_theta: theta,
                ..WorkloadParams::default()
            },
            42,
        );
        let corpus = Corpus::new(graph.clone(), store);
        let w = QueryWorkload::generate(
            &corpus.graph,
            &corpus.store,
            &QueryParams {
                count: 8,
                k: 10,
                ..QueryParams::default()
            },
            7,
        );
        let mut global = GlobalProcessor::new(&corpus, IndexConfig::default());
        group.bench_with_input(
            BenchmarkId::new("global", format!("{theta:.1}")),
            &w,
            |b, w| {
                b.iter(|| {
                    for q in &w.queries {
                        std::hint::black_box(global.query(q));
                    }
                })
            },
        );
        let mut expansion = FriendExpansion::new(
            &corpus,
            ExpansionConfig {
                alpha: 0.5,
                check_interval: 16,
                ..ExpansionConfig::default()
            },
        );
        group.bench_with_input(
            BenchmarkId::new("expansion", format!("{theta:.1}")),
            &w,
            |b, w| {
                b.iter(|| {
                    for q in &w.queries {
                        std::hint::black_box(expansion.query(q));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
