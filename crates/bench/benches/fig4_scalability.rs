//! Fig 4 kernel: how query cost grows with network size, for the exact
//! baseline vs friend expansion (the headline scalability claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use friends_core::corpus::Corpus;
use friends_core::processors::{ExactOnline, ExpansionConfig, FriendExpansion, Processor};
use friends_core::proximity::ProximityModel;
use friends_data::datasets::{DatasetSpec, Scale};
use friends_data::queries::{QueryParams, QueryWorkload};

fn bench(c: &mut Criterion) {
    let alpha = 0.5;
    let mut group = c.benchmark_group("fig4_scalability");
    group.sample_size(15);
    for n in [500usize, 2_000, 8_000] {
        let ds = DatasetSpec::delicious_like(Scale::Custom(n)).build(42);
        let corpus = Corpus::new(ds.graph, ds.store);
        let w = QueryWorkload::generate(
            &corpus.graph,
            &corpus.store,
            &QueryParams {
                count: 5,
                k: 10,
                ..QueryParams::default()
            },
            7,
        );
        let mut exact = ExactOnline::new(&corpus, ProximityModel::WeightedDecay { alpha });
        group.bench_with_input(BenchmarkId::new("exact", n), &w, |b, w| {
            b.iter(|| {
                for q in &w.queries {
                    std::hint::black_box(exact.query(q));
                }
            })
        });
        let mut expansion = FriendExpansion::new(
            &corpus,
            ExpansionConfig {
                alpha,
                check_interval: 16,
                ..ExpansionConfig::default()
            },
        );
        group.bench_with_input(BenchmarkId::new("expansion", n), &w, |b, w| {
            b.iter(|| {
                for q in &w.queries {
                    std::hint::black_box(expansion.query(q));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
