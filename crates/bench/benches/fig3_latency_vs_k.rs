//! Fig 3 kernel: per-processor query latency at several k.
//!
//! The full figure (all k values, larger scale, quality columns) is produced
//! by `report --exp fig3`; this bench gives statistically robust timings for
//! the same hot paths at the CI-friendly scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use friends_core::corpus::Corpus;
use friends_core::processors::{
    ClusterConfig, ClusterIndex, ExactOnline, ExpansionConfig, FriendExpansion, GlobalProcessor,
    Processor,
};
use friends_core::proximity::ProximityModel;
use friends_data::datasets::{DatasetSpec, Scale};
use friends_data::queries::{QueryParams, QueryWorkload};
use friends_index::inverted::IndexConfig;

fn bench(c: &mut Criterion) {
    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(42);
    let corpus = Corpus::new(ds.graph, ds.store);
    let alpha = 0.5;
    let mut group = c.benchmark_group("fig3_latency_vs_k");
    group.sample_size(20);

    for k in [1usize, 10, 50] {
        let w = QueryWorkload::generate(
            &corpus.graph,
            &corpus.store,
            &QueryParams {
                count: 8,
                k,
                ..QueryParams::default()
            },
            7,
        );
        let mut global = GlobalProcessor::new(&corpus, IndexConfig::default());
        group.bench_with_input(BenchmarkId::new("global", k), &w, |b, w| {
            b.iter(|| {
                for q in &w.queries {
                    std::hint::black_box(global.query(q));
                }
            })
        });
        let mut exact = ExactOnline::new(&corpus, ProximityModel::WeightedDecay { alpha });
        group.bench_with_input(BenchmarkId::new("exact", k), &w, |b, w| {
            b.iter(|| {
                for q in &w.queries {
                    std::hint::black_box(exact.query(q));
                }
            })
        });
        let mut expansion = FriendExpansion::new(
            &corpus,
            ExpansionConfig {
                alpha,
                check_interval: 16,
                ..ExpansionConfig::default()
            },
        );
        group.bench_with_input(BenchmarkId::new("expansion", k), &w, |b, w| {
            b.iter(|| {
                for q in &w.queries {
                    std::hint::black_box(expansion.query(q));
                }
            })
        });
        let mut cluster = ClusterIndex::build(
            &corpus,
            ClusterConfig {
                alpha,
                ..ClusterConfig::default()
            },
        );
        group.bench_with_input(BenchmarkId::new("cluster", k), &w, |b, w| {
            b.iter(|| {
                for q in &w.queries {
                    std::hint::black_box(cluster.query(q));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
