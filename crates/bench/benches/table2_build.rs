//! Table 2 kernel: index construction cost — the global inverted index vs
//! the cluster sketch (partition + landmark oracle + per-cluster masses).

use criterion::{criterion_group, criterion_main, Criterion};
use friends_core::corpus::Corpus;
use friends_core::processors::{ClusterConfig, ClusterIndex, GlobalProcessor};
use friends_data::datasets::{DatasetSpec, Scale};
use friends_graph::landmarks::{LandmarkOracle, LandmarkStrategy};
use friends_index::inverted::IndexConfig;

fn bench(c: &mut Criterion) {
    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(42);
    let corpus = Corpus::new(ds.graph, ds.store);
    let mut group = c.benchmark_group("table2_build");
    group.sample_size(10);

    group.bench_function("global_index", |b| {
        b.iter(|| std::hint::black_box(GlobalProcessor::new(&corpus, IndexConfig::default())))
    });
    group.bench_function("cluster_index", |b| {
        b.iter(|| std::hint::black_box(ClusterIndex::build(&corpus, ClusterConfig::default())))
    });
    group.bench_function("landmark_oracle_16", |b| {
        b.iter(|| {
            std::hint::black_box(LandmarkOracle::build(
                &corpus.graph,
                16,
                LandmarkStrategy::HighestDegree,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
