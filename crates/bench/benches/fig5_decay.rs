//! Fig 5 kernel: expansion cost as a function of the proximity decay α —
//! small α means tight locality and early termination, large α forces the
//! traversal to reach far into the network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use friends_core::corpus::Corpus;
use friends_core::processors::{ExpansionConfig, FriendExpansion, Processor};
use friends_data::datasets::{DatasetSpec, Scale};
use friends_data::queries::{QueryParams, QueryWorkload};

fn bench(c: &mut Criterion) {
    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(42);
    let corpus = Corpus::new(ds.graph, ds.store);
    let w = QueryWorkload::generate(
        &corpus.graph,
        &corpus.store,
        &QueryParams {
            count: 8,
            k: 10,
            ..QueryParams::default()
        },
        7,
    );
    let mut group = c.benchmark_group("fig5_decay");
    group.sample_size(20);
    for alpha in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
        let mut expansion = FriendExpansion::new(
            &corpus,
            ExpansionConfig {
                alpha,
                check_interval: 16,
                ..ExpansionConfig::default()
            },
        );
        group.bench_with_input(
            BenchmarkId::new("expansion", format!("{alpha:.1}")),
            &w,
            |b, w| {
                b.iter(|| {
                    for q in &w.queries {
                        std::hint::black_box(expansion.query(q));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
