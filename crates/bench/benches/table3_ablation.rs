//! Table 3 kernel: micro-ablations of the IR substrate — posting-list
//! encoding, skip pointers, and the WAND vs exhaustive evaluation gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use friends_index::accumulate::daat_topk;
use friends_index::postings::{Encoding, PostingConfig, PostingList};
use friends_index::topk::wand_topk;
use rand::prelude::*;
use rand::rngs::StdRng;

fn make_list(n: u32, stride: u32, cfg: PostingConfig, seed: u64) -> PostingList {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut entries = Vec::with_capacity(n as usize);
    for i in 0..n {
        entries.push((
            i * stride + rng.gen_range(0..stride.max(1)),
            rng.gen_range(0.01f32..2.0),
        ));
    }
    PostingList::build(entries, cfg)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_ablation");
    group.sample_size(30);

    // (a) decode + advance cost across encodings and skip settings.
    for (name, cfg) in [
        (
            "varint_skips",
            PostingConfig {
                encoding: Encoding::DeltaVarint,
                block_len: 128,
                skips_enabled: true,
            },
        ),
        (
            "raw_skips",
            PostingConfig {
                encoding: Encoding::Raw,
                block_len: 128,
                skips_enabled: true,
            },
        ),
        (
            "varint_noskips",
            PostingConfig {
                encoding: Encoding::DeltaVarint,
                block_len: 128,
                skips_enabled: false,
            },
        ),
    ] {
        let list = make_list(50_000, 7, cfg, 1);
        group.bench_with_input(BenchmarkId::new("advance_sparse", name), &list, |b, l| {
            // Seek through the list with large strides — the skip-pointer
            // fast path.
            b.iter(|| {
                let mut cur = l.cursor();
                let mut target = 0u32;
                while !cur.is_exhausted() {
                    cur.advance(target);
                    target += 10_000;
                    if let Some(d) = cur.doc() {
                        std::hint::black_box(d);
                        if target <= d {
                            target = d + 10_000;
                        }
                    }
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("full_scan", name), &list, |b, l| {
            b.iter(|| {
                let mut cur = l.cursor();
                let mut acc = 0.0f32;
                while let Some(_d) = cur.doc() {
                    acc += cur.score();
                    cur.next();
                }
                std::hint::black_box(acc)
            })
        });
    }

    // (b) WAND vs exhaustive DAAT on a 3-list conjunction-free query.
    let cfg = PostingConfig::default();
    let lists: Vec<PostingList> = (0..3).map(|i| make_list(20_000, 5, cfg, i)).collect();
    let refs: Vec<&PostingList> = lists.iter().collect();
    for k in [10usize, 100] {
        group.bench_with_input(BenchmarkId::new("wand", k), &refs, |b, r| {
            b.iter(|| std::hint::black_box(wand_topk(r, k)))
        });
        group.bench_with_input(BenchmarkId::new("daat_exhaustive", k), &refs, |b, r| {
            b.iter(|| std::hint::black_box(daat_topk(r, k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
