//! Fig 6 kernel: cost of the proximity estimators behind the accuracy
//! trade-off — PPR forward push across ε, power iteration, and the BFS
//! materialization, on the same graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use friends_data::datasets::{DatasetSpec, Scale};
use friends_graph::ppr::{forward_push, power_iteration, PushWorkspace};
use friends_graph::traversal::bfs_distances;

fn bench(c: &mut Criterion) {
    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(42);
    let g = ds.graph;
    let mut group = c.benchmark_group("fig6_accuracy");
    group.sample_size(30);

    for eps in [1e-3f64, 1e-4, 1e-5, 1e-6] {
        let mut ws = PushWorkspace::new(g.num_nodes());
        group.bench_with_input(
            BenchmarkId::new("forward_push", format!("{eps:.0e}")),
            &eps,
            |b, &eps| b.iter(|| std::hint::black_box(forward_push(&g, 7, 0.2, eps, &mut ws))),
        );
    }
    group.bench_function("power_iteration_50", |b| {
        b.iter(|| std::hint::black_box(power_iteration(&g, 7, 0.2, 50)))
    });
    group.bench_function("bfs_materialize", |b| {
        b.iter(|| std::hint::black_box(bfs_distances(&g, 7)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
