//! Fig 13 kernel: the per-query cost of each degradation level — the
//! capacity lever the overload controller pulls.
//!
//! `report --exp fig13` runs the real open-loop experiment (offered load at
//! 1.5× measured capacity, exact vs degraded serving); criterion cannot
//! time an open-loop schedule, whose elapsed time is fixed by the arrival
//! process, so this kernel measures the thing that makes degradation work:
//! serving the same request stream under [`Planner::degraded_bounds`]
//! levels 0 (exact), 1 and 2. The ignored `fig13_overload_gate` test pins
//! the end-to-end claim — degraded serving holds p99 inside the deadline
//! and completes at least twice what exact serving manages under identical
//! overload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use friends_bench::overload_corpus;
use friends_core::plan::{Planner, QueryRequest};
use friends_core::proximity::ProximityModel;
use friends_data::requests::{RequestParams, RequestStream};
use friends_service::{SearchClient, ServedClient, ServiceConfig};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let corpus = Arc::new(overload_corpus(2_000, 42));
    let model = ProximityModel::WeightedDecay { alpha: 0.5 };
    let stream = RequestStream::generate(
        &corpus.graph,
        &corpus.store,
        &RequestParams {
            count: 64,
            seeker_theta: 1.1,
            ..RequestParams::default()
        },
        7,
    );
    let queries = stream.queries();

    let mut group = c.benchmark_group("fig13_overload");
    group.sample_size(10);

    for level in [0u8, 1, 2] {
        let bounds = Planner::degraded_bounds(level);
        group.bench_with_input(BenchmarkId::new("level", level), &queries, |b, q| {
            let client = ServedClient::start(
                Arc::clone(&corpus),
                ServiceConfig {
                    shards: 2,
                    coalesce: false,
                    ..ServiceConfig::default()
                },
            );
            b.iter(|| {
                let requests: Vec<_> = q
                    .iter()
                    .map(|query| {
                        QueryRequest::from_query(query.clone())
                            .with_model(model)
                            .with_bounds(bounds)
                    })
                    .collect();
                std::hint::black_box(client.run_batch(requests))
            })
        });
    }
    group.finish();
}

// Default: plain wall-clock harness. With `--features flamegraph`, the
// same targets run under the pprof profiler hook (see
// `friends_bench::profiled_criterion`).
#[cfg(not(feature = "flamegraph"))]
criterion_group!(benches, bench);
#[cfg(feature = "flamegraph")]
criterion_group! {
    name = benches;
    config = friends_bench::profiled_criterion();
    targets = bench
}
criterion_main!(benches);
