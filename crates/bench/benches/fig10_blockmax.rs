//! Fig 10 kernel: the three exact scoring strategies over σ-weighted
//! postings, at controlled tag selectivity.
//!
//! * `scan`     — full posting scan, `O(1)` σ lookups per posting;
//! * `support`  — probe only the seeker's σ-support postings (sparse
//!   models);
//! * `blockmax` — block-max σ-aware WAND over the σ-aware posting index,
//!   skipping whole blocks whose `sigma_base · σ-range-max` cannot reach
//!   the running k-th threshold.
//!
//! `report --exp fig10` prints the same comparison with the correctness
//! cross-check; `fig10_blockmax_gate` (ignored test in the bench lib) pins
//! the low-selectivity speedup at serving scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use friends_bench::selectivity_workload;
use friends_core::corpus::Corpus;
use friends_core::processors::{ExactOnline, Processor, ScoringStrategy};
use friends_core::proximity::ProximityModel;
use friends_data::datasets::{DatasetSpec, Scale};

fn bench(c: &mut Criterion) {
    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(42);
    let corpus = Corpus::new(ds.graph, ds.store);
    corpus.sigma_index(); // shared build, outside the timed region
    let w = selectivity_workload(&corpus, 64, 10, true, 21);
    let mut group = c.benchmark_group("fig10_blockmax");
    group.sample_size(10);

    for model in [
        ProximityModel::FriendsOnly,
        ProximityModel::DistanceDecay { alpha: 0.3 },
        ProximityModel::WeightedDecay { alpha: 0.5 },
        ProximityModel::AdamicAdar,
    ] {
        for (sname, strategy) in [
            ("scan", ScoringStrategy::PostingScan),
            ("support", ScoringStrategy::SupportProbe),
            ("blockmax", ScoringStrategy::BlockMax),
        ] {
            if sname == "support" && !model.has_sparse_support() {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(sname, model.name()), &w, |b, w| {
                let mut p = ExactOnline::with_strategy(&corpus, model, strategy);
                b.iter(|| {
                    for q in &w.queries {
                        std::hint::black_box(p.query(q));
                    }
                })
            });
        }
    }
    group.finish();
}

// Default: plain wall-clock harness. With `--features flamegraph`, the
// same targets run under the pprof profiler hook (see
// `friends_bench::profiled_criterion`).
#[cfg(not(feature = "flamegraph"))]
criterion_group!(benches, bench);
#[cfg(feature = "flamegraph")]
criterion_group! {
    name = benches;
    config = friends_bench::profiled_criterion();
    targets = bench
}
criterion_main!(benches);
