//! Fig 12 kernel: cold-seeker σ materialization on a seeker-diverse stream.
//!
//! Every seeker in the workload is distinct, so neither the proximity cache
//! nor result memoization ever hits — each query pays the full miss path.
//! Two miss paths over the same batch, per decay model:
//!
//! * `dense-snap` — the pre-PR floor: workspace materialization, then an
//!   `O(n)` dense snapshot published into the shared cache per cold seeker;
//! * `touched`    — the reach-proportional path: the same traversal, a
//!   `Touched` snapshot built from the stamped touched-list in `O(reach)`.
//!
//! `report --exp fig12` prints the same comparison with snapshot-bytes and
//! touched-fraction columns plus the correctness cross-check; the ignored
//! `fig12_sigma_floor` test pins the ≥ 1.5× ratio at serving scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use friends_bench::{archipelago_corpus, distinct_seeker_workload, DenseSnapshotExact};
use friends_core::cache::{CachePolicy, ProximityCache};
use friends_core::processors::{ExactOnline, Processor};
use friends_core::proximity::ProximityModel;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let corpus = archipelago_corpus(2_000, 64, 42);
    corpus.sigma_index();
    let w = distinct_seeker_workload(&corpus, 256, 10, 7);
    let budget = 16usize << 20;
    let mut group = c.benchmark_group("fig12_sigma_floor");
    group.sample_size(10);

    for model in [
        ProximityModel::DistanceDecay { alpha: 0.3 },
        ProximityModel::WeightedDecay { alpha: 0.5 },
    ] {
        group.bench_with_input(BenchmarkId::new("dense-snap", model.name()), &w, |b, w| {
            let cache = Arc::new(ProximityCache::with_byte_budget(
                budget,
                16,
                CachePolicy::default(),
            ));
            let mut p = DenseSnapshotExact::new(&corpus, model, cache);
            b.iter(|| {
                for q in &w.queries {
                    std::hint::black_box(p.query(q));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("touched", model.name()), &w, |b, w| {
            let cache = Arc::new(ProximityCache::with_byte_budget(
                budget,
                16,
                CachePolicy::default(),
            ));
            let mut p = ExactOnline::with_cache(&corpus, model, cache);
            b.iter(|| {
                for q in &w.queries {
                    std::hint::black_box(p.query(q));
                }
            })
        });
    }
    group.finish();
}

// Default: plain wall-clock harness. With `--features flamegraph`, the
// same targets run under the pprof profiler hook (see
// `friends_bench::profiled_criterion`).
#[cfg(not(feature = "flamegraph"))]
criterion_group!(benches, bench);
#[cfg(feature = "flamegraph")]
criterion_group! {
    name = benches;
    config = friends_bench::profiled_criterion();
    targets = bench
}
criterion_main!(benches);
