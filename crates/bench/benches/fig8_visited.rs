//! Fig 8 kernel: expansion latency as k grows — the termination bound takes
//! longer to fire for deeper result lists.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use friends_core::corpus::Corpus;
use friends_core::processors::{ExpansionConfig, FriendExpansion, Processor};
use friends_data::datasets::{DatasetSpec, Scale};
use friends_data::queries::{QueryParams, QueryWorkload};

fn bench(c: &mut Criterion) {
    let ds = DatasetSpec::flickr_like(Scale::Tiny).build(42);
    let corpus = Corpus::new(ds.graph, ds.store);
    let mut group = c.benchmark_group("fig8_visited");
    group.sample_size(20);
    for k in [1usize, 5, 10, 20, 50, 100] {
        let w = QueryWorkload::generate(
            &corpus.graph,
            &corpus.store,
            &QueryParams {
                count: 8,
                k,
                ..QueryParams::default()
            },
            7,
        );
        let mut expansion = FriendExpansion::new(
            &corpus,
            ExpansionConfig {
                alpha: 0.3,
                check_interval: 8,
                ..ExpansionConfig::default()
            },
        );
        group.bench_with_input(BenchmarkId::new("expansion", k), &w, |b, w| {
            b.iter(|| {
                for q in &w.queries {
                    std::hint::black_box(expansion.query(q));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
