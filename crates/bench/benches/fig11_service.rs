//! Fig 11 kernel: the serving tier under a Zipf repeat-query request
//! stream.
//!
//! Three ways to answer the same stream, per model:
//!
//! * `batch`   — the pre-PR path: `par_batch_with_cache`, a flat chunk
//!   split over one shared sharded cache (deprecated, kept as baseline);
//! * `service` — a transient planner-backed `ServedClient`:
//!   seeker-affinity shard routing, batched dispatch with
//!   duplicate-request coalescing, private admission-controlled caches;
//! * `service_memo` — the same with the cross-request result cache, so
//!   repeats in *later* iterations of the measurement loop skip execution.
//!
//! `report --exp fig11` prints the same comparison with throughput numbers,
//! service stats and the correctness cross-check; the ignored
//! `fig11_service_gate` test pins the serving-scale speedup through the
//! client API.

// The `batch` arm IS the deprecated path — this kernel measures it.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use friends_bench::serving_corpus;
use friends_core::batch::par_batch_with_cache;
use friends_core::cache::ProximityCache;
use friends_core::processors::ExactOnline;
use friends_core::proximity::ProximityModel;
use friends_data::requests::{RequestParams, RequestStream};
use friends_service::{SearchClient, ServedClient, ServiceConfig};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let corpus = Arc::new(serving_corpus(1_000, 42));
    corpus.sigma_index();
    let stream = RequestStream::generate(
        &corpus.graph,
        &corpus.store,
        &RequestParams {
            count: 128,
            seeker_theta: 1.1,
            ..RequestParams::default()
        },
        7,
    );
    let queries = stream.queries();
    let shards = 4;
    let mut group = c.benchmark_group("fig11_service");
    group.sample_size(10);

    for model in [
        ProximityModel::DistanceDecay { alpha: 0.3 },
        ProximityModel::Ppr {
            alpha: 0.2,
            epsilon: 1e-4,
        },
    ] {
        group.bench_with_input(BenchmarkId::new("batch", model.name()), &queries, |b, q| {
            let cache = Arc::new(ProximityCache::new(corpus.num_users() as usize));
            b.iter(|| {
                std::hint::black_box(par_batch_with_cache(q, shards, &cache, |shared| {
                    ExactOnline::with_cache(&corpus, model, shared)
                }))
            })
        });
        for (label, result_cache) in [("service", 0usize), ("service_memo", 4096)] {
            group.bench_with_input(BenchmarkId::new(label, model.name()), &queries, |b, q| {
                let client = ServedClient::start(
                    Arc::clone(&corpus),
                    ServiceConfig {
                        shards,
                        result_cache_capacity: result_cache,
                        ..ServiceConfig::default()
                    },
                );
                b.iter(|| std::hint::black_box(client.search(q, model)))
            });
        }
    }
    group.finish();
}

// Default: plain wall-clock harness. With `--features flamegraph`, the
// same targets run under the pprof profiler hook (see
// `friends_bench::profiled_criterion`).
#[cfg(not(feature = "flamegraph"))]
criterion_group!(benches, bench);
#[cfg(feature = "flamegraph")]
criterion_group! {
    name = benches;
    config = friends_bench::profiled_criterion();
    targets = bench
}
criterion_main!(benches);
