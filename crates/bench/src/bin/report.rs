//! Regenerates the evaluation tables and figures.
//!
//! ```sh
//! cargo run --release -p friends-bench --bin report -- --exp all
//! cargo run --release -p friends-bench --bin report -- --exp fig3 --profile full
//! cargo run --release -p friends-bench --bin report -- --exp all --json target/report.json
//! ```
//!
//! `--json <path>` additionally writes a machine-readable summary (one entry
//! per experiment with its wall-clock time), giving future PRs a perf
//! trajectory to diff against.

use friends_bench::experiments::{self, Profile};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: report [--exp <name>|all] [--profile quick|full] [--json <path>]\n\
         \x20      report --explain <query-spec>\n\
         experiments: {}\n\
         query-spec: seeker=<id>,tags=<id>+<id>,k=<n>,model=<name> (all optional)",
        experiments::ALL.join(", ")
    );
    std::process::exit(2);
}

/// Minimal JSON string escaping (the report emits only names and numbers,
/// but be safe about it).
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = "all".to_owned();
    let mut profile = Profile::Full;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                exp = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--profile" => {
                i += 1;
                profile = match args.get(i).map(String::as_str) {
                    Some("quick") => Profile::Quick,
                    Some("full") => Profile::Full,
                    _ => usage(),
                };
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--explain" => {
                // EXPLAIN mode: run one force-traced query, print its span
                // tree, and exit — no experiments, no JSON summary.
                i += 1;
                let spec = args.get(i).cloned().unwrap_or_else(|| usage());
                match friends_bench::explain::explain(&spec) {
                    Ok(tree) => {
                        println!("{tree}");
                        return;
                    }
                    Err(e) => {
                        eprintln!("bad query-spec `{spec}`: {e}");
                        usage();
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }

    let names: Vec<&str> = if exp == "all" {
        experiments::ALL.to_vec()
    } else {
        vec![exp.as_str()]
    };
    // (name, elapsed ms, output bytes, metrics as (key, raw-JSON) pairs).
    type SummaryRow = (String, f64, usize, Vec<(String, String)>);
    let mut summary: Vec<SummaryRow> = Vec::new();
    for name in names {
        let start = Instant::now();
        match experiments::run_full(name, profile) {
            Some(out) => {
                let elapsed = start.elapsed();
                println!("{}", out.text);
                summary.push((
                    name.to_owned(),
                    elapsed.as_secs_f64() * 1e3,
                    out.text.len(),
                    out.metrics,
                ));
            }
            None => {
                eprintln!("unknown experiment `{name}`");
                usage();
            }
        }
    }

    if let Some(path) = json_path {
        let profile_name = match profile {
            Profile::Quick => "quick",
            Profile::Full => "full",
        };
        let entries: Vec<String> = summary
            .iter()
            .map(|(name, ms, bytes, metrics)| {
                let metrics_json = if metrics.is_empty() {
                    String::new()
                } else {
                    let kv: Vec<String> = metrics
                        .iter()
                        .map(|(k, v)| format!("\"{}\": {}", json_escape(k), v))
                        .collect();
                    format!(", \"metrics\": {{{}}}", kv.join(", "))
                };
                format!(
                    "  {{\"experiment\": \"{}\", \"elapsed_ms\": {:.3}, \"output_bytes\": {}{}}}",
                    json_escape(name),
                    ms,
                    bytes,
                    metrics_json
                )
            })
            .collect();
        // Standing perf notes future PRs should read alongside the numbers.
        let notes = [
            "cache policy: global and friends-only bypass the ProximityCache \
             (cache_worthy=false) - a shard-mutex hit costs about what their \
             materialization does, so their fig9 'cached' column equals the \
             workspace path by design",
            "fig10: block-max sigma-aware WAND vs posting scan / support \
             probe, driven through a single-threaded DirectClient with \
             forced strategy hints; the ignored fig10_blockmax_gate test \
             pins the low-selectivity speedup at serving scale",
            "fig11: ServedClient (planner-backed seeker-affinity shards + \
             request coalescing + TinyLFU-admission shard caches + result \
             memoization) vs the deprecated flat par_batch_with_cache \
             split; the ignored fig11_service_gate test pins the >=1.3x \
             serving-scale win with zero deadline misses through the \
             client API",
            "per-experiment 'metrics' objects carry result-cache counters \
             and planner strategy-choice histograms where the experiment \
             runs through a SearchClient (fig9, fig10, fig11)",
            "latency truth: every client-driven experiment (fig9-fig14) \
             exports 'latency_*' metrics - per stage (queue_wait, sigma, \
             scoring, e2e) a {count, p50_us, p99_us, p999_us, max_us, \
             mean_us} object from the lock-free log-bucketed \
             LatencyRecorder (quantiles are nearest-rank bucket upper \
             bounds capped at the observed max, <=1/16 relative error); \
             queue_wait/e2e count requests while sigma/scoring count \
             executions, so coalescing and memoization show up as the \
             gap between the two counts",
            "fig12: the sigma-materialization floor on a seeker-diverse \
             (cold, memoization-free) stream - dense O(n) snapshots vs \
             reach-proportional Touched snapshots under one byte-budgeted \
             cache; per-model snapshot_bytes and touched_fraction ride in \
             the metrics object, and the ignored fig12_sigma_floor test \
             pins the >=1.5x cold-seeker win for the decay models at 10k \
             users with byte-identical rankings",
            "cache counters now include resident 'bytes' (value bytes + \
             per-entry overhead) - the quantity byte-budgeted caches \
             (ProximityCache::with_byte_budget, ServiceConfig::cache_bytes) \
             enforce",
            "metrics_* keys (fig9-fig14 and the service probe) are the \
             unified MetricsRegistry rendered as a flat JSON object: \
             'friends_<subsystem>_<name>' keys per the naming convention \
             in crates/README.md (units as suffixes: _total counters, \
             _us latencies, _bytes sizes; variants as {label=value} key \
             suffixes). The CI tail-latency gates jq these keys - e.g. \
             .metrics.metrics_degraded.friends_stage_queue_wait_p99_us - \
             so renames are schema breaks",
            "tracing: per-request span trees (queue -> plan -> sigma -> \
             scoring -> reply) are head-sampled about 1/64 into per-shard \
             rings, force-retained for slow or deadline-missed requests \
             (slow-query log, SearchClient::slow_queries()), forced per \
             request via with_trace(); 'report --explain <query-spec>' \
             renders one. trace_* JSON keys are reserved for trace \
             exports; none ship in this summary yet",
        ];
        let notes_json: Vec<String> = notes
            .iter()
            .map(|n| format!("  \"{}\"", json_escape(n)))
            .collect();
        // The serving tier's counters over a FIXED synthetic probe
        // workload (Tiny corpus, 300 requests twice through a
        // planner-backed ServedClient, 16-entry caches) — a behavioral
        // fingerprint of the admission/TTL/LRU policy, the result
        // memoization and the planner, deliberately independent of
        // whichever experiments ran above so it is diffable across PRs.
        // Not a measurement of this run's experiments.
        let probe = friends_bench::service_probe();
        // Reporting reads the registry, not the stats struct's fields —
        // the same stable keys the Prometheus exposition serves.
        let mut registry = friends_core::metrics::MetricsRegistry::new();
        probe.register_into(&mut registry);
        let count = |key: &str| {
            registry
                .get(&format!("friends_service_{key}_total"))
                .unwrap_or(0.0) as u64
        };
        let probe_json = format!(
            "{{\"workload\": \"fixed synthetic probe (not this run's experiments)\", \
             \"proximity_cache\": {}, \"result_cache\": {}, \"result_served\": {}, \
             \"executed\": {}, \"coalesced\": {}, \"plans\": {}, \"metrics\": {}}}",
            experiments::cache_stats_json(&probe.cache),
            experiments::cache_stats_json(&probe.results),
            count("result_served"),
            count("executed"),
            count("coalesced"),
            experiments::plan_histogram_json(&probe.plans),
            registry.render_json()
        );
        let doc = format!(
            "{{\n\"profile\": \"{profile_name}\",\n\"experiments\": [\n{}\n],\n\
             \"service_probe\": {probe_json},\n\"notes\": [\n{}\n]\n}}\n",
            entries.join(",\n"),
            notes_json.join(",\n")
        );
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote bench summary to {path}");
    }
}
