//! Regenerates the evaluation tables and figures.
//!
//! ```sh
//! cargo run --release -p friends-bench --bin report -- --exp all
//! cargo run --release -p friends-bench --bin report -- --exp fig3 --profile full
//! ```

use friends_bench::experiments::{self, Profile};

fn usage() -> ! {
    eprintln!(
        "usage: report [--exp <name>|all] [--profile quick|full]\n\
         experiments: {}",
        experiments::ALL.join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = "all".to_owned();
    let mut profile = Profile::Full;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                exp = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--profile" => {
                i += 1;
                profile = match args.get(i).map(String::as_str) {
                    Some("quick") => Profile::Quick,
                    Some("full") => Profile::Full,
                    _ => usage(),
                };
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }

    let names: Vec<&str> = if exp == "all" {
        experiments::ALL.to_vec()
    } else {
        vec![exp.as_str()]
    };
    for name in names {
        match experiments::run(name, profile) {
            Some(out) => println!("{out}"),
            None => {
                eprintln!("unknown experiment `{name}`");
                usage();
            }
        }
    }
}
