//! `report --explain`: run one query through a transient planner-backed
//! service with a force-sampled trace and render its span tree.
//!
//! The query-spec is a comma-separated `key=value` list:
//!
//! ```text
//! seeker=3,tags=1+4,k=10,model=weighted-decay
//! ```
//!
//! Every key is optional (`seeker=0,tags=0,k=10,model=global` is the
//! default); `tags` joins multiple tag ids with `+`. The corpus is the
//! fixed Tiny probe corpus (`DatasetSpec::delicious_like(Scale::Tiny)`,
//! seed 42 — the same one `service_probe` drives), so the output is
//! reproducible run-to-run and diffable across PRs.

use friends_core::corpus::Corpus;
use friends_core::plan::QueryRequest;
use friends_core::proximity::ProximityModel;
use friends_data::datasets::{DatasetSpec, Scale};
use friends_data::queries::Query;
use friends_service::{SearchClient, ServedClient, ServiceConfig};
use std::sync::Arc;

/// Parses one `key=value` query-spec (see the module docs). Returns a
/// human-readable error for malformed specs instead of panicking — the
/// report binary surfaces it next to its usage line.
pub fn parse_spec(spec: &str) -> Result<(Query, ProximityModel), String> {
    let mut query = Query {
        seeker: 0,
        tags: vec![0],
        k: 10,
    };
    let mut model = ProximityModel::Global;
    for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("`{pair}` is not key=value"))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "seeker" => {
                query.seeker = value
                    .parse()
                    .map_err(|_| format!("seeker `{value}` is not a node id"))?;
            }
            "tags" => {
                query.tags = value
                    .split('+')
                    .map(|t| {
                        t.trim()
                            .parse()
                            .map_err(|_| format!("tag `{t}` is not a tag id"))
                    })
                    .collect::<Result<_, _>>()?;
                if query.tags.is_empty() {
                    return Err("tags must name at least one tag id".into());
                }
            }
            "k" => {
                query.k = value
                    .parse()
                    .map_err(|_| format!("k `{value}` is not a count"))?;
            }
            "model" => {
                model = match value {
                    "global" => ProximityModel::Global,
                    "friends-only" => ProximityModel::FriendsOnly,
                    "distance-decay" => ProximityModel::DistanceDecay { alpha: 0.3 },
                    "weighted-decay" => ProximityModel::WeightedDecay { alpha: 0.5 },
                    "ppr" => ProximityModel::Ppr {
                        alpha: 0.2,
                        epsilon: 1e-4,
                    },
                    "adamic-adar" => ProximityModel::AdamicAdar,
                    other => {
                        return Err(format!(
                            "unknown model `{other}` (global, friends-only, \
                             distance-decay, weighted-decay, ppr, adamic-adar)"
                        ))
                    }
                };
            }
            other => return Err(format!("unknown key `{other}` (seeker, tags, k, model)")),
        }
    }
    Ok((query, model))
}

/// Runs the spec'd query through a fresh two-shard planner-backed service
/// with `with_trace()` and returns the rendered span tree (the `EXPLAIN`
/// output). The forced trace always comes back on the reply, so the
/// `expect` is unreachable short of a broken trace pipeline.
pub fn explain(spec: &str) -> Result<String, String> {
    let (query, model) = parse_spec(spec)?;
    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(42);
    let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
    let n = corpus.num_users();
    if query.seeker >= n {
        return Err(format!(
            "seeker {} is outside the Tiny probe corpus ({n} users)",
            query.seeker
        ));
    }
    let client = ServedClient::start(
        Arc::clone(&corpus),
        ServiceConfig {
            shards: 2,
            ..ServiceConfig::default()
        },
    );
    let reply = client
        .submit(
            QueryRequest::from_query(query)
                .with_model(model)
                .with_trace(),
        )
        .wait();
    let rendered = reply
        .explain()
        .expect("forced trace must ride back on the reply");
    client.shutdown();
    Ok(rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_round_trips_and_rejects_garbage() {
        let (q, m) = parse_spec("seeker=3,tags=1+4,k=7,model=weighted-decay").unwrap();
        assert_eq!((q.seeker, q.k), (3, 7));
        assert_eq!(q.tags, vec![1, 4]);
        assert_eq!(m.name(), "weighted-decay");
        // Defaults: the empty spec is valid.
        let (q, m) = parse_spec("").unwrap();
        assert_eq!((q.seeker, q.k), (0, 10));
        assert_eq!(m.name(), "global");
        assert!(parse_spec("seeker").is_err());
        assert!(parse_spec("seeker=x").is_err());
        assert!(parse_spec("model=nope").is_err());
        assert!(parse_spec("banana=7").is_err());
    }

    #[test]
    fn explain_renders_the_full_span_tree() {
        let out = explain("seeker=1,tags=0,k=5,model=ppr").unwrap();
        for span in ["queue", "plan", "sigma", "scoring", "reply"] {
            assert!(out.contains(span), "span `{span}` missing:\n{out}");
        }
        assert!(out.contains("[forced]"), "forced flag missing:\n{out}");
        assert!(out.contains("planned"), "planner event missing:\n{out}");
    }

    #[test]
    fn out_of_range_seeker_is_a_spec_error_not_a_panic() {
        assert!(explain("seeker=999999").is_err());
    }
}
