//! Shared harness utilities for the benchmark suite and the `report` binary
//! that regenerates every table and figure of the evaluation (see
//! `EXPERIMENTS.md` for the experiment ↔ code index).

pub mod experiments;

use std::time::{Duration, Instant};

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Mean of durations in microseconds (0.0 for empty input).
pub fn mean_us(ds: &[Duration]) -> f64 {
    if ds.is_empty() {
        return 0.0;
    }
    ds.iter().map(|d| d.as_secs_f64() * 1e6).sum::<f64>() / ds.len() as f64
}

/// Percentile (0.0–1.0) of durations in microseconds.
pub fn percentile_us(ds: &[Duration], q: f64) -> f64 {
    if ds.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = ds.iter().map(|d| d.as_secs_f64() * 1e6).collect();
    v.sort_unstable_by(|a, b| a.total_cmp(b));
    v[((q * (v.len() - 1) as f64).round() as usize).min(v.len() - 1)]
}

/// A plain-text aligned table, the output format of every experiment.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncol {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a byte count human-readably.
pub fn fmt_bytes(b: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut x = b as f64;
    let mut u = 0;
    while x >= 1024.0 && u < UNITS.len() - 1 {
        x /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{x:.1} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_and_stats() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        let ds = vec![d, d, d];
        assert!(mean_us(&ds) >= 0.0);
        assert!(percentile_us(&ds, 0.5) >= 0.0);
        assert_eq!(mean_us(&[]), 0.0);
        assert_eq!(percentile_us(&[], 0.9), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["beta-long".into(), "23456".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("23456"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert!(fmt_bytes(3 * 1024 * 1024).contains("MiB"));
    }
}
