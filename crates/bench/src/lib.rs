//! Shared harness utilities for the benchmark suite and the `report` binary
//! that regenerates every table and figure of the evaluation (see
//! `EXPERIMENTS.md` for the experiment ↔ code index).

pub mod experiments;
pub mod explain;

use friends_core::cache::ProximityCache;
use friends_core::corpus::{Corpus, QueryStats, SearchResult};
use friends_core::processors::Processor;
use friends_core::proximity::{ProximityModel, Sigma, SigmaWorkspace};
use friends_data::queries::{Query, QueryWorkload};
use friends_data::zipf::Zipf;
use friends_index::accumulate::DenseAccumulator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A Zipf-skewed query workload: seekers drawn Zipf(θ) over the user
/// universe (rank = user id) and 1–3 tags drawn Zipf(1.0) over the tag
/// universe — the shape of real serving traffic, where a small set of heavy
/// seekers dominates. This is the regime the seeker-proximity cache and the
/// `fig9_hot_path` comparison target.
pub fn zipf_seeker_workload(
    corpus: &Corpus,
    count: usize,
    k: usize,
    theta: f64,
    seed: u64,
) -> QueryWorkload {
    let users = corpus.num_users() as usize;
    let tags = corpus.store.num_tags() as usize;
    assert!(users > 0 && tags > 0, "need a non-empty corpus");
    let seeker_z = Zipf::new(users, theta);
    let tag_z = Zipf::new(tags, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(count);
    for _ in 0..count {
        let seeker = seeker_z.sample(&mut rng) as u32;
        let want = 1 + (seeker as usize % 3).min(tags - 1);
        let mut qtags: Vec<u32> = (0..want.max(1))
            .map(|_| tag_z.sample(&mut rng) as u32)
            .collect();
        qtags.sort_unstable();
        qtags.dedup();
        queries.push(Query {
            seeker,
            tags: qtags,
            k,
        });
    }
    QueryWorkload { queries }
}

/// A tag-selectivity-controlled workload for the strategy comparison
/// (fig10): every query draws 1–2 tags from either the **head** (most
/// heavily used tags — long posting lists, the low-selectivity regime where
/// block-max pruning matters) or the **tail** (rarely used tags) of the
/// corpus's tag-popularity ranking, with uniformly random seekers.
pub fn selectivity_workload(
    corpus: &Corpus,
    count: usize,
    k: usize,
    head: bool,
    seed: u64,
) -> QueryWorkload {
    let mut by_len: Vec<u32> = (0..corpus.store.num_tags())
        .filter(|&t| !corpus.store.tag_taggings(t).is_empty())
        .collect();
    assert!(
        !by_len.is_empty() && corpus.num_users() > 0,
        "need a non-empty corpus"
    );
    by_len.sort_unstable_by_key(|&t| std::cmp::Reverse(corpus.store.tag_taggings(t).len()));
    let pool: Vec<u32> = if head {
        by_len
            .iter()
            .copied()
            .take((by_len.len() / 8).max(2))
            .collect()
    } else {
        let skip = by_len.len() / 2;
        by_len.iter().copied().skip(skip).collect()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(count);
    for _ in 0..count {
        let seeker = rng.gen_range(0..corpus.num_users());
        let mut tags = vec![pool[rng.gen_range(0..pool.len())]];
        if pool.len() > 1 && rng.gen_bool(0.5) {
            tags.push(pool[rng.gen_range(0..pool.len())]);
            tags.sort_unstable();
            tags.dedup();
        }
        queries.push(Query { seeker, tags, k });
    }
    QueryWorkload { queries }
}

/// The pre-refactor `ExactOnline` hot path, kept as the benchmark baseline:
/// a fresh dense `O(n)` σ vector per query
/// ([`ProximityModel::materialize`]) and a full posting-list scan per tag.
/// `fig9_hot_path` measures the workspace/sparse/cached paths against this.
pub struct DenseMaterializeExact<'a> {
    corpus: &'a Corpus,
    model: ProximityModel,
    acc: DenseAccumulator,
}

impl<'a> DenseMaterializeExact<'a> {
    pub fn new(corpus: &'a Corpus, model: ProximityModel) -> Self {
        DenseMaterializeExact {
            acc: DenseAccumulator::new(corpus.num_items() as usize),
            corpus,
            model,
        }
    }
}

impl Processor for DenseMaterializeExact<'_> {
    fn name(&self) -> &'static str {
        "dense-materialize-exact"
    }

    fn query(&mut self, q: &Query) -> SearchResult {
        let sigma_start = Instant::now();
        let sigma = self.model.materialize(&self.corpus.graph, q.seeker);
        let mut stats = QueryStats {
            sigma_ns: friends_core::latency::elapsed_ns(sigma_start),
            ..QueryStats::default()
        };
        let scoring_start = Instant::now();
        let mut users = std::collections::HashSet::new();
        for &tag in &q.tags {
            if tag >= self.corpus.store.num_tags() {
                continue;
            }
            for t in self.corpus.store.tag_taggings(tag) {
                stats.postings_scanned += 1;
                let s = sigma[t.user as usize];
                if s > 0.0 {
                    self.acc.add(t.item, (s * t.weight as f64) as f32);
                    users.insert(t.user);
                }
            }
        }
        stats.users_visited = users.len();
        let items = self.acc.drain_topk(q.k);
        stats.scoring_ns = friends_core::latency::elapsed_ns(scoring_start);
        SearchResult {
            items,
            stats,
            residual: 0.0,
        }
    }
}

/// The serving-regime corpus fig11 measures on: a 10k-scale social graph
/// with few, heavy tags (the fig10 gate's shape — long posting lists), so
/// per-query cost is dominated by *scoring* rather than by the one-off
/// per-seeker σ materialization. This is the regime a serving tier lives
/// in: σ vectors are cached after first contact, and what each request
/// costs is reading postings — exactly the work request coalescing
/// removes for duplicate in-flight queries.
pub fn serving_corpus(users: usize, seed: u64) -> Corpus {
    use friends_data::generator::{generate, WorkloadParams};
    use friends_graph::generators::{self, WeightModel};
    let base = generators::barabasi_albert(users, 8, seed);
    let graph = generators::assign_weights(&base, WeightModel::Jaccard { floor: 0.1 }, seed);
    let store = generate(
        &graph,
        &WorkloadParams {
            num_items: (users * 5) as u32,
            num_tags: 64,
            mean_taggings_per_user: 100.0,
            item_theta: 1.1,
            tag_theta: 1.0,
            homophily: 0.5,
            weighted: true,
        },
        seed,
    );
    Corpus::new(graph, store)
}

/// The corpus fig13 measures overload on: a scale-free social graph whose
/// weighted-decay σ materialization requires a whole-graph traversal
/// (small diameter, one giant component), with **many light tags** so
/// per-query cost is dominated by σ materialization rather than scoring.
/// This is the regime where bounded-σ degradation buys real capacity: a
/// radius-bounded traversal touches a small neighborhood instead of the
/// whole graph, while the posting scan it feeds stays cheap either way.
pub fn overload_corpus(users: usize, seed: u64) -> Corpus {
    use friends_data::generator::{generate, WorkloadParams};
    use friends_graph::generators::{self, WeightModel};
    let base = generators::barabasi_albert(users, 8, seed);
    let graph = generators::assign_weights(&base, WeightModel::Jaccard { floor: 0.1 }, seed);
    let store = generate(
        &graph,
        &WorkloadParams {
            num_items: (users * 2) as u32,
            num_tags: ((users / 16).max(64)) as u32,
            mean_taggings_per_user: 20.0,
            item_theta: 1.1,
            tag_theta: 1.0,
            homophily: 0.5,
            weighted: true,
        },
        seed,
    );
    Corpus::new(graph, store)
}

/// The corpus fig12 measures on: an **archipelago** of disjoint
/// `community`-sized islands (ring + random chords, Jaccard-like tie
/// strengths) covering `users` users in total. Every seeker's reachable
/// set — and therefore every decay-model σ — is one island, a small
/// fraction of the user universe, which is the regime where the `O(n)`
/// dense snapshot dwarfs the traversal itself and reach-proportional
/// materialization pays. Tags are numerous and light, so per-query scoring
/// stays small relative to σ materialization (the cost fig12 isolates).
pub fn archipelago_corpus(users: usize, community: usize, seed: u64) -> Corpus {
    use friends_data::generator::{generate, WorkloadParams};
    use friends_graph::GraphBuilder;
    assert!(community >= 3 && users >= community);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA2C1);
    let mut edges: Vec<(u32, u32, f32)> = Vec::new();
    let mut base = 0usize;
    while base < users {
        let size = community.min(users - base);
        if size >= 2 {
            for i in 0..size {
                let u = (base + i) as u32;
                let v = (base + (i + 1) % size) as u32;
                if u != v {
                    edges.push((u, v, 0.3 + 0.7 * rng.gen_range(0.0f32..1.0)));
                }
            }
            // A few chords per island: realistic clustering, diameter ~log.
            for _ in 0..size / 4 {
                let u = (base + rng.gen_range(0..size)) as u32;
                let v = (base + rng.gen_range(0..size)) as u32;
                if u != v {
                    edges.push((u, v, 0.1 + 0.5 * rng.gen_range(0.0f32..1.0)));
                }
            }
        }
        base += size;
    }
    let graph = GraphBuilder::from_edges(users, edges);
    let store = generate(
        &graph,
        &WorkloadParams {
            num_items: (users * 4) as u32,
            num_tags: ((users / 8).max(64)) as u32,
            mean_taggings_per_user: 20.0,
            item_theta: 1.1,
            tag_theta: 1.0,
            homophily: 0.5,
            weighted: true,
        },
        seed,
    );
    Corpus::new(graph, store)
}

/// A **seeker-diverse** workload: every query carries a distinct seeker
/// (no repeats at all), so neither the proximity cache nor result
/// memoization can help — every query pays the cold σ-materialization
/// path, which is exactly what fig12 measures. Tags are drawn from the
/// light tail of the popularity ranking to keep scoring cheap.
pub fn distinct_seeker_workload(
    corpus: &Corpus,
    count: usize,
    k: usize,
    seed: u64,
) -> QueryWorkload {
    let users = corpus.num_users() as usize;
    assert!(
        count <= users,
        "cannot draw {count} distinct seekers from {users}"
    );
    let mut by_len: Vec<u32> = (0..corpus.store.num_tags())
        .filter(|&t| !corpus.store.tag_taggings(t).is_empty())
        .collect();
    assert!(!by_len.is_empty());
    by_len.sort_unstable_by_key(|&t| corpus.store.tag_taggings(t).len());
    let pool: Vec<u32> = by_len
        .iter()
        .copied()
        .take((by_len.len() / 2).max(2))
        .collect();
    // A fixed odd stride coprime with most universe sizes spreads the
    // distinct seekers across every island.
    let stride = (users / 2 + 1) | 1;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = vec![false; users];
    let mut seeker = 0usize;
    let mut queries = Vec::with_capacity(count);
    for i in 0..count {
        while seen[seeker] {
            seeker = (seeker + 1) % users;
        }
        seen[seeker] = true;
        let mut tags = vec![pool[rng.gen_range(0..pool.len())]];
        if pool.len() > 1 && rng.gen_bool(0.5) {
            tags.push(pool[rng.gen_range(0..pool.len())]);
            tags.sort_unstable();
            tags.dedup();
        }
        queries.push(Query {
            seeker: seeker as u32,
            tags,
            k,
        });
        seeker = (seeker + stride * (1 + i % 3)) % users;
    }
    QueryWorkload { queries }
}

/// The pre-PR cache **miss path**, kept as the fig12 baseline: σ goes
/// through the same epoch-stamped workspace, but every cold seeker
/// publishes a **dense `O(n)` snapshot** into the shared cache
/// ([`SigmaWorkspace::snapshot_dense`]) before the posting scan — the
/// "dense σ snapshots are O(n) on cache miss" floor the reach-proportional
/// `Touched` representation removes. Scoring is the identical posting
/// scan, so ranking differences are impossible and the comparison isolates
/// snapshot construction + cache-resident size.
pub struct DenseSnapshotExact<'a> {
    corpus: &'a Corpus,
    model: ProximityModel,
    acc: DenseAccumulator,
    sigma: SigmaWorkspace,
    cache: Arc<ProximityCache>,
}

impl<'a> DenseSnapshotExact<'a> {
    pub fn new(corpus: &'a Corpus, model: ProximityModel, cache: Arc<ProximityCache>) -> Self {
        DenseSnapshotExact {
            acc: DenseAccumulator::new(corpus.num_items() as usize),
            sigma: SigmaWorkspace::new(),
            corpus,
            model,
            cache,
        }
    }
}

impl Processor for DenseSnapshotExact<'_> {
    fn name(&self) -> &'static str {
        "dense-snapshot-exact"
    }

    fn query(&mut self, q: &Query) -> SearchResult {
        let mut stats = QueryStats::default();
        let sigma_start = Instant::now();
        let cached = self.cache.get(&self.corpus.graph, q.seeker, self.model);
        let sigma = match &cached {
            Some(v) => Sigma::Shared(v.as_ref()),
            None => {
                self.model
                    .materialize_into(&self.corpus.graph, q.seeker, &mut self.sigma);
                self.cache.insert(
                    &self.corpus.graph,
                    q.seeker,
                    self.model,
                    Arc::new(self.sigma.snapshot_dense(self.corpus.graph.num_nodes())),
                );
                Sigma::Workspace(&self.sigma)
            }
        };
        stats.sigma_ns = friends_core::latency::elapsed_ns(sigma_start);
        let scoring_start = Instant::now();
        for &tag in &q.tags {
            if tag >= self.corpus.store.num_tags() {
                continue;
            }
            for t in self.corpus.store.tag_taggings(tag) {
                stats.postings_scanned += 1;
                let s = sigma.get(t.user);
                if s > 0.0 {
                    self.acc.add(t.item, (s * t.weight as f64) as f32);
                }
            }
        }
        let items = self.acc.drain_topk(q.k);
        stats.scoring_ns = friends_core::latency::elapsed_ns(scoring_start);
        SearchResult {
            items,
            stats,
            residual: 0.0,
        }
    }
}

/// Drives a small repeat-query request stream through a transient
/// planner-backed [`friends_service::ServedClient`] twice and returns the
/// aggregated shard totals — the observability sample `report --json`
/// embeds so every summary records proximity-cache, result-cache and
/// planner-histogram behavior alongside the timings.
pub fn service_probe() -> friends_service::ShardStats {
    use friends_data::datasets::{DatasetSpec, Scale};
    use friends_data::requests::{RequestParams, RequestStream};
    use friends_service::{SearchClient, ServedClient, ServiceConfig};
    use std::sync::Arc;

    let ds = DatasetSpec::delicious_like(Scale::Tiny).build(42);
    let corpus = Arc::new(Corpus::new(ds.graph, ds.store));
    let stream = RequestStream::generate(
        &corpus.graph,
        &corpus.store,
        &RequestParams {
            count: 300,
            ..RequestParams::default()
        },
        11,
    );
    let client = ServedClient::start(
        Arc::clone(&corpus),
        ServiceConfig {
            shards: 2,
            // Tiny capacities so admission and eviction both have to act.
            cache_capacity: 16,
            result_cache_capacity: 16,
            ..ServiceConfig::default()
        },
    );
    let queries = stream.queries();
    client.search(&queries, ProximityModel::WeightedDecay { alpha: 0.5 });
    client.search(&queries, ProximityModel::WeightedDecay { alpha: 0.5 });
    client.shutdown().totals()
}

/// The proximity-cache slice of [`service_probe`] (kept for summary
/// diffing across PRs).
pub fn service_cache_probe() -> friends_core::cache::CacheStats {
    service_probe().cache
}

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Mean of durations in microseconds (0.0 for empty input).
pub fn mean_us(ds: &[Duration]) -> f64 {
    if ds.is_empty() {
        return 0.0;
    }
    ds.iter().map(|d| d.as_secs_f64() * 1e6).sum::<f64>() / ds.len() as f64
}

/// Percentile (0.0–1.0) of durations in microseconds, linearly
/// interpolated between the two bracketing order statistics at
/// `idx = q·(n-1)`. The old nearest-rank form rounded to whichever sample
/// was closer — p50 of `[1, 3]` reported 1 or 3, never 2 — which biased
/// every small-sample tail column by up to a full sample.
pub fn percentile_us(ds: &[Duration], q: f64) -> f64 {
    percentiles_us(ds, &[q])[0]
}

/// Several percentiles of one sample set from a single sorted pass
/// (callers asking for p50 **and** p95/p99 used to re-sort per quantile).
/// Quantiles are linearly interpolated like [`percentile_us`]; an empty
/// input yields all zeros.
pub fn percentiles_us(ds: &[Duration], qs: &[f64]) -> Vec<f64> {
    if ds.is_empty() {
        return vec![0.0; qs.len()];
    }
    let mut v: Vec<f64> = ds.iter().map(|d| d.as_secs_f64() * 1e6).collect();
    v.sort_unstable_by(|a, b| a.total_cmp(b));
    qs.iter()
        .map(|&q| {
            let idx = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            v[lo] + (idx - lo as f64) * (v[hi] - v[lo])
        })
        .collect()
}

/// A plain-text aligned table, the output format of every experiment.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncol {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A [`criterion::Criterion`] configured with the pprof flamegraph
/// profiler, for the fig benches' `criterion_group!` config arm. Behind
/// the `flamegraph` feature so the default CI bench build stays free of
/// profiler hooks:
///
/// ```sh
/// cargo bench -p friends-bench --features flamegraph --bench fig9_hot_path
/// ```
#[cfg(feature = "flamegraph")]
pub fn profiled_criterion() -> criterion::Criterion {
    use pprof::criterion::{Output, PProfProfiler};
    criterion::Criterion::default()
        .with_profiler(PProfProfiler::new(1000, Output::Flamegraph(None)))
}

/// Formats a byte count human-readably.
pub fn fmt_bytes(b: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut x = b as f64;
    let mut u = 0;
    while x >= 1024.0 && u < UNITS.len() - 1 {
        x /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{x:.1} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use friends_data::datasets::{DatasetSpec, Scale};

    #[test]
    fn zipf_workload_is_skewed_and_well_formed() {
        let ds = DatasetSpec::delicious_like(Scale::Tiny).build(3);
        let corpus = Corpus::new(ds.graph, ds.store);
        let w = zipf_seeker_workload(&corpus, 500, 10, 1.2, 9);
        assert_eq!(w.len(), 500);
        let mut counts = std::collections::HashMap::new();
        for q in &w.queries {
            assert!(q.seeker < corpus.num_users());
            assert!(!q.tags.is_empty());
            assert!(q.tags.iter().all(|&t| t < corpus.store.num_tags()));
            assert!(q.tags.windows(2).all(|p| p[0] < p[1]));
            *counts.entry(q.seeker).or_insert(0usize) += 1;
        }
        // Skew: the distinct-seeker count must be far below the query count
        // (that repetition is what the proximity cache exploits).
        assert!(
            counts.len() * 2 < w.len(),
            "only {} distinct seekers over {} queries",
            counts.len(),
            w.len()
        );
    }

    #[test]
    fn dense_baseline_matches_exact_online() {
        use friends_core::processors::{ExactOnline, Processor};
        let ds = DatasetSpec::delicious_like(Scale::Tiny).build(5);
        let corpus = Corpus::new(ds.graph, ds.store);
        let w = zipf_seeker_workload(&corpus, 40, 10, 1.0, 11);
        for model in [
            ProximityModel::FriendsOnly,
            ProximityModel::WeightedDecay { alpha: 0.5 },
            ProximityModel::AdamicAdar,
        ] {
            let mut baseline = DenseMaterializeExact::new(&corpus, model);
            let mut current = ExactOnline::new(&corpus, model);
            for q in &w.queries {
                assert_eq!(
                    baseline.query(q).items,
                    current.query(q).items,
                    "{} {q:?}",
                    model.name()
                );
            }
        }
    }

    /// Timing gates measure wall-clock throughput and tail latency; two of
    /// them racing for the same cores turns both into noise. Every gate
    /// takes this lock, so `--include-ignored` runs them serially no matter
    /// how many test threads the harness uses.
    static TIMING_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serialize_timing_gate() -> std::sync::MutexGuard<'static, ()> {
        TIMING_GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The fig9 acceptance gate: ≥ 2× batch throughput for sparse-support
    /// models against the dense-materialize path on Zipf-skewed traffic at
    /// serving scale (10k users; the dense path's `O(n)` per-query tax is
    /// what the refactor removes). Best-of-3 trials absorb scheduler noise.
    /// Timing assertions are machine-sensitive, so the test is `#[ignore]`d
    /// for CI; run it via `cargo test --release -p friends-bench -- --ignored`.
    #[test]
    #[ignore]
    #[allow(deprecated)] // the gate measures the legacy paths against each other
    fn fig9_speedup_gate() {
        let _serial = serialize_timing_gate();
        use friends_core::processors::ExactOnline;
        let ds = DatasetSpec::delicious_like(Scale::Custom(10_000)).build(42);
        let corpus = Corpus::new(ds.graph, ds.store);
        let w = zipf_seeker_workload(&corpus, 2_000, 10, 1.4, 7);
        // Cache-worthy models must win ≥ 2× through the shared cache.
        // FriendsOnly bypasses the cache by policy (a hit costs about as
        // much as materializing), so its bar is the workspace path at a
        // slightly lower threshold — the bypass must not lose what the
        // cache used to provide.
        for (model, bar) in [
            (ProximityModel::FriendsOnly, 1.5),
            (ProximityModel::WeightedDecay { alpha: 0.5 }, 2.0),
            (
                ProximityModel::Ppr {
                    alpha: 0.2,
                    epsilon: 1e-4,
                },
                2.0,
            ),
        ] {
            let best = (0..3)
                .map(|_| {
                    let (_, dense) = timed(|| {
                        friends_core::batch::par_batch(&w.queries, 4, || {
                            DenseMaterializeExact::new(&corpus, model)
                        })
                    });
                    let cache = std::sync::Arc::new(friends_core::cache::ProximityCache::new(
                        corpus.num_users() as usize,
                    ));
                    let (_, cached) = timed(|| {
                        friends_core::batch::par_batch_with_cache(&w.queries, 4, &cache, |shared| {
                            ExactOnline::with_cache(&corpus, model, shared)
                        })
                    });
                    dense.as_secs_f64() / cached.as_secs_f64()
                })
                .fold(0.0f64, f64::max);
            assert!(
                best >= bar,
                "{}: cached path only {best:.2}x over dense-materialize (bar {bar}x)",
                model.name()
            );
        }
    }

    #[test]
    fn selectivity_workload_is_well_formed() {
        let ds = DatasetSpec::delicious_like(Scale::Tiny).build(3);
        let corpus = Corpus::new(ds.graph, ds.store);
        let head = selectivity_workload(&corpus, 200, 10, true, 5);
        let tail = selectivity_workload(&corpus, 200, 10, false, 5);
        let volume = |w: &QueryWorkload| -> usize {
            w.queries
                .iter()
                .flat_map(|q| q.tags.iter())
                .map(|&t| corpus.store.tag_taggings(t).len())
                .sum()
        };
        for w in [&head, &tail] {
            assert_eq!(w.len(), 200);
            for q in &w.queries {
                assert!(q.seeker < corpus.num_users());
                assert!(!q.tags.is_empty() && q.tags.len() <= 2);
                assert!(q.tags.iter().all(|&t| t < corpus.store.num_tags()));
            }
        }
        assert!(
            volume(&head) > 2 * volume(&tail),
            "head workload must carry far more postings: {} vs {}",
            volume(&head),
            volume(&tail)
        );
    }

    /// The fig10 acceptance gate: on low-selectivity personalized queries —
    /// popular tags whose posting lists dwarf the graph, so scoring (not σ
    /// materialization) dominates — the block-max σ-aware WAND strategy must
    /// beat the full posting scan for the decay models: the pruning the
    /// σ-aware block metadata exists to enable. Best-of-3 trials absorb
    /// scheduler noise; machine-sensitive, so `#[ignore]`d for CI like fig9
    /// (run via `cargo test --release -p friends-bench -- --ignored`).
    #[test]
    #[ignore]
    fn fig10_blockmax_gate() {
        let _serial = serialize_timing_gate();
        use friends_core::processors::{ExactOnline, Processor, ScoringStrategy};
        use friends_data::generator::{generate, WorkloadParams};
        use friends_graph::generators::{self, WeightModel};
        let base = generators::barabasi_albert(10_000, 8, 42);
        let graph = generators::assign_weights(&base, WeightModel::Jaccard { floor: 0.1 }, 42);
        let store = generate(
            &graph,
            &WorkloadParams {
                num_items: 50_000,
                num_tags: 16, // few, heavy tags: every query is low-selectivity
                mean_taggings_per_user: 150.0,
                item_theta: 1.1,
                tag_theta: 1.0,
                homophily: 0.5,
                weighted: true,
            },
            42,
        );
        let corpus = Corpus::new(graph, store);
        corpus.sigma_index(); // shared build, outside the timed region
        let w = selectivity_workload(&corpus, 400, 10, true, 17);
        // DistanceDecay is the pruning-friendly regime (σ takes a few
        // discrete levels, so the envelope is tight); WeightedDecay's
        // high-variance σ keeps range bounds loose — it stays exact but is
        // not gated (ROADMAP: tagger-id clustering would recover it).
        for model in [
            ProximityModel::DistanceDecay { alpha: 0.3 },
            ProximityModel::DistanceDecay { alpha: 0.5 },
        ] {
            let best = (0..3)
                .map(|_| {
                    let mut scan =
                        ExactOnline::with_strategy(&corpus, model, ScoringStrategy::PostingScan);
                    let mut bm =
                        ExactOnline::with_strategy(&corpus, model, ScoringStrategy::BlockMax);
                    let (_, scan_d) = timed(|| {
                        for q in &w.queries {
                            std::hint::black_box(scan.query(q));
                        }
                    });
                    let (_, bm_d) = timed(|| {
                        for q in &w.queries {
                            std::hint::black_box(bm.query(q));
                        }
                    });
                    scan_d.as_secs_f64() / bm_d.as_secs_f64()
                })
                .fold(0.0f64, f64::max);
            assert!(
                best >= 1.2,
                "{}: block-max only {best:.2}x over full posting scan",
                model.name()
            );
        }
    }

    /// The fig11 acceptance gate, invoked through the unified client API:
    /// on a Zipf(1.1) repeat-query request stream at serving scale (10k
    /// users), a [`friends_service::ServedClient`] — planner-backed
    /// seeker-affinity broker, coalescing duplicate in-flight requests
    /// onto one execution and keeping each seeker's σ on one shard's
    /// private admission-controlled cache — must beat the pre-PR
    /// `par_batch_with_cache` chunk split by ≥ 1.3× for both a dense-decay
    /// and a sparse-support model, with byte-identical rankings and zero
    /// deadline misses at the default deadline. Best-of-3 trials absorb
    /// scheduler noise; machine-sensitive, so `#[ignore]`d for CI like
    /// fig9/fig10 (run via
    /// `cargo test --release -p friends-bench -- --ignored`).
    #[test]
    #[ignore]
    #[allow(deprecated)] // the baseline side is the deprecated batch path
    fn fig11_service_gate() {
        let _serial = serialize_timing_gate();
        use friends_core::batch::par_batch_with_cache;
        use friends_core::cache::ProximityCache;
        use friends_core::plan::QueryRequest;
        use friends_core::processors::ExactOnline;
        use friends_data::requests::{RequestParams, RequestStream};
        use friends_service::{SearchClient, ServedClient, ServiceConfig};
        use std::sync::Arc;

        let corpus = Arc::new(serving_corpus(10_000, 42));
        corpus.sigma_index(); // shared lazy build, outside every timed region
        let stream = RequestStream::generate(
            &corpus.graph,
            &corpus.store,
            &RequestParams {
                count: 4_000,
                seeker_theta: 1.1,
                ..RequestParams::default()
            },
            17,
        );
        let queries = stream.queries();
        let workers = 4;
        for model in [
            ProximityModel::DistanceDecay { alpha: 0.3 },
            ProximityModel::Ppr {
                alpha: 0.2,
                epsilon: 1e-4,
            },
        ] {
            let best = (0..3)
                .map(|_| {
                    let cache = Arc::new(ProximityCache::new(corpus.num_users() as usize));
                    let (base_r, base_d) = timed(|| {
                        par_batch_with_cache(&queries, workers, &cache, |shared| {
                            ExactOnline::with_cache(&corpus, model, shared)
                        })
                    });
                    let client = ServedClient::start(
                        Arc::clone(&corpus),
                        ServiceConfig {
                            shards: workers,
                            // Wide dispatch window: a flooded queue drains
                            // in few cycles, maximizing in-flight overlap
                            // for the coalescer.
                            max_batch: 1024,
                            ..ServiceConfig::default()
                        },
                    );
                    let requests: Vec<QueryRequest> = queries
                        .iter()
                        .map(|q| QueryRequest::from_query(q.clone()).with_model(model))
                        .collect();
                    let (replies, svc_d) = timed(|| client.run_batch(requests));
                    let stats = client.shutdown().totals();
                    eprintln!(
                        "fig11 {}: batch {:.0} q/s, service {:.0} q/s ({} executed, {} coalesced, \
                         {:.0}% hits, max batch {})",
                        model.name(),
                        queries.len() as f64 / base_d.as_secs_f64(),
                        queries.len() as f64 / svc_d.as_secs_f64(),
                        stats.executed,
                        stats.coalesced,
                        100.0 * stats.cache.hit_rate(),
                        stats.max_batch,
                    );
                    assert_eq!(
                        stats.deadline_misses,
                        0,
                        "{}: misses at the default deadline",
                        model.name()
                    );
                    for (a, b) in base_r.iter().zip(&replies) {
                        let served = b.outcome.result().expect("reply must be Done");
                        assert_eq!(
                            a.items,
                            served.items,
                            "{}: service ranking diverged",
                            model.name()
                        );
                    }
                    base_d.as_secs_f64() / svc_d.as_secs_f64()
                })
                .fold(0.0f64, f64::max);
            assert!(
                best >= 1.3,
                "{}: ServedClient only {best:.2}x over par_batch_with_cache",
                model.name()
            );
        }
    }

    #[test]
    fn archipelago_and_distinct_workload_are_well_formed() {
        let c = archipelago_corpus(512, 32, 3);
        assert_eq!(c.num_users(), 512);
        let w = distinct_seeker_workload(&c, 256, 10, 5);
        assert_eq!(w.len(), 256);
        let seekers: std::collections::HashSet<u32> = w.queries.iter().map(|q| q.seeker).collect();
        assert_eq!(seekers.len(), 256, "every seeker must be distinct");
        for q in &w.queries {
            assert!(q.seeker < c.num_users());
            assert!(!q.tags.is_empty() && q.tags.iter().all(|&t| t < c.store.num_tags()));
        }
        // Island structure: a decay seeker's reach is one island, so the
        // snapshot is Touched and its support is bounded by the island.
        let mut ws = SigmaWorkspace::new();
        for q in w.queries.iter().take(16) {
            ProximityModel::DistanceDecay { alpha: 0.5 }
                .materialize_into(&c.graph, q.seeker, &mut ws);
            let snap = ws.snapshot(512);
            let support = snap.support().expect("island reach must snapshot Touched");
            assert!(
                !support.is_empty() && support.len() <= 32,
                "reach {} outgrew the island",
                support.len()
            );
        }
    }

    #[test]
    fn dense_snapshot_baseline_matches_exact_online() {
        let c = archipelago_corpus(400, 25, 7);
        let w = distinct_seeker_workload(&c, 120, 10, 9);
        for model in [
            ProximityModel::DistanceDecay { alpha: 0.3 },
            ProximityModel::WeightedDecay { alpha: 0.5 },
        ] {
            let dense_cache = Arc::new(ProximityCache::new(1024));
            let touched_cache = Arc::new(ProximityCache::new(1024));
            let mut baseline = DenseSnapshotExact::new(&c, model, Arc::clone(&dense_cache));
            let mut current =
                friends_core::processors::ExactOnline::with_cache(&c, model, touched_cache);
            for q in &w.queries {
                assert_eq!(
                    baseline.query(q).items,
                    current.query(q).items,
                    "{} {q:?}",
                    model.name()
                );
            }
            // The baseline must really be paying the dense-snapshot tax.
            assert!(dense_cache.stats().bytes >= 120 * 400 * 8);
        }
    }

    /// The fig12 acceptance gate: on a seeker-diverse (every seeker
    /// distinct — memoization-free) stream over the 10k-user archipelago,
    /// the reach-proportional miss path must beat the dense-snapshot miss
    /// path by ≥ 1.5× for both decay models, with rankings byte-identical
    /// to the dense-materialize reference across every model and scoring
    /// strategy. Machine-sensitive like fig9–fig11, so `#[ignore]`d for the
    /// default CI lane; the release-gates job runs it via
    /// `cargo test --release -p friends-bench fig12_sigma_floor -- --ignored`.
    #[test]
    #[ignore]
    fn fig12_sigma_floor() {
        let _serial = serialize_timing_gate();
        use friends_core::processors::{ExactOnline, GlobalBoundTA, ScoringStrategy};
        let corpus = archipelago_corpus(10_000, 64, 42);
        corpus.sigma_index(); // shared build, outside every timed region
        let w = distinct_seeker_workload(&corpus, 2_000, 10, 17);

        // Exactness across all models × strategies (cold cached Auto path,
        // forced scan, forced block-max, support probe where defined, and
        // the cached global-bound processor) against the dense-materialize
        // reference.
        let all_models = [
            ProximityModel::Global,
            ProximityModel::FriendsOnly,
            ProximityModel::DistanceDecay { alpha: 0.3 },
            ProximityModel::WeightedDecay { alpha: 0.5 },
            ProximityModel::Ppr {
                alpha: 0.2,
                epsilon: 1e-4,
            },
            ProximityModel::AdamicAdar,
        ];
        for model in all_models {
            let mut reference = DenseMaterializeExact::new(&corpus, model);
            let cache = Arc::new(ProximityCache::with_byte_budget(
                16 << 20,
                16,
                Default::default(),
            ));
            let mut cached = ExactOnline::with_cache(&corpus, model, Arc::clone(&cache));
            let mut scan = ExactOnline::with_strategy(&corpus, model, ScoringStrategy::PostingScan);
            let mut bm = ExactOnline::with_strategy(&corpus, model, ScoringStrategy::BlockMax);
            let mut sup = model
                .has_sparse_support()
                .then(|| ExactOnline::with_strategy(&corpus, model, ScoringStrategy::SupportProbe));
            let mut gbta = (!matches!(model, ProximityModel::Ppr { .. })).then(|| {
                GlobalBoundTA::with_cache(&corpus, model, Arc::new(ProximityCache::new(4096)))
            });
            for q in w.queries.iter().take(200) {
                let want = reference.query(q).items;
                assert_eq!(want, cached.query(q).items, "{} cached", model.name());
                assert_eq!(want, cached.query(q).items, "{} cache hit", model.name());
                assert_eq!(want, scan.query(q).items, "{} scan", model.name());
                assert_eq!(want, bm.query(q).items, "{} block-max", model.name());
                if let Some(sup) = sup.as_mut() {
                    assert_eq!(want, sup.query(q).items, "{} support", model.name());
                }
                if let Some(gbta) = gbta.as_mut() {
                    let got = gbta.query(q).items;
                    // GBTA accumulates in f64: compare the ranked id sets.
                    let a: Vec<u32> = want.iter().map(|&(i, _)| i).collect();
                    let b: Vec<u32> = got.iter().map(|&(i, _)| i).collect();
                    assert_eq!(a, b, "{} gbta", model.name());
                }
            }
        }

        // Throughput: cold-seeker materialization, dense-snapshot vs
        // reach-proportional, best of 3 to absorb scheduler noise.
        for model in [
            ProximityModel::DistanceDecay { alpha: 0.3 },
            ProximityModel::WeightedDecay { alpha: 0.5 },
        ] {
            let best = (0..3)
                .map(|_| {
                    let dense_cache = Arc::new(ProximityCache::with_byte_budget(
                        16 << 20,
                        16,
                        Default::default(),
                    ));
                    let mut dense = DenseSnapshotExact::new(&corpus, model, dense_cache);
                    let (dense_r, dense_d) =
                        timed(|| w.queries.iter().map(|q| dense.query(q)).collect::<Vec<_>>());
                    let touched_cache = Arc::new(ProximityCache::with_byte_budget(
                        16 << 20,
                        16,
                        Default::default(),
                    ));
                    let mut touched = ExactOnline::with_cache(&corpus, model, touched_cache);
                    let (touched_r, touched_d) = timed(|| {
                        w.queries
                            .iter()
                            .map(|q| touched.query(q))
                            .collect::<Vec<_>>()
                    });
                    for (a, b) in dense_r.iter().zip(&touched_r) {
                        assert_eq!(a.items, b.items, "{}", model.name());
                    }
                    dense_d.as_secs_f64() / touched_d.as_secs_f64()
                })
                .fold(0.0f64, f64::max);
            eprintln!("fig12 {}: {best:.2}x", model.name());
            assert!(
                best >= 1.5,
                "{}: reach-proportional path only {best:.2}x over dense snapshots",
                model.name()
            );
        }
    }

    /// The fig13 acceptance gate: at an open-loop arrival rate 1.5× the
    /// measured closed-loop capacity, SLO-degraded serving (overload
    /// controller on) holds p99 completion latency inside the deadline
    /// with bounded residual certificates, while the exact service can
    /// only shed — losing ≥ 20% of the stream to deadline misses.
    /// Machine-sensitive like fig9–fig12, so `#[ignore]`d for the default
    /// CI lane; the release-gates job runs it via
    /// `cargo test --release -p friends-bench -- --ignored`.
    #[test]
    #[ignore]
    fn fig13_overload_gate() {
        let _serial = serialize_timing_gate();
        use crate::experiments::drive_open_loop;
        use friends_core::plan::QueryRequest;
        use friends_data::requests::{
            OpenLoopParams, OpenLoopStream, RequestParams, RequestStream,
        };
        use friends_service::{OverloadPolicy, SearchClient, ServedClient, ServiceConfig};

        let corpus = Arc::new(overload_corpus(20_000, 42));
        corpus.sigma_index(); // shared lazy build, outside every timed region
        let model = ProximityModel::WeightedDecay { alpha: 0.5 };
        let shards = 2;
        let deadline = Duration::from_millis(40);
        let shape = RequestParams {
            count: 3_000,
            seeker_theta: 1.1,
            ..RequestParams::default()
        };
        // Closed-loop capacity of the exact service, coalescing off: a
        // flood merges duplicates across the whole stream, overstating
        // sustainable capacity several-fold, so the honest number comes
        // from per-request execution.
        let probe = RequestStream::generate(
            &corpus.graph,
            &corpus.store,
            &RequestParams {
                count: 800,
                ..shape.clone()
            },
            19,
        )
        .queries();
        let cap_client = ServedClient::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards,
                coalesce: false,
                default_deadline: None,
                ..ServiceConfig::default()
            },
        );
        let requests: Vec<QueryRequest> = probe
            .iter()
            .map(|q| {
                QueryRequest::from_query(q.clone())
                    .with_model(model)
                    .without_deadline()
            })
            .collect();
        let (_, cap_d) = timed(|| cap_client.run_batch(requests));
        cap_client.shutdown();
        let capacity = probe.len() as f64 / cap_d.as_secs_f64();
        let stream = OpenLoopStream::generate(
            &corpus.graph,
            &corpus.store,
            &OpenLoopParams {
                rate: 1.5 * capacity,
                poisson: false,
                shape,
            },
            19,
        );

        // Exact mode: no controller — overload can only shed.
        let exact_client = ServedClient::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards,
                max_batch: 64,
                default_deadline: Some(deadline),
                ..ServiceConfig::default()
            },
        );
        let exact = drive_open_loop(&exact_client, &stream, model, deadline);
        let exact_stats = exact_client.shutdown().totals();
        eprintln!("fig13 exact: {exact:?} (capacity {capacity:.0} q/s)");
        eprintln!(
            "fig13 exact stats: executed {} coalesced {} misses {} hits {:.0}% batches {} maxb {}",
            exact_stats.executed,
            exact_stats.coalesced,
            exact_stats.deadline_misses,
            100.0 * exact_stats.cache.hit_rate(),
            exact_stats.batches,
            exact_stats.max_batch
        );
        assert!(
            exact.missed * 5 >= exact.submitted,
            "exact mode shed only {}/{} at 1.5x capacity — the stream is not \
             actually overloading (capacity {capacity:.0} q/s)",
            exact.missed,
            exact.submitted
        );

        // Degraded mode: the controller trades exactness for capacity.
        let degraded_client = ServedClient::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards,
                max_batch: 64,
                default_deadline: Some(deadline),
                overload: Some(OverloadPolicy {
                    depth_high: 16,
                    depth_low: 4,
                    ..OverloadPolicy::default()
                }),
                ..ServiceConfig::default()
            },
        );
        let degraded = drive_open_loop(&degraded_client, &stream, model, deadline);
        let stats = degraded_client.shutdown().totals();
        eprintln!(
            "fig13 degraded: {degraded:?} ({} server-degraded)",
            stats.degraded
        );
        eprintln!(
            "fig13 degraded stats: executed {} coalesced {} misses {} hits {:.0}% batches {} maxb {}",
            stats.executed,
            stats.coalesced,
            stats.deadline_misses,
            100.0 * stats.cache.hit_rate(),
            stats.batches,
            stats.max_batch
        );
        assert!(
            degraded.done >= 2 * exact.done,
            "degraded mode must complete at least twice what exact serving \
             manages under the same overload: {} vs {}",
            degraded.done,
            exact.done
        );
        assert!(
            degraded.degraded > 0 && stats.degraded > 0,
            "the overload controller never engaged: {degraded:?}"
        );
        assert!(
            degraded.p99_ms <= deadline.as_secs_f64() * 1e3 * 1.1,
            "degraded p99 {:.2} ms blew the {} ms deadline",
            degraded.p99_ms,
            deadline.as_millis()
        );
        assert!(
            degraded.max_residual.is_finite() && degraded.max_residual >= 0.0,
            "unbounded residual: {degraded:?}"
        );
        assert!(
            degraded.missed < exact.missed,
            "degradation must shed less than exact serving: {} vs {}",
            degraded.missed,
            exact.missed
        );
    }

    /// The fig14 acceptance gate: with a mutation stream applied at 10% of
    /// the query rate (64-mutation epoch batches through
    /// `apply_mutations`), read-path p99 stays within 2× the frozen
    /// baseline measured in the same process (plus a small absolute jitter
    /// floor — the frozen p99 is single-digit milliseconds, inside
    /// scheduler-noise territory on a loaded host), every epoch switch
    /// performs *incremental* invalidation (nonzero σ sweeps and
    /// per-seeker result drops, zero full-stamp expirations), and the
    /// writer-side σ refresh engages. Machine-sensitive like fig9–fig13,
    /// so `#[ignore]`d for the default CI lane; the live-graph-gates job
    /// runs it via `cargo test --release -p friends-bench -- --ignored
    /// fig14_live_graph_gate`.
    #[test]
    #[ignore]
    fn fig14_live_graph_gate() {
        let _serial = serialize_timing_gate();
        use crate::experiments::{drive_live_open_loop, drive_open_loop};
        use friends_core::plan::QueryRequest;
        use friends_data::mutations::{MutationBatch, MutationParams, MutationStream};
        use friends_data::requests::{
            OpenLoopParams, OpenLoopStream, RequestParams, RequestStream,
        };
        use friends_service::{SearchClient, ServedClient, ServiceConfig};

        let corpus = Arc::new(overload_corpus(20_000, 42));
        corpus.sigma_index(); // shared lazy build, outside every timed region
        let model = ProximityModel::WeightedDecay { alpha: 0.5 };
        let shards = 2;
        let deadline = Duration::from_millis(50);
        let count = 6_000; // p99 rank 60: one scheduler hiccup can't own it
        let shape = RequestParams {
            count,
            seeker_theta: 1.1,
            ..RequestParams::default()
        };
        // Closed-loop capacity of the exact service, coalescing off (same
        // honesty argument as the fig13 gate), then pace reads at 30% of
        // it: the writer shares the cores, and this gate measures mutation
        // cost at a sustainable rate, not compounded with overload.
        let probe = RequestStream::generate(
            &corpus.graph,
            &corpus.store,
            &RequestParams {
                count: 800,
                ..shape.clone()
            },
            19,
        )
        .queries();
        let cap_client = ServedClient::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards,
                coalesce: false,
                default_deadline: None,
                ..ServiceConfig::default()
            },
        );
        let requests: Vec<QueryRequest> = probe
            .iter()
            .map(|q| {
                QueryRequest::from_query(q.clone())
                    .with_model(model)
                    .without_deadline()
            })
            .collect();
        let (_, cap_d) = timed(|| cap_client.run_batch(requests));
        cap_client.shutdown();
        let capacity = probe.len() as f64 / cap_d.as_secs_f64();
        let rate = 0.3 * capacity;
        let stream = OpenLoopStream::generate(
            &corpus.graph,
            &corpus.store,
            &OpenLoopParams {
                rate,
                poisson: false,
                shape: shape.clone(),
            },
            19,
        );
        let write_rate = 0.10 * rate;
        let muts = MutationStream::generate(
            &corpus.graph,
            &corpus.store,
            &MutationParams {
                count: count / 10,
                rate: write_rate,
                user_theta: shape.seeker_theta,
                ..MutationParams::default()
            },
            19,
        );
        const WRITE_BATCH: usize = 64;
        let writes: Vec<(Duration, MutationBatch)> = muts
            .batches(WRITE_BATCH)
            .into_iter()
            .enumerate()
            .map(|(i, b)| {
                let last = (i * WRITE_BATCH + b.len() - 1).min(muts.len() - 1);
                (muts.mutations[last].arrival, b)
            })
            .collect();
        let config = ServiceConfig {
            shards,
            max_batch: 64,
            default_deadline: Some(deadline),
            result_cache_capacity: 4_096,
            mutation_refresh_cap: 48,
            ..ServiceConfig::default()
        };

        let frozen_client = ServedClient::start(Arc::clone(&corpus), config.clone());
        let frozen = drive_open_loop(&frozen_client, &stream, model, deadline);
        let frozen_stats = frozen_client.shutdown().totals();
        eprintln!("fig14 frozen: {frozen:?} (rate {rate:.0} q/s)");
        assert_eq!(
            frozen_stats.mutation_epoch, 0,
            "the frozen baseline must never see an epoch switch"
        );

        let live_client = ServedClient::start(Arc::clone(&corpus), config);
        let (live, report) =
            drive_live_open_loop(&live_client, &stream, model, deadline, &writes, None);
        let live_stats = live_client.shutdown().totals();
        eprintln!("fig14 live: {live:?}");
        eprintln!(
            "fig14 mutations: epochs {} applied {} prox_invalidated {} \
             sigma_refreshed {} results_invalidated {} result_expirations {}",
            report.epoch,
            report.mutations,
            report.prox_invalidated,
            report.sigma_refreshed,
            report.results_invalidated,
            live_stats.results.expirations,
        );

        // The writes actually streamed, at epoch-batch granularity.
        assert_eq!(report.mutations, count / 10, "mutation stream truncated");
        assert_eq!(
            live_stats.mutation_epoch, report.epoch,
            "shards and report disagree on the final epoch"
        );
        assert!(report.epoch > 0, "no epoch switch happened");
        // Every switch invalidated incrementally: σ sweeps and per-seeker
        // result drops happened, a full result-cache stamp never did.
        assert!(
            report.prox_invalidated > 0,
            "σ sweeps never dropped an entry"
        );
        assert!(
            report.sigma_refreshed > 0,
            "the writer-side σ refresh never engaged"
        );
        assert!(
            report.results_invalidated > 0,
            "result sweeps never dropped an entry"
        );
        assert_eq!(
            live_stats.results.expirations, 0,
            "a full-stamp result invalidation ran — incremental sweeps \
             should have handled every epoch"
        );
        // The read path held: nearly everything completed, and p99 stayed
        // within 2× the frozen baseline plus 8 ms of scheduler-jitter
        // floor — both arms' p99s are single-digit-millisecond ranks that
        // swing several ms run-to-run on a loaded single-core host, while
        // a real regression (e.g. a per-epoch index rebuild on the shard
        // path) lands two orders of magnitude past this budget.
        assert!(
            live.done * 100 >= live.submitted * 95,
            "live serving shed too much: {live:?}"
        );
        assert!(
            live.p99_ms <= 2.0 * frozen.p99_ms + 8.0,
            "read-path p99 under writes blew the 2x-frozen budget: \
             {:.2} ms vs frozen {:.2} ms",
            live.p99_ms,
            frozen.p99_ms
        );
    }

    /// Release gate behind the fig15 durability claims; run explicitly
    /// with `cargo test --release -q -p friends-bench
    /// fig15_durability_gate -- --ignored`. Two claims: (1) fsync-per-batch
    /// durability (`SyncPolicy::Always`) keeps read p99 under writes within
    /// 1.3× of the WAL-off baseline (plus the same 8 ms scheduler-jitter
    /// floor as the fig14 gate — both arms' p99s are single-digit-ms ranks
    /// on a shared host, while a real regression, e.g. holding the
    /// mutation gate across the fsync of every read, lands orders of
    /// magnitude past this budget); (2) a 10k-mutation WAL with no
    /// snapshot replays to the exact acked epoch in under 2 s.
    #[test]
    #[ignore]
    fn fig15_durability_gate() {
        let _serial = serialize_timing_gate();
        use crate::experiments::drive_live_open_loop;
        use friends_core::live::{DurabilityConfig, LiveCorpus};
        use friends_core::plan::QueryRequest;
        use friends_data::mutations::{MutationBatch, MutationParams, MutationStream};
        use friends_data::requests::{
            OpenLoopParams, OpenLoopStream, RequestParams, RequestStream,
        };
        use friends_data::wal::SyncPolicy;
        use friends_service::{SearchClient, ServedClient, ServiceConfig};

        fn scratch(tag: &str) -> std::path::PathBuf {
            let mut dir = std::env::temp_dir();
            dir.push(format!("friends-gate-fig15-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        }

        let corpus = Arc::new(overload_corpus(20_000, 42));
        corpus.sigma_index(); // shared lazy build, outside every timed region
        let model = ProximityModel::WeightedDecay { alpha: 0.5 };
        let shards = 2;
        let deadline = Duration::from_millis(50);
        let count = 6_000; // p99 rank 60: one scheduler hiccup can't own it
        let shape = RequestParams {
            count,
            seeker_theta: 1.1,
            ..RequestParams::default()
        };
        let probe = RequestStream::generate(
            &corpus.graph,
            &corpus.store,
            &RequestParams {
                count: 800,
                ..shape.clone()
            },
            23,
        )
        .queries();
        let cap_client = ServedClient::start(
            Arc::clone(&corpus),
            ServiceConfig {
                shards,
                coalesce: false,
                default_deadline: None,
                ..ServiceConfig::default()
            },
        );
        let requests: Vec<QueryRequest> = probe
            .iter()
            .map(|q| {
                QueryRequest::from_query(q.clone())
                    .with_model(model)
                    .without_deadline()
            })
            .collect();
        let (_, cap_d) = timed(|| cap_client.run_batch(requests));
        cap_client.shutdown();
        let capacity = probe.len() as f64 / cap_d.as_secs_f64();
        let rate = 0.3 * capacity;
        let stream = OpenLoopStream::generate(
            &corpus.graph,
            &corpus.store,
            &OpenLoopParams {
                rate,
                poisson: false,
                shape: shape.clone(),
            },
            23,
        );
        let write_rate = 0.10 * rate;
        let muts = MutationStream::generate(
            &corpus.graph,
            &corpus.store,
            &MutationParams {
                count: count / 10,
                rate: write_rate,
                user_theta: shape.seeker_theta,
                ..MutationParams::default()
            },
            23,
        );
        const WRITE_BATCH: usize = 64;
        let writes: Vec<(Duration, MutationBatch)> = muts
            .batches(WRITE_BATCH)
            .into_iter()
            .enumerate()
            .map(|(i, b)| {
                let last = (i * WRITE_BATCH + b.len() - 1).min(muts.len() - 1);
                (muts.mutations[last].arrival, b)
            })
            .collect();

        let mut p99 = std::collections::HashMap::new();
        for (mode, durable) in [("wal-off", false), ("wal-fsync", true)] {
            let dir = scratch(mode);
            let client = ServedClient::start(
                Arc::clone(&corpus),
                ServiceConfig {
                    shards,
                    max_batch: 64,
                    default_deadline: Some(deadline),
                    result_cache_capacity: 4_096,
                    mutation_refresh_cap: 48,
                    durability: durable.then(|| {
                        let mut d = DurabilityConfig::new(&dir);
                        d.sync = SyncPolicy::Always;
                        d
                    }),
                    ..ServiceConfig::default()
                },
            );
            let (run, report) =
                drive_live_open_loop(&client, &stream, model, deadline, &writes, None);
            let wal = client.service().wal_stats();
            client.shutdown();
            eprintln!("fig15 {mode}: {run:?} (rate {rate:.0} q/s) wal {wal:?}");
            assert_eq!(report.mutations, count / 10, "mutation stream truncated");
            if durable {
                let wal = wal.expect("durable arm has WAL counters");
                assert_eq!(
                    wal.appends as usize,
                    writes.len(),
                    "every acked batch is one WAL record"
                );
                assert!(
                    wal.syncs >= wal.appends,
                    "SyncPolicy::Always must fsync per batch: {wal:?}"
                );
            }
            assert!(
                run.done * 100 >= run.submitted * 95,
                "{mode} shed too much: {run:?}"
            );
            p99.insert(mode, run.p99_ms);
            let _ = std::fs::remove_dir_all(&dir);
        }
        let (off, fsync) = (p99["wal-off"], p99["wal-fsync"]);
        assert!(
            fsync <= 1.3 * off + 8.0,
            "fsync-per-batch read p99 blew the 1.3x-of-wal-off budget: \
             {fsync:.2} ms vs {off:.2} ms"
        );

        // Recovery-time floor: 10k mutations, WAL only (no snapshot), must
        // replay to the exact acked epoch in under 2 s.
        let dir = scratch("recovery");
        let rcfg = {
            let mut d = DurabilityConfig::new(&dir);
            d.sync = SyncPolicy::Never;
            d.snapshot_every = 0;
            d
        };
        let (live, dur) =
            LiveCorpus::open_durable(Arc::clone(&corpus), rcfg).expect("scratch durability dir");
        let rmuts = MutationStream::generate(
            &corpus.graph,
            &corpus.store,
            &MutationParams {
                count: 10_000,
                rate: write_rate,
                user_theta: shape.seeker_theta,
                ..MutationParams::default()
            },
            23,
        );
        for b in rmuts.batches(WRITE_BATCH) {
            dur.apply_durable(&live, &b, None, None)
                .expect("durable apply");
        }
        dur.sync().expect("flush WAL tail");
        let (recovered, report) = LiveCorpus::recover(&dir).expect("recover");
        eprintln!("fig15 recovery: {report:?}");
        assert_eq!(
            recovered.epoch(),
            live.epoch(),
            "recovery lost acked batches"
        );
        assert!(!report.degraded(), "{report:?}");
        assert!(
            report.elapsed_ms < 2_000.0,
            "10k-mutation WAL replay blew the 2s budget: {report:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn service_cache_probe_reports_activity() {
        let stats = service_cache_probe();
        assert!(stats.hits > 0, "{stats:?}");
        assert!(stats.insertions > 0, "{stats:?}");
        assert!(
            stats.hits + stats.misses >= stats.insertions,
            "{stats:?}: lookups must dominate insertions"
        );
    }

    #[test]
    fn timing_and_stats() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        let ds = vec![d, d, d];
        assert!(mean_us(&ds) >= 0.0);
        assert!(percentile_us(&ds, 0.5) >= 0.0);
        assert_eq!(mean_us(&[]), 0.0);
        assert_eq!(percentile_us(&[], 0.9), 0.0);
    }

    #[test]
    fn percentile_interpolates_between_ranks() {
        // p50 of two samples is their midpoint — the nearest-rank form
        // this replaced could only ever return one of the samples.
        let ds = [Duration::from_micros(1), Duration::from_micros(3)];
        assert_eq!(percentile_us(&ds, 0.5), 2.0);
        assert_eq!(percentile_us(&ds, 0.0), 1.0);
        assert_eq!(percentile_us(&ds, 1.0), 3.0);
        assert_eq!(percentile_us(&ds, 0.75), 2.5);
    }

    #[test]
    fn percentile_of_single_sample_is_that_sample() {
        let ds = [Duration::from_micros(5)];
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(percentile_us(&ds, q), 5.0, "q={q}");
        }
    }

    #[test]
    fn percentile_is_monotone_in_q() {
        let ds: Vec<Duration> = (0..97)
            .map(|i: u64| Duration::from_nanos((i * 7919) % 10_000))
            .collect();
        let qs: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let ps = percentiles_us(&ds, &qs);
        for w in ps.windows(2) {
            assert!(w[0] <= w[1], "percentiles must be monotone in q: {ps:?}");
        }
        // The multi-quantile pass must agree with the one-at-a-time form.
        for (&q, &p) in qs.iter().zip(&ps) {
            assert_eq!(p, percentile_us(&ds, q), "q={q}");
        }
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["beta-long".into(), "23456".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("23456"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert!(fmt_bytes(3 * 1024 * 1024).contains("MiB"));
    }
}
